"""Thin shim so `pip install -e .` works without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables the
legacy editable-install path (`--no-use-pep517`) in offline environments.
"""

from setuptools import setup

setup()
