"""Tests for the synthetic NL2SQL benchmark and the paper's accuracy claim."""

import pytest

from repro.engine.executor import QueryExecutor
from repro.engine.optimizer import Optimizer
from repro.engine.planner import Planner
from repro.engine.source import ObjectStoreSource
from repro.engine.sql.parser import parse_sql
from repro.nl2sql import Nl2SqlBenchmark
from repro.nl2sql.benchmark import _rows_match, make_wide_schema
from repro.storage.catalog import Catalog
from repro.storage.object_store import ObjectStore
from repro.workloads import TpchGenerator, load_dataset


@pytest.fixture(scope="module")
def tpch_runtime():
    store = ObjectStore()
    catalog = Catalog()
    load_dataset(store, catalog, "tpch", TpchGenerator(scale=0.02).tables())
    planner = Planner(catalog, "tpch")
    optimizer = Optimizer()
    executor = QueryExecutor(ObjectStoreSource(store))

    def run_sql(sql):
        return executor.execute(optimizer.optimize(planner.plan_sql(sql))).rows()

    return catalog.schema("tpch"), run_sql


class TestGeneration:
    def test_generates_requested_count(self, tpch_runtime):
        schema, _ = tpch_runtime
        cases = Nl2SqlBenchmark(schema, seed=0).generate(50)
        assert len(cases) == 50

    def test_deterministic(self, tpch_runtime):
        schema, _ = tpch_runtime
        a = Nl2SqlBenchmark(schema, seed=5).generate(30)
        b = Nl2SqlBenchmark(schema, seed=5).generate(30)
        assert [c.question for c in a] == [c.question for c in b]

    def test_gold_sql_always_valid(self, tpch_runtime):
        schema, run_sql = tpch_runtime
        for case in Nl2SqlBenchmark(schema, seed=1).generate(60):
            parse_sql(case.gold_sql)
            run_sql(case.gold_sql)  # must execute

    def test_template_variety(self, tpch_runtime):
        schema, _ = tpch_runtime
        cases = Nl2SqlBenchmark(schema, seed=2).generate(100)
        assert len({case.template for case in cases}) >= 6

    def test_hard_cases_present(self, tpch_runtime):
        schema, _ = tpch_runtime
        cases = Nl2SqlBenchmark(schema, seed=2, hard_fraction=0.5).generate(100)
        assert any(case.hard for case in cases)


class TestAccuracyClaim:
    def test_execution_accuracy_above_80_percent(self, tpch_runtime):
        """§1: CodeS translates single-turn 'with an accuracy of over
        80%' — the pipeline must clear the same bar on the synthetic
        benchmark."""
        schema, run_sql = tpch_runtime
        bench = Nl2SqlBenchmark(schema, seed=7)
        report = bench.evaluate(bench.generate(120), run_sql)
        assert report.accuracy > 0.80

    def test_failures_are_reported_not_raised(self, tpch_runtime):
        schema, run_sql = tpch_runtime
        bench = Nl2SqlBenchmark(schema, seed=7, hard_fraction=1.0)
        report = bench.evaluate(bench.generate(40), run_sql)
        assert report.total == 40
        assert report.accuracy < 1.0  # hard phrasings cost accuracy

    def test_per_template_breakdown_sums(self, tpch_runtime):
        schema, run_sql = tpch_runtime
        bench = Nl2SqlBenchmark(schema, seed=9)
        report = bench.evaluate(bench.generate(60), run_sql)
        total = sum(t for _, t in report.per_template().values())
        assert total == report.total


class TestRowMatching:
    def test_order_insensitive(self):
        assert _rows_match([(1,), (2,)], [(2,), (1,)])

    def test_float_tolerance(self):
        assert _rows_match([(1.0000000001,)], [(1.0,)])

    def test_null_matches_null(self):
        assert _rows_match([(None,)], [(None,)])

    def test_size_mismatch(self):
        assert not _rows_match([(1,)], [(1,), (1,)])

    def test_value_mismatch(self):
        assert not _rows_match([(1,)], [(2,)])


class TestWideSchema:
    def test_make_wide_schema_width(self):
        schema = make_wide_schema(1000)
        assert len(schema.tables["telemetry"].columns) == 1000

    def test_translation_works_on_wide_schema(self):
        from repro.nl2sql import RuleBasedTranslator

        schema = make_wide_schema(1500)
        translation = RuleBasedTranslator().translate(
            schema, "what is the average sensor temperature"
        )
        assert "avg(sensor_temperature)" in translation.sql
