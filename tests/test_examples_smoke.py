"""Smoke tests for the shipped examples.

Importing each example catches syntax/import rot cheaply; the quickstart's
``main()`` also runs end-to-end at a reduced scale as the one full-path
check (the longer examples are exercised by the benchmarks already).
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(path.stem for path in EXAMPLES_DIR.glob("*.py"))


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_examples_present(self):
        assert {
            "quickstart",
            "nl_analytics_session",
            "service_levels_under_load",
            "log_analysis",
            "sql_features_tour",
            "resilience_and_batching",
        } <= set(EXAMPLES)

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_example_imports_cleanly(self, name):
        module = load_example(name)
        assert callable(module.main)
        assert module.__doc__  # every example documents itself

    def test_quickstart_runs(self, capsys, monkeypatch):
        from repro import PixelsDB

        module = load_example("quickstart")
        original_init = PixelsDB.load_tpch

        def small_tpch(self, schema, scale=0.1, seed=42):
            return original_init(self, schema, scale=0.01, seed=seed)

        monkeypatch.setattr(PixelsDB, "load_tpch", small_tpch)
        module.main()
        out = capsys.readouterr().out
        assert "immediate" in out and "relaxed" in out and "best_effort" in out
        assert "Result rows" in out
