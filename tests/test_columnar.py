"""Unit + property tests for column-chunk encodings and zone-map stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.columnar import (
    ColumnChunkStats,
    Encoding,
    choose_encoding,
    compute_stats,
    decode_chunk,
    encode_chunk,
)
from repro.storage.types import ColumnVector, DataType


def roundtrip(vector: ColumnVector, encoding: Encoding) -> ColumnVector:
    return decode_chunk(encode_chunk(vector, encoding), vector.dtype, encoding)


class TestEncodingRoundtrips:
    @pytest.mark.parametrize("encoding", [Encoding.PLAIN, Encoding.RLE])
    def test_int_roundtrip(self, encoding):
        vector = ColumnVector.from_values(DataType.INT, [1, 1, 1, 5, -3, 5])
        assert roundtrip(vector, encoding).to_values() == vector.to_values()

    @pytest.mark.parametrize("encoding", [Encoding.PLAIN, Encoding.RLE])
    def test_bigint_roundtrip(self, encoding):
        values = [2**40, 2**40, -(2**41), 0]
        vector = ColumnVector.from_values(DataType.BIGINT, values)
        assert roundtrip(vector, encoding).to_values() == values

    def test_double_plain_roundtrip(self):
        values = [1.5, -2.25, 0.0, 1e300]
        vector = ColumnVector.from_values(DataType.DOUBLE, values)
        assert roundtrip(vector, Encoding.PLAIN).to_values() == values

    def test_boolean_plain_roundtrip(self):
        values = [True, False, True]
        vector = ColumnVector.from_values(DataType.BOOLEAN, values)
        assert roundtrip(vector, Encoding.PLAIN).to_values() == values

    @pytest.mark.parametrize("encoding", [Encoding.PLAIN, Encoding.DICT])
    def test_varchar_roundtrip(self, encoding):
        values = ["apple", "banana", "apple", "", "ünïcødé"]
        vector = ColumnVector.from_values(DataType.VARCHAR, values)
        assert roundtrip(vector, encoding).to_values() == values

    def test_nulls_roundtrip_all_encodings(self):
        int_vector = ColumnVector.from_values(DataType.INT, [1, None, 1, 1, None])
        for encoding in (Encoding.PLAIN, Encoding.RLE):
            assert roundtrip(int_vector, encoding).to_values() == [1, None, 1, 1, None]
        str_vector = ColumnVector.from_values(DataType.VARCHAR, ["a", None, "a"])
        for encoding in (Encoding.PLAIN, Encoding.DICT):
            assert roundtrip(str_vector, encoding).to_values() == ["a", None, "a"]

    def test_empty_roundtrip(self):
        vector = ColumnVector(DataType.INT, np.empty(0, dtype=np.int32))
        for encoding in (Encoding.PLAIN, Encoding.RLE):
            assert len(roundtrip(vector, encoding)) == 0

    def test_date_roundtrip(self):
        vector = ColumnVector.from_values(DataType.DATE, [0, 9000, 9000, -10])
        assert roundtrip(vector, Encoding.RLE).to_values() == [0, 9000, 9000, -10]


class TestPropertyRoundtrips:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.one_of(st.integers(-(2**31), 2**31 - 1), st.none()), max_size=200
        )
    )
    def test_int_plain(self, values):
        vector = ColumnVector.from_values(DataType.INT, values)
        assert roundtrip(vector, Encoding.PLAIN).to_values() == values

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.one_of(st.integers(-100, 100), st.none()), max_size=200)
    )
    def test_int_rle(self, values):
        vector = ColumnVector.from_values(DataType.INT, values)
        assert roundtrip(vector, Encoding.RLE).to_values() == values

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.one_of(st.text(max_size=20), st.none()), max_size=100))
    def test_varchar_dict(self, values):
        vector = ColumnVector.from_values(DataType.VARCHAR, values)
        result = roundtrip(vector, Encoding.DICT).to_values()
        expected = ["" if v is None else v for v in values]
        got = ["" if v is None else v for v in result]
        assert got == expected
        # Null positions preserved exactly.
        assert [v is None for v in result] == [v is None for v in values]

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.one_of(
                st.floats(allow_nan=False, allow_infinity=False), st.none()
            ),
            max_size=100,
        )
    )
    def test_double_plain(self, values):
        vector = ColumnVector.from_values(DataType.DOUBLE, values)
        assert roundtrip(vector, Encoding.PLAIN).to_values() == values

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(-5, 5), min_size=1, max_size=300))
    def test_stats_bound_all_values(self, values):
        vector = ColumnVector.from_values(DataType.INT, values)
        stats = compute_stats(vector)
        assert stats.min_value == min(values)
        assert stats.max_value == max(values)
        assert stats.num_rows == len(values)


class TestChooseEncoding:
    def test_long_runs_pick_rle(self):
        vector = ColumnVector.from_values(DataType.INT, [7] * 100)
        assert choose_encoding(vector) is Encoding.RLE

    def test_random_ints_pick_plain(self):
        vector = ColumnVector.from_values(DataType.INT, list(range(100)))
        assert choose_encoding(vector) is Encoding.PLAIN

    def test_low_cardinality_strings_pick_dict(self):
        vector = ColumnVector.from_values(DataType.VARCHAR, ["x", "y"] * 50)
        assert choose_encoding(vector) is Encoding.DICT

    def test_unique_strings_pick_plain(self):
        vector = ColumnVector.from_values(
            DataType.VARCHAR, [f"s{i}" for i in range(100)]
        )
        assert choose_encoding(vector) is Encoding.PLAIN

    def test_doubles_pick_plain(self):
        vector = ColumnVector.from_values(DataType.DOUBLE, [1.0] * 100)
        assert choose_encoding(vector) is Encoding.PLAIN

    def test_empty_picks_plain(self):
        vector = ColumnVector(DataType.INT, np.empty(0, dtype=np.int32))
        assert choose_encoding(vector) is Encoding.PLAIN

    def test_rle_actually_smaller_on_runs(self):
        vector = ColumnVector.from_values(DataType.INT, [3] * 1000)
        rle = encode_chunk(vector, Encoding.RLE)
        plain = encode_chunk(vector, Encoding.PLAIN)
        assert len(rle) < len(plain) / 10

    def test_dict_actually_smaller_on_repeats(self):
        vector = ColumnVector.from_values(
            DataType.VARCHAR, ["a-fairly-long-country-name"] * 500
        )
        dict_blob = encode_chunk(vector, Encoding.DICT)
        plain_blob = encode_chunk(vector, Encoding.PLAIN)
        assert len(dict_blob) < len(plain_blob) / 2


class TestStats:
    def test_all_null_column(self):
        vector = ColumnVector.from_values(DataType.INT, [None, None])
        stats = compute_stats(vector)
        assert stats.min_value is None and stats.max_value is None
        assert stats.null_count == 2

    def test_varchar_stats(self):
        vector = ColumnVector.from_values(DataType.VARCHAR, ["pear", "apple"])
        stats = compute_stats(vector)
        assert stats.min_value == "apple"
        assert stats.max_value == "pear"

    def test_boolean_has_no_minmax(self):
        vector = ColumnVector.from_values(DataType.BOOLEAN, [True, False])
        stats = compute_stats(vector)
        assert stats.min_value is None

    def test_nulls_excluded_from_minmax(self):
        vector = ColumnVector.from_values(DataType.INT, [None, 5, 2])
        stats = compute_stats(vector)
        assert stats.min_value == 2
        assert stats.max_value == 5

    def test_might_contain_range(self):
        stats = ColumnChunkStats(num_rows=10, null_count=0, min_value=5, max_value=10)
        assert stats.might_contain_range(None, None)
        assert stats.might_contain_range(7, 8)
        assert stats.might_contain_range(10, 20)
        assert stats.might_contain_range(0, 5)
        assert not stats.might_contain_range(11, None)
        assert not stats.might_contain_range(None, 4)

    def test_might_contain_range_all_nulls(self):
        stats = ColumnChunkStats(num_rows=5, null_count=5, min_value=None, max_value=None)
        assert not stats.might_contain_range(1, 2)
