"""Unit tests for the cloud-function service."""

import pytest

from repro.sim import Simulator
from repro.turbo.cf_service import CfService
from repro.turbo.config import CfConfig, VmConfig


@pytest.fixture
def service():
    sim = Simulator()
    return sim, CfService(sim, CfConfig(), VmConfig())


class TestInvocations:
    def test_invoke_completes_after_duration(self, service):
        sim, cf = service
        done = []
        cf.invoke("q1", num_workers=4, duration_s=2.5, on_complete=lambda: done.append(sim.now))
        assert cf.active_workers == 4
        sim.run()
        assert done == [2.5]
        assert cf.active_workers == 0

    def test_rejects_nonpositive_workers(self, service):
        _, cf = service
        with pytest.raises(ValueError):
            cf.invoke("q1", 0, 1.0, lambda: None)

    def test_worker_seconds_and_cost(self, service):
        sim, cf = service
        cf.invoke("q1", num_workers=10, duration_s=3.0, on_complete=lambda: None)
        sim.run()
        assert cf.total_worker_seconds() == pytest.approx(30.0)
        expected = 30.0 * CfConfig().price_per_worker_s(VmConfig())
        assert cf.provider_cost() == pytest.approx(expected)

    def test_concurrent_invocations_tracked(self, service):
        sim, cf = service
        cf.invoke("q1", 5, 10.0, lambda: None)
        cf.invoke("q2", 7, 10.0, lambda: None)
        assert cf.active_workers == 12
        sim.run()
        assert cf.active_workers == 0
        assert len(cf.invocations) == 2

    def test_invocation_records_query_id(self, service):
        sim, cf = service
        cf.invoke("my-query", 1, 1.0, lambda: None)
        assert cf.invocations[0].query_id == "my-query"

    def test_trace_gauge(self, service):
        sim, cf = service
        cf.invoke("q1", 3, 1.0, lambda: None)
        sim.run()
        values = cf.trace.values("cf.active_workers")
        assert values == [3, 0]


class TestElasticityContract:
    def test_hundreds_of_workers_within_a_second(self):
        """The paper's §2 claim: CF can create hundreds of workers in ~1 s.
        In the model, availability is bounded by startup_s alone."""
        curve = CfService(
            Simulator(), CfConfig(), VmConfig()
        ).provisioning_curve(demand=300)
        time_to_full = next(t for t, n in curve if n == 300)
        assert time_to_full <= 1.0

    def test_vm_cluster_needs_minutes_for_same_demand(self):
        """Contrast: the default VM scale-out lag is 1-2 minutes."""
        assert 60 <= VmConfig().scale_out_lag_s <= 120
