"""Failure-injection tests: worker crashes, CF failures, retry semantics."""

import pytest

from repro.core import QueryServer, QueryStatus, ServiceLevel
from repro.sim import Simulator
from repro.storage.catalog import Catalog
from repro.storage.object_store import ObjectStore
from repro.turbo import Coordinator, TurboConfig
from repro.turbo.coordinator import ExecutionVenue
from repro.turbo.faults import FaultConfig, FaultInjector
from repro.workloads import TpchGenerator, load_dataset

SQL = "SELECT l_returnflag, count(*) FROM lineitem GROUP BY l_returnflag"


def make_stack(faults, seed=3):
    sim = Simulator(seed=seed)
    store = ObjectStore()
    catalog = Catalog()
    load_dataset(store, catalog, "tpch", TpchGenerator(scale=0.02).tables())
    config = TurboConfig.fast()
    coordinator = Coordinator(
        sim, config, catalog, store, "tpch", faults=faults
    )
    server = QueryServer(sim, coordinator, config)
    return sim, coordinator, server


class TestFaultConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(vm_crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(cf_failure_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(max_retries=-1)

    def test_injector_counts(self):
        import numpy as np

        injector = FaultInjector(
            FaultConfig(vm_crash_rate=1.0, cf_failure_rate=1.0),
            np.random.default_rng(0),
        )
        assert injector.vm_task_fails()
        assert injector.cf_invocation_fails()
        assert injector.vm_crashes_injected == 1
        assert injector.cf_failures_injected == 1
        assert 0.1 <= injector.failure_point() <= 0.9

    def test_zero_rates_never_fire(self):
        import numpy as np

        injector = FaultInjector(FaultConfig(), np.random.default_rng(0))
        assert not any(injector.vm_task_fails() for _ in range(100))
        assert not any(injector.cf_invocation_fails() for _ in range(100))


class TestVmCrashes:
    def test_query_retries_and_succeeds(self):
        sim, coordinator, server = make_stack(
            FaultConfig(vm_crash_rate=0.5, max_retries=10)
        )
        records = [server.submit(SQL, ServiceLevel.RELAXED) for _ in range(8)]
        sim.run_until(1800)
        assert all(r.status is QueryStatus.FINISHED for r in records)
        assert coordinator.fault_injector.vm_crashes_injected > 0
        assert any(r.execution.retries > 0 for r in records)

    def test_results_correct_despite_crashes(self):
        sim, coordinator, server = make_stack(
            FaultConfig(vm_crash_rate=0.5, max_retries=10)
        )
        clean_sim, clean_coord, clean_server = make_stack(None)
        faulty = server.submit(SQL, ServiceLevel.RELAXED)
        clean = clean_server.submit(SQL, ServiceLevel.RELAXED)
        sim.run_until(1800)
        clean_sim.run_until(1800)
        assert sorted(faulty.result_rows()) == sorted(clean.result_rows())

    def test_certain_crash_exhausts_retries(self):
        sim, coordinator, server = make_stack(
            FaultConfig(vm_crash_rate=1.0, max_retries=2)
        )
        record = server.submit(SQL, ServiceLevel.RELAXED)
        sim.run_until(1800)
        assert record.status is QueryStatus.FAILED
        assert "gave up after 2 retries" in record.error
        assert record.execution.retries == 2

    def test_crashed_worker_is_replaced_by_autoscaler(self):
        sim, coordinator, server = make_stack(
            FaultConfig(vm_crash_rate=1.0, max_retries=0), seed=5
        )
        server.submit(SQL, ServiceLevel.RELAXED)
        sim.run_until(600)
        # The crash retired a worker; the cluster never drops below min.
        assert coordinator.vm_cluster.num_workers >= 1

    def test_partial_work_still_billed(self):
        sim, coordinator, server = make_stack(
            FaultConfig(vm_crash_rate=1.0, max_retries=0)
        )
        record = server.submit(SQL, ServiceLevel.RELAXED)
        sim.run_until(600)
        assert record.status is QueryStatus.FAILED
        assert record.execution.provider_cost > 0


class TestCfFailures:
    def _saturate_then_submit(self, faults):
        sim, coordinator, server = make_stack(faults)
        blockers = [server.submit(SQL, ServiceLevel.RELAXED) for _ in range(4)]
        record = server.submit(SQL, ServiceLevel.IMMEDIATE)
        return sim, coordinator, record

    def test_cf_retry_succeeds(self):
        sim, coordinator, record = self._saturate_then_submit(
            FaultConfig(cf_failure_rate=0.5, max_retries=10)
        )
        sim.run_until(1800)
        assert record.status is QueryStatus.FINISHED
        assert record.execution.venue is ExecutionVenue.CF

    def test_certain_cf_failure_exhausts_retries(self):
        sim, coordinator, record = self._saturate_then_submit(
            FaultConfig(cf_failure_rate=1.0, max_retries=3)
        )
        sim.run_until(1800)
        assert record.status is QueryStatus.FAILED
        assert "CF invocation failed" in record.error

    def test_failed_invocations_are_billed(self):
        sim, coordinator, record = self._saturate_then_submit(
            FaultConfig(cf_failure_rate=1.0, max_retries=2)
        )
        sim.run_until(1800)
        # 3 attempts (1 + 2 retries), each invoiced by the CF service.
        cf_invocations = [
            inv for inv in coordinator.cf_service.invocations
            if inv.query_id == record.query_id
        ]
        assert len(cf_invocations) == 3
        assert coordinator.cf_service.provider_cost() > 0

    def test_deterministic_given_seed(self):
        outcomes = []
        for _ in range(2):
            sim, coordinator, record = self._saturate_then_submit(
                FaultConfig(cf_failure_rate=0.5, max_retries=5)
            )
            sim.run_until(1800)
            outcomes.append((record.status, record.execution.retries))
        assert outcomes[0] == outcomes[1]
