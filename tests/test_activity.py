"""Live query activity: lifecycle states, in-flight progress, bill
projections, estimator accuracy, and the projection-driven guard."""

import dataclasses
import json

import pytest

from repro.core import QueryServer, QueryStatus, ServiceLevel
from repro.obs import GuardPolicy, Instrumentation
from repro.obs.activity import GUARD_ACTIONS
from repro.sim import Simulator
from repro.storage.catalog import Catalog
from repro.storage.object_store import ObjectStore
from repro.turbo import Coordinator, TurboConfig
from repro.workloads import TpchGenerator, load_dataset

HEAVY = "SELECT l_returnflag, count(*) FROM lineitem GROUP BY l_returnflag"
LIGHT = "SELECT count(*) FROM region"


def observed_env(
    rows_per_group: int = 256,
    guard: GuardPolicy | None = None,
    budgets: dict[str, float] | None = None,
    capture=None,
    admission=None,
    grace_s: float | None = None,
):
    """A fully observed stack; small row groups make every lineitem scan
    multi-morsel so mid-flight progress is visible morsel by morsel."""
    sim = Simulator(seed=11)
    store = ObjectStore()
    catalog = Catalog()
    load_dataset(
        store,
        catalog,
        "tpch",
        TpchGenerator(scale=0.05).tables(),
        rows_per_group=rows_per_group,
    )
    config = TurboConfig.fast()
    if grace_s is not None:
        config = dataclasses.replace(config, grace_period_s=grace_s)
    obs = Instrumentation.create(
        clock=lambda: sim.now, budgets=budgets, capture=capture
    )
    coordinator = Coordinator(sim, config, catalog, store, "tpch", obs=obs)
    server = QueryServer(
        sim, coordinator, config, guard=guard, admission=admission
    )
    return sim, coordinator, server


def run_to_exec_start(sim, server, record, horizon: float = 600.0):
    """Advance until the activity registry sees the execution window."""
    entry = server.obs.activity.entry(record.query_id)
    step = 0.05
    t = sim.now
    while entry.exec_started_at is None and t < horizon:
        t += step
        sim.run_until(t)
    assert entry.exec_started_at is not None, "query never started executing"
    return entry


class TestLifecycle:
    def test_idle_cluster_lifecycle_to_billed(self):
        sim, _, server = observed_env()
        record = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        entry = server.obs.activity.entry(record.query_id)
        assert entry is not None
        assert entry.tenant == "acme"
        assert entry.state in ("admitted", "dispatched", "executing")
        sim.run_until(900)
        assert record.status is QueryStatus.FINISHED
        assert entry.state == "billed"
        states = [state for state, _ in entry.history]
        assert states[0] == "admitted"
        assert states[-1] == "billed"
        assert "executing" in states
        # Timestamps are monotone along the history.
        times = [time for _, time in entry.history]
        assert times == sorted(times)

    def test_saturated_relaxed_query_reports_queued(self):
        sim, _, server = observed_env()
        for _ in range(12):
            server.submit(HEAVY, ServiceLevel.RELAXED)
        held = server.submit(HEAVY, ServiceLevel.RELAXED)
        entry = server.obs.activity.entry(held.query_id)
        assert entry.state == "queued"
        assert entry.deadline_s is not None  # relaxed: the grace period
        snapshot = server.obs.activity.snapshot()
        row = next(
            r for r in snapshot["queries"] if r["query_id"] == held.query_id
        )
        assert row["state"] == "queued"
        assert row["progress"] == 0.0

    def test_coordinator_only_executions_are_not_tracked(self):
        sim, coordinator, server = observed_env()
        coordinator.submit(LIGHT, cf_enabled=False)
        sim.run_until(60)
        assert server.obs.activity.entries() == []


class TestProgress:
    def test_midflight_snapshot_shows_partial_operator_progress(self):
        sim, _, server = observed_env()
        record = server.submit(HEAVY, ServiceLevel.RELAXED)
        entry = run_to_exec_start(sim, server, record)
        assert entry.exec_duration_s > 0
        sim.run_until(entry.exec_started_at + entry.exec_duration_s * 0.5)
        assert record.status is QueryStatus.RUNNING
        snapshot = server.obs.activity.snapshot()
        row = next(
            r for r in snapshot["queries"] if r["query_id"] == record.query_id
        )
        assert row["state"] == "executing"
        assert 0.0 < row["progress"] < 1.0
        operators = row["operators"]
        assert operators, "no per-operator progress rows"
        scans = [op for op in operators if "morsels_total" in op]
        assert scans, "no scan reported morsel counts"
        for op in scans:
            assert op["morsels_total"] > 1  # rows_per_group made it so
            assert 0 <= op["morsels_done"] <= op["morsels_total"]
            assert op["progress"] == pytest.approx(
                op["morsels_done"] / op["morsels_total"]
            )
        blocking = [op for op in operators if "phase" in op]
        assert blocking, "the GROUP BY sink reported no phase"
        for op in blocking:
            assert op["phase"] in ("accumulate", "emit", "done")
        for op in operators:
            assert 0.0 <= op["progress"] <= 1.0

    def test_progress_monotone_and_capped_at_one(self):
        sim, _, server = observed_env()
        record = server.submit(HEAVY, ServiceLevel.RELAXED)
        entry = run_to_exec_start(sim, server, record)
        activity = server.obs.activity
        seen = []
        for fraction in (0.25, 0.5, 0.75, 1.0):
            sim.run_until(
                entry.exec_started_at + entry.exec_duration_s * fraction
            )
            snapshot = activity.snapshot()
            row = next(
                r
                for r in snapshot["queries"]
                if r["query_id"] == record.query_id
            )
            seen.append(row["progress"])
            assert 0.0 <= row["progress"] <= 1.0
        assert seen == sorted(seen)
        sim.run_until(900)  # far past the window: still capped
        row = next(
            r
            for r in activity.snapshot()["queries"]
            if r["query_id"] == record.query_id
        )
        assert row["progress"] == 1.0


class TestProjection:
    def test_terminal_projection_equals_billed_price_exactly(self):
        sim, _, server = observed_env()
        record = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        sim.run_until(900)
        assert record.status is QueryStatus.FINISHED
        row = next(
            r
            for r in server.obs.activity.snapshot()["queries"]
            if r["query_id"] == record.query_id
        )
        assert row["state"] == "billed"
        assert row["actual_nanodollars"] == record.price_nanodollars
        projection = row["projection"]
        assert projection["nanodollars"] == record.price_nanodollars
        assert projection["source"] == "billed"
        # The resource split is exact: the four axes sum to the total.
        assert sum(projection["by_resource"].values()) == record.price_nanodollars

    def test_exec_start_projection_already_exact(self):
        """Execution is eager under virtual time, so the moment the
        window opens the projection knows the final bill."""
        sim, _, server = observed_env()
        record = server.submit(HEAVY, ServiceLevel.RELAXED)
        entry = run_to_exec_start(sim, server, record)
        assert entry.final_nanodollars is not None
        sim.run_until(900)
        assert entry.final_nanodollars == record.price_nanodollars

    def test_repeat_statement_projects_from_prior(self):
        sim, _, server = observed_env()
        first = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        sim.run_until(900)
        assert first.status is QueryStatus.FINISHED
        second = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        entry = server.obs.activity.entry(second.query_id)
        assert entry.prior_nanodollars == first.price_nanodollars
        assert entry.estimate_source == "prior"
        # The snapshot already carries a $ projection (the idle cluster
        # starts the query synchronously, so the prior blends with the
        # execution-known final — both equal the first run's bill).
        row = next(
            r
            for r in server.obs.activity.snapshot()["queries"]
            if r["query_id"] == second.query_id
        )
        assert row["projection"]["nanodollars"] == first.price_nanodollars
        assert row["projection"]["source"] in ("prior", "blended")
        sim.run_until(1800)
        records = server.obs.activity.projection_records()
        assert [r.source for r in records] == ["execution", "prior"]
        # Same statement, same data: the prior was dead-on.
        assert records[-1].ape == 0.0

    def test_projection_report_aggregates_mape(self):
        sim, _, server = observed_env()
        for _ in range(3):
            server.submit(HEAVY, ServiceLevel.RELAXED)
            sim.run_until(sim.now + 600)
        report = server.obs.activity.projection_report()
        assert report["queries"] == 3
        assert report["mape"] == 0.0
        assert report["by_source"] == {"execution": 1, "prior": 2}
        assert len(report["records"]) == 3


class TestGuard:
    def test_budget_cancel_voids_ledger_and_reconciles(self):
        from repro.obs.reconcile import reconcile_server

        sim, _, server = observed_env(
            guard=GuardPolicy(budget_action="cancel", deadline_action=None),
            budgets={"acme": 1e-9},  # one nanodollar: anything trips it
        )
        alerts: list = []
        server.guard.alert_sink = alerts.append
        record = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        sim.run_until(900)
        assert record.status is QueryStatus.FAILED
        assert record.price_nanodollars == 0
        entry = server.obs.activity.entry(record.query_id)
        assert entry.state == "cancelled"
        decisions = server.guard.audit_log
        assert len(decisions) == 1
        decision = decisions[0]
        assert decision.rule == "budget"
        assert decision.action == "cancel"
        assert decision.applied is True
        assert decision.query_id == record.query_id
        assert decision.projected_nanodollars > decision.limit_nanodollars
        assert [a.rule for a in alerts] == ["projection_guard_budget"]
        # The cancel went through the server: ledger voided, books balance.
        ledger = server.obs.ledger
        assert record.query_id in ledger.voided_query_ids()
        assert ledger.net_nanodollars(record.query_id) == 0
        report = reconcile_server(server)
        assert report.ok, report.render()

    def test_budget_downgrade_demotes_held_relaxed_query(self):
        sim, _, server = observed_env(
            guard=GuardPolicy(budget_action="downgrade", deadline_action=None),
            budgets={"acme": 1e-9},
        )
        # Seed a prior so the held query projects a bill while queued.
        seed = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        sim.run_until(900)
        assert seed.status is QueryStatus.FINISHED
        for _ in range(12):  # saturate so the next relaxed query holds
            server.submit(HEAVY, ServiceLevel.RELAXED)
        held = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        assert held.dispatched_at is None
        entry = server.obs.activity.entry(held.query_id)
        assert entry.state == "queued"
        sim.run_until(sim.now + 30)  # let the guard tick
        downgrades = [
            d for d in server.guard.audit_log if d.query_id == held.query_id
        ]
        assert downgrades and downgrades[0].action == "downgrade"
        assert downgrades[0].applied is True
        assert held.level is ServiceLevel.BEST_EFFORT
        assert entry.level == "best_effort"
        row = next(
            r
            for r in server.obs.activity.snapshot()["queries"]
            if r["query_id"] == held.query_id
        )
        assert row["requested_level"] == "relaxed"
        sim.run_until(3600)
        assert held.status is QueryStatus.FINISHED

    def test_deadline_alert_fires_while_pending(self):
        # Grace far below the VM backlog: force-dispatched relaxed
        # queries still sit in the VM queue past their deadline.
        sim, _, server = observed_env(
            guard=GuardPolicy(budget_action=None, deadline_action="alert"),
            grace_s=0.05,
        )
        alerts: list = []
        server.guard.alert_sink = alerts.append
        for _ in range(12):
            server.submit(HEAVY, ServiceLevel.RELAXED)
        sim.run_until(3600)
        deadline_trips = [
            d for d in server.guard.audit_log if d.rule == "deadline"
        ]
        assert deadline_trips, "no relaxed query outlived its grace period"
        for decision in deadline_trips:
            assert decision.action == "alert"
            assert decision.applied is True
        assert any(a.rule == "projection_guard_deadline" for a in alerts)
        # Alert-only guard: every query still finishes and bills normally.
        jsonl = server.guard.export_jsonl()
        assert len(jsonl.splitlines()) == len(server.guard.audit_log)

    def test_guard_decisions_counted_and_journaled(self):
        sim, _, server = observed_env(
            guard=GuardPolicy(budget_action="cancel", deadline_action=None),
            budgets={"acme": 1e-9},
        )
        record = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        sim.run_until(900)
        rendered = server.obs.metrics.render()
        assert (
            'pixels_guard_decisions_total{action="cancel",rule="budget"} 1'
            in rendered
        )
        guard_events = [
            r
            for r in server.obs.journal.records()
            if r.get("event") == "guard"
        ]
        assert len(guard_events) == 1
        assert guard_events[0]["query_id"] == record.query_id

    def test_unknown_guard_action_rejected(self):
        with pytest.raises(ValueError):
            GuardPolicy(budget_action="explode")
        assert GUARD_ACTIONS == ("alert", "downgrade", "cancel")


class TestExportsAndSurfaces:
    def test_activity_export_byte_identical_across_runs(self):
        exports = []
        for _ in range(2):
            sim, _, server = observed_env()
            server.submit(HEAVY, ServiceLevel.RELAXED)
            server.submit(LIGHT, ServiceLevel.IMMEDIATE)
            sim.run_until(300)
            exports.append(server.obs.activity.export_json())
            exports.append(server.obs.activity.export_projection_json())
        assert exports[0] == exports[2]
        assert exports[1] == exports[3]

    def test_activity_gauges_behind_cardinality_guard(self):
        sim, _, server = observed_env()
        record = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        run_to_exec_start(sim, server, record)
        rendered = server.obs.metrics.render()
        assert "pixels_activity_queries" in rendered
        assert 'pixels_activity_projected_dollars{tenant="acme"}' in rendered
        sim.run_until(900)
        rendered = server.obs.metrics.render()
        assert 'pixels_activity_queries{state="billed"} 1' in rendered
        # The in-flight projection series zeroes once the query bills.
        assert 'pixels_activity_projected_dollars{tenant="acme"} 0' in rendered

    def test_rover_activity_endpoint(self, turbo_env):
        from repro.nl2sql import CodesService
        from repro.rover import RoverServer, UserStore

        sim, store, catalog, config, coordinator, server = turbo_env
        users = UserStore()
        users.register("u", "p", {"tpch"})
        rover = RoverServer(users, catalog, CodesService(), server)
        token = rover.login("u", "p")
        # Without observability the endpoints render empty, not crash.
        assert rover.activity(token) == ""
        assert rover.projections(token) == ""

    def test_pixelsdb_facade_surfaces(self):
        from repro import CapturePolicy, PixelsDB

        db = PixelsDB(
            observe=True,
            seed=3,
            capture=CapturePolicy(capture_downgrades=True),
            tenant_budgets={"acme": 1e-9},
            guard=GuardPolicy(budget_action="alert", deadline_action=None),
        )
        db.load_tpch("tpch", scale=0.05)
        db.submit("tpch", HEAVY, ServiceLevel.RELAXED, tenant="acme")
        db.run_to_completion()
        activity = db.activity()
        assert activity["states"] == {"billed": 1}
        assert json.loads(db.activity_json()) == activity
        report = db.projection_report()
        assert report["queries"] == 1
        audit = db.guard_audit()
        assert audit and audit[0]["schema"] == "tpch"
        assert audit[0]["rule"] == "budget"
        assert db.guard_audit_jsonl().strip()
        # The guard's alert joined the engine's alert timeline.
        assert any(
            e.rule == "projection_guard_budget" for e in db.alerts.events
        )

    def test_dashboard_renders_active_queries_panel(self):
        from repro import PixelsDB

        db = PixelsDB(observe=True, seed=3)
        db.load_tpch("tpch", scale=0.05)
        db.submit("tpch", HEAVY, ServiceLevel.RELAXED, tenant="acme")
        db.run_to_completion()
        html = db.dashboard_html()
        assert "Active queries" in html
        assert 'class="pbar"' in html
        text = db.dashboard_text()
        assert "active queries" in text
        assert "billed" in text


class TestCapturePolicyDowngrade:
    def test_downgraded_query_captured_when_enabled(self):
        from repro.core.scheduler import AdmissionPolicy
        from repro.obs.journal import CapturePolicy

        sim, _, server = observed_env(
            capture=CapturePolicy(capture_downgrades=True),
            admission=AdmissionPolicy(downgrade_queue_depth=1),
        )
        for _ in range(12):  # saturate: later relaxed queries hold
            server.submit(HEAVY, ServiceLevel.RELAXED)
        held = server.submit(HEAVY, ServiceLevel.RELAXED)
        assert held.dispatched_at is None  # queue depth is now >= 1
        victim = server.submit(HEAVY, ServiceLevel.RELAXED)
        assert victim.downgraded  # admission pressure-downgraded it
        assert victim.level is ServiceLevel.BEST_EFFORT
        sim.run_until(7200)
        assert victim.status is QueryStatus.FINISHED
        downgraded = [
            c
            for c in server.obs.journal.captures()
            if "downgrade" in c.get("reasons", ())
        ]
        captured_ids = {c["query_id"] for c in downgraded}
        assert victim.query_id in captured_ids
        # Capture-on-downgrade only ever fires for demoted queries.
        for query_id in captured_ids:
            assert server.query(query_id).downgraded

    def test_downgrade_not_captured_by_default(self):
        from repro.obs.journal import CapturePolicy

        policy = CapturePolicy()
        assert policy.capture_downgrades is False
