"""Tests for the deterministic profiler (repro.obs.profiler + flamegraph).

The load-bearing properties, in order:

* **exact attribution** — per-node attributed nanodollars sum *exactly*
  (integer equality, not approx) to the billed price;
* **byte reproducibility** — folded stacks and flame-graph SVGs are
  byte-identical across same-seed runs;
* **observe invariance** — running with the observability stack on
  changes neither query results nor billed prices;
* the CF path grafts the sub-plan's operator profile under the
  MaterializedView node of the top plan.
"""

import pytest

from repro import PixelsDB, ServiceLevel
from repro.obs.profiler import (
    NANOS_PER_DOLLAR,
    _distribute,
    build_query_profile,
)
from repro.turbo.cost import CostAttribution

DEMO_SQL = (
    "SELECT o_orderstatus, count(*) AS n, sum(o_totalprice) AS total "
    "FROM orders GROUP BY o_orderstatus"
)


def run_session(observe: bool):
    db = PixelsDB(observe=observe, seed=3)
    db.load_tpch("tpch", scale=0.01)
    record = db.submit("tpch", DEMO_SQL, ServiceLevel.IMMEDIATE)
    db.run_to_completion()
    return db, record


@pytest.fixture(scope="module")
def observed_profile():
    db, record = run_session(observe=True)
    return db.profile("tpch", record.query_id), record


class TestDistribute:
    def test_sums_exactly_to_pool(self):
        weights = [0.1, 0.7, 0.2, 1e-9]
        shares = _distribute(1_000_000_007, weights)
        assert sum(shares) == 1_000_000_007
        assert all(share >= 0 for share in shares)

    def test_proportionality(self):
        shares = _distribute(100, [1.0, 3.0])
        assert shares == [25, 75]

    def test_zero_weights_returns_zeros(self):
        assert _distribute(100, [0.0, 0.0]) == [0, 0]
        assert _distribute(0, [1.0, 2.0]) == [0, 0]
        assert _distribute(100, []) == []

    def test_deterministic_tie_break(self):
        # Equal remainders: leftover units go to the lowest indices.
        assert _distribute(3, [1.0, 1.0]) == [2, 1]


class TestExactDollarAttribution:
    def test_self_nanodollars_sum_exactly_to_billed(self, observed_profile):
        profile, record = observed_profile
        total = sum(n.self_nanodollars for n in profile.root.walk())
        assert total == profile.billed_nanodollars
        assert profile.billed_nanodollars == round(
            record.price * NANOS_PER_DOLLAR
        )
        assert profile.root.cum_nanodollars == profile.billed_nanodollars

    def test_operator_dollars_are_positive_somewhere(self, observed_profile):
        profile, record = observed_profile
        assert record.price > 0
        operators = [
            n for n in profile.root.walk() if n.kind == "operator"
        ]
        assert operators, "executor profile missing from the fused tree"
        assert any(n.self_nanodollars > 0 for n in profile.root.walk())

    def test_request_class_split_covers_gets(self, observed_profile):
        # Every storage GET an operator caused is classed footer or chunk.
        profile, _ = observed_profile
        operators = [n for n in profile.root.walk() if n.kind == "operator"]
        total_gets = sum(n.get_requests for n in operators)
        assert total_gets > 0
        assert total_gets == sum(
            n.footer_gets + n.chunk_gets for n in operators
        )

    def test_attribution_components_cover_bill(self, observed_profile):
        profile, _ = observed_profile
        attribution = profile.attribution
        assert attribution.total == pytest.approx(attribution.billed)

    def test_all_zero_attribution_parks_at_root(self):
        attribution = CostAttribution(
            billed=1e-9, venue="none", bandwidth_dollars=0.0,
            compute_dollars=0.0, request_dollars=0.0, fixed_dollars=0.0,
        )
        profile = build_query_profile("q", None, None, attribution)
        assert profile.billed_nanodollars == 1
        assert profile.root.self_nanodollars == 1


class TestByteReproducibility:
    def test_same_seed_runs_export_identical_bytes(self):
        exports = []
        for _ in range(2):
            db, record = run_session(observe=True)
            profile = db.profile("tpch", record.query_id)
            exports.append(
                (
                    profile.folded_time(),
                    profile.folded_dollars(),
                    profile.flamegraph_time_svg(),
                    profile.flamegraph_dollars_svg(),
                )
            )
        assert exports[0] == exports[1]

    def test_folded_format(self, observed_profile):
        profile, _ = observed_profile
        folded = profile.folded_time()
        assert folded.endswith("\n")
        for line in folded.strip().splitlines():
            frames, _, value = line.rpartition(" ")
            assert frames
            assert value.isdigit()
            assert int(value) >= 0

    def test_flamegraph_is_self_contained_svg(self, observed_profile):
        profile, _ = observed_profile
        svg = profile.flamegraph_time_svg()
        assert svg.startswith("<svg")
        assert "<script" not in svg
        assert "Scan" in svg


class TestObserveInvariance:
    def test_results_and_billing_identical_observe_on_off(self):
        _, plain = run_session(observe=False)
        _, observed = run_session(observe=True)
        assert plain.price == observed.price
        assert (
            plain.execution.result.rows()
            == observed.execution.result.rows()
        )
        stats_off = plain.execution.result.stats
        stats_on = observed.execution.result.stats
        assert stats_off.bytes_scanned == stats_on.bytes_scanned
        assert stats_off.get_requests == stats_on.get_requests

    def test_unobserved_profile_still_attributes_exactly(self):
        # No tracer -> no timeline, but the analyze-path operator profile
        # and the bill are enough for an exact attribution tree.
        db, record = run_session(observe=False)
        db.query_server("tpch")  # session is alive
        profile = db.profile("tpch", record.query_id)
        total = sum(n.self_nanodollars for n in profile.root.walk())
        assert total == profile.billed_nanodollars


class TestCfGraft:
    def test_cf_execution_profile_contains_subplan(self):
        from repro.core import QueryServer
        from repro.obs import Instrumentation
        from repro.sim import Simulator
        from repro.storage.catalog import Catalog
        from repro.storage.object_store import ObjectStore
        from repro.turbo import Coordinator, TurboConfig
        from repro.turbo.coordinator import ExecutionVenue
        from repro.workloads import TpchGenerator, load_dataset

        sim = Simulator(seed=11)
        store = ObjectStore()
        catalog = Catalog()
        load_dataset(store, catalog, "tpch", TpchGenerator(scale=0.02).tables())
        obs = Instrumentation.create(clock=lambda: sim.now)
        coordinator = Coordinator(
            sim, TurboConfig.fast(), catalog, store, "tpch", obs=obs
        )
        heavy = (
            "SELECT l_returnflag, count(*) FROM lineitem GROUP BY l_returnflag"
        )
        executions = [
            coordinator.submit(heavy, cf_enabled=True) for _ in range(6)
        ]
        sim.run_until(300)
        on_cf = [
            e for e in executions if e.venue is ExecutionVenue.CF and e.succeeded
        ]
        assert on_cf, "overload failed to push any query onto CF"
        profile = on_cf[0].profile
        assert profile is not None
        names = []

        def collect(node):
            names.append(node.name)
            for child in node.children:
                collect(child)

        collect(profile)
        assert "MaterializedView" in names
        # The grafted CF sub-plan brings the pushed-down Scan with it.
        assert "Scan" in names


class TestQueryServerEndpoint:
    def test_unfinished_query_raises(self):
        from repro.errors import PixelsError

        db = PixelsDB(observe=True, seed=3)
        db.load_tpch("tpch", scale=0.01)
        record = db.submit("tpch", DEMO_SQL, ServiceLevel.IMMEDIATE)
        with pytest.raises(PixelsError):
            db.profile("tpch", record.query_id)
