"""Unit + property tests for vectorized expression evaluation and
three-valued logic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import expr as bound
from repro.storage.table import TableData
from repro.storage.types import ColumnVector, DataType


def table_of(**columns):
    built = {}
    for name, (dtype, values) in columns.items():
        built[name] = ColumnVector.from_values(dtype, values)
    return TableData(built)


def col(name, dtype):
    return bound.BoundColumn(name, dtype)


def lit(value, dtype):
    return bound.BoundLiteral(value, dtype)


class TestArithmetic:
    def test_add_promotes(self):
        table = table_of(a=(DataType.INT, [1, 2]), b=(DataType.DOUBLE, [0.5, 1.5]))
        expr = bound.BoundArithmetic.bind(
            "+", col("a", DataType.INT), col("b", DataType.DOUBLE)
        )
        assert expr.dtype is DataType.DOUBLE
        assert expr.evaluate(table).to_values() == [1.5, 3.5]

    def test_division_always_double(self):
        table = table_of(a=(DataType.INT, [7]))
        expr = bound.BoundArithmetic.bind(
            "/", col("a", DataType.INT), lit(2, DataType.INT)
        )
        assert expr.dtype is DataType.DOUBLE
        assert expr.evaluate(table).to_values() == [3.5]

    def test_division_by_zero_is_null(self):
        table = table_of(a=(DataType.INT, [1, 2]), b=(DataType.INT, [0, 1]))
        expr = bound.BoundArithmetic.bind(
            "/", col("a", DataType.INT), col("b", DataType.INT)
        )
        assert expr.evaluate(table).to_values() == [None, 2.0]

    def test_modulo_by_zero_is_null(self):
        table = table_of(a=(DataType.INT, [5]), b=(DataType.INT, [0]))
        expr = bound.BoundArithmetic.bind(
            "%", col("a", DataType.INT), col("b", DataType.INT)
        )
        assert expr.evaluate(table).to_values() == [None]

    def test_null_propagates(self):
        table = table_of(a=(DataType.INT, [1, None]))
        expr = bound.BoundArithmetic.bind(
            "+", col("a", DataType.INT), lit(1, DataType.INT)
        )
        assert expr.evaluate(table).to_values() == [2, None]

    def test_date_plus_days(self):
        expr = bound.BoundArithmetic.bind(
            "+", lit(100, DataType.DATE), lit(5, DataType.INT)
        )
        assert expr.dtype is DataType.DATE

    def test_date_multiply_rejected(self):
        from repro.errors import BindError

        with pytest.raises(BindError):
            bound.BoundArithmetic.bind(
                "*", lit(100, DataType.DATE), lit(5, DataType.INT)
            )

    def test_negate(self):
        table = table_of(a=(DataType.INT, [1, -2, None]))
        expr = bound.BoundNegate.bind(col("a", DataType.INT))
        assert expr.evaluate(table).to_values() == [-1, 2, None]


class TestComparisons:
    def test_null_comparison_is_null(self):
        table = table_of(a=(DataType.INT, [1, None]))
        expr = bound.BoundComparison.bind(
            "=", col("a", DataType.INT), lit(1, DataType.INT)
        )
        assert expr.evaluate(table).to_values() == [True, None]

    def test_varchar_comparison(self):
        table = table_of(s=(DataType.VARCHAR, ["a", "b"]))
        expr = bound.BoundComparison.bind(
            "<", col("s", DataType.VARCHAR), lit("b", DataType.VARCHAR)
        )
        assert expr.evaluate(table).to_values() == [True, False]

    @pytest.mark.parametrize(
        "op,expected",
        [
            ("=", [False, True, False]),
            ("<>", [True, False, True]),
            ("<", [True, False, False]),
            ("<=", [True, True, False]),
            (">", [False, False, True]),
            (">=", [False, True, True]),
        ],
    )
    def test_all_operators(self, op, expected):
        table = table_of(a=(DataType.INT, [1, 2, 3]))
        expr = bound.BoundComparison.bind(
            op, col("a", DataType.INT), lit(2, DataType.INT)
        )
        assert expr.evaluate(table).to_values() == expected


class TestKleeneLogic:
    """Truth tables for three-valued AND/OR."""

    CASES = [
        (True, True), (True, False), (True, None),
        (False, True), (False, False), (False, None),
        (None, True), (None, False), (None, None),
    ]

    def _eval(self, op, left_value, right_value):
        table = table_of(
            l=(DataType.BOOLEAN, [left_value]), r=(DataType.BOOLEAN, [right_value])
        )
        expr = bound.BoundLogical.bind(
            op, col("l", DataType.BOOLEAN), col("r", DataType.BOOLEAN)
        )
        return expr.evaluate(table).to_values()[0]

    def test_and_truth_table(self):
        def expected(l, r):
            if l is False or r is False:
                return False
            if l is None or r is None:
                return None
            return True

        for l, r in self.CASES:
            assert self._eval("and", l, r) == expected(l, r), (l, r)

    def test_or_truth_table(self):
        def expected(l, r):
            if l is True or r is True:
                return True
            if l is None or r is None:
                return None
            return False

        for l, r in self.CASES:
            assert self._eval("or", l, r) == expected(l, r), (l, r)

    def test_not_propagates_null(self):
        table = table_of(b=(DataType.BOOLEAN, [True, False, None]))
        expr = bound.BoundNot.bind(col("b", DataType.BOOLEAN))
        assert expr.evaluate(table).to_values() == [False, True, None]


class TestPredicates:
    def test_is_null(self):
        table = table_of(a=(DataType.INT, [1, None]))
        assert bound.BoundIsNull(col("a", DataType.INT)).evaluate(
            table
        ).to_values() == [False, True]
        assert bound.BoundIsNull(col("a", DataType.INT), negated=True).evaluate(
            table
        ).to_values() == [True, False]

    def test_in_list_numeric(self):
        table = table_of(a=(DataType.INT, [1, 2, 3, None]))
        expr = bound.BoundInList(col("a", DataType.INT), (1, 3))
        assert expr.evaluate(table).to_values() == [True, False, True, None]

    def test_in_list_varchar(self):
        table = table_of(s=(DataType.VARCHAR, ["x", "y"]))
        expr = bound.BoundInList(col("s", DataType.VARCHAR), ("x",), negated=True)
        assert expr.evaluate(table).to_values() == [False, True]

    @pytest.mark.parametrize(
        "pattern,value,matches",
        [
            ("abc", "abc", True),
            ("abc", "abd", False),
            ("%bc", "aaabc", True),
            ("a%", "a", True),
            ("a_c", "abc", True),
            ("a_c", "ac", False),
            ("%b%", "abc", True),
            ("", "", True),
            ("%", "anything", True),
            ("a.c", "abc", False),  # dot is literal, not regex
        ],
    )
    def test_like_patterns(self, pattern, value, matches):
        table = table_of(s=(DataType.VARCHAR, [value]))
        expr = bound.BoundLike(col("s", DataType.VARCHAR), pattern)
        assert expr.evaluate(table).to_values() == [matches]

    def test_like_null(self):
        table = table_of(s=(DataType.VARCHAR, [None]))
        expr = bound.BoundLike(col("s", DataType.VARCHAR), "%")
        assert expr.evaluate(table).to_values() == [None]


class TestCaseAndCast:
    def test_case_first_match_wins(self):
        table = table_of(a=(DataType.INT, [1, 2, 3]))
        expr = bound.BoundCase(
            whens=(
                (
                    bound.BoundComparison.bind(
                        ">", col("a", DataType.INT), lit(2, DataType.INT)
                    ),
                    lit("big", DataType.VARCHAR),
                ),
                (
                    bound.BoundComparison.bind(
                        ">", col("a", DataType.INT), lit(1, DataType.INT)
                    ),
                    lit("mid", DataType.VARCHAR),
                ),
            ),
            else_=lit("small", DataType.VARCHAR),
            dtype=DataType.VARCHAR,
        )
        assert expr.evaluate(table).to_values() == ["small", "mid", "big"]

    def test_case_without_else_yields_null(self):
        table = table_of(a=(DataType.INT, [1, 5]))
        expr = bound.BoundCase(
            whens=(
                (
                    bound.BoundComparison.bind(
                        ">", col("a", DataType.INT), lit(2, DataType.INT)
                    ),
                    lit(1, DataType.INT),
                ),
            ),
            else_=None,
            dtype=DataType.INT,
        )
        assert expr.evaluate(table).to_values() == [None, 1]

    def test_cast_int_to_varchar(self):
        table = table_of(a=(DataType.INT, [42]))
        expr = bound.BoundCast(col("a", DataType.INT), DataType.VARCHAR)
        assert expr.evaluate(table).to_values() == ["42"]

    def test_cast_varchar_to_double(self):
        table = table_of(s=(DataType.VARCHAR, ["2.5"]))
        expr = bound.BoundCast(col("s", DataType.VARCHAR), DataType.DOUBLE)
        assert expr.evaluate(table).to_values() == [2.5]


class TestScalarFunctions:
    def test_upper_lower_length(self):
        table = table_of(s=(DataType.VARCHAR, ["aBc"]))
        assert bound.BoundScalarFunction.bind(
            "upper", (col("s", DataType.VARCHAR),)
        ).evaluate(table).to_values() == ["ABC"]
        assert bound.BoundScalarFunction.bind(
            "lower", (col("s", DataType.VARCHAR),)
        ).evaluate(table).to_values() == ["abc"]
        assert bound.BoundScalarFunction.bind(
            "length", (col("s", DataType.VARCHAR),)
        ).evaluate(table).to_values() == [3]

    def test_year_month(self):
        table = table_of(d=(DataType.DATE, [9131]))  # 1995-01-01
        assert bound.BoundScalarFunction.bind(
            "year", (col("d", DataType.DATE),)
        ).evaluate(table).to_values() == [1995]
        assert bound.BoundScalarFunction.bind(
            "month", (col("d", DataType.DATE),)
        ).evaluate(table).to_values() == [1]

    def test_coalesce(self):
        table = table_of(
            a=(DataType.INT, [None, 1, None]), b=(DataType.INT, [2, 3, None])
        )
        expr = bound.BoundScalarFunction.bind(
            "coalesce", (col("a", DataType.INT), col("b", DataType.INT))
        )
        assert expr.evaluate(table).to_values() == [2, 1, None]

    def test_abs(self):
        table = table_of(a=(DataType.INT, [-5, 5]))
        expr = bound.BoundScalarFunction.bind("abs", (col("a", DataType.INT),))
        assert expr.evaluate(table).to_values() == [5, 5]

    def test_substring(self):
        table = table_of(s=(DataType.VARCHAR, ["hello"]))
        expr = bound.BoundScalarFunction.bind(
            "substring",
            (
                col("s", DataType.VARCHAR),
                lit(2, DataType.INT),
                lit(3, DataType.INT),
            ),
        )
        assert expr.evaluate(table).to_values() == ["ell"]

    def test_concat(self):
        table = table_of(s=(DataType.VARCHAR, ["a", None]))
        expr = bound.BoundConcat.bind(
            col("s", DataType.VARCHAR), lit("x", DataType.VARCHAR)
        )
        assert expr.evaluate(table).to_values() == ["ax", None]


class TestWherePredicateSemantics:
    def test_null_rows_dropped(self):
        vector = ColumnVector.from_values(DataType.BOOLEAN, [True, False, None])
        mask = bound.mask_from_predicate(vector)
        assert mask.tolist() == [True, False, False]

    def test_non_boolean_rejected(self):
        from repro.errors import ExecutionError

        vector = ColumnVector.from_values(DataType.INT, [1])
        with pytest.raises(ExecutionError):
            bound.mask_from_predicate(vector)


class TestPropertyComparisons:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.one_of(st.integers(-100, 100), st.none()), min_size=1, max_size=60),
        st.integers(-100, 100),
        st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
    )
    def test_matches_python_reference(self, values, threshold, op):
        import operator

        python_ops = {
            "=": operator.eq,
            "<>": operator.ne,
            "<": operator.lt,
            "<=": operator.le,
            ">": operator.gt,
            ">=": operator.ge,
        }
        table = table_of(a=(DataType.INT, values))
        expr = bound.BoundComparison.bind(
            op, col("a", DataType.INT), lit(threshold, DataType.INT)
        )
        got = expr.evaluate(table).to_values()
        expected = [
            None if value is None else python_ops[op](value, threshold)
            for value in values
        ]
        assert got == expected

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.text(max_size=10), min_size=1, max_size=40),
        # Exclude LIKE wildcards from the prefix: '%'/'_' would make the
        # startswith reference model wrong, not the implementation.
        st.text(
            alphabet=st.characters(exclude_characters="%_"), max_size=5
        ),
    )
    def test_like_prefix_property(self, values, prefix):
        table = table_of(s=(DataType.VARCHAR, values))
        expr = bound.BoundLike(col("s", DataType.VARCHAR), prefix + "%")
        got = expr.evaluate(table).to_values()
        expected = [value.startswith(prefix) for value in values]
        assert got == expected
