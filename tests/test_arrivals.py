"""Fleet-scale properties of the arrival processes: seeded determinism,
rate conservation, and bounded simulator event counts at 10⁴ sessions."""

import numpy as np
import pytest

from repro.core import ServiceLevel
from repro.core.scheduler import SessionFleet, SessionSpec, shard_of
from repro.sim import Simulator
from repro.workloads.arrivals import diurnal_arrivals, spike_arrivals


class TestSeededDeterminism:
    def test_diurnal_repeats_bit_exact(self):
        one = diurnal_arrivals(
            np.random.default_rng(7), duration_s=86400, peak_rate_per_s=0.1
        )
        two = diurnal_arrivals(
            np.random.default_rng(7), duration_s=86400, peak_rate_per_s=0.1
        )
        assert one == two
        assert one != diurnal_arrivals(
            np.random.default_rng(8), duration_s=86400, peak_rate_per_s=0.1
        )

    def test_spike_repeats_bit_exact(self):
        kwargs = dict(
            duration_s=600,
            base_rate_per_s=0.05,
            spike_at_s=300,
            spike_queries=200,
            spike_spread_s=2.0,
        )
        one = spike_arrivals(np.random.default_rng(3), **kwargs)
        two = spike_arrivals(np.random.default_rng(3), **kwargs)
        assert one == two


class TestRateConservation:
    def test_diurnal_mean_rate(self):
        """Thinning preserves the analytic mean intensity.

        The diurnal envelope integrates to
        ``trough + (1 - trough) * 0.5`` of the peak rate over a whole
        number of periods.
        """
        rng = np.random.default_rng(5)
        peak, trough = 0.5, 0.1
        duration = 4 * 86400  # whole periods so the integral is exact
        times = diurnal_arrivals(
            rng,
            duration_s=duration,
            peak_rate_per_s=peak,
            period_s=86400,
            trough_fraction=trough,
        )
        expected = peak * (trough + (1 - trough) * 0.5) * duration
        assert len(times) == pytest.approx(expected, rel=0.05)

    def test_spike_conserves_base_plus_spike(self):
        rng = np.random.default_rng(5)
        times = spike_arrivals(
            rng,
            duration_s=10_000,
            base_rate_per_s=0.2,
            spike_at_s=5_000,
            spike_queries=500,
            spike_spread_s=5.0,
        )
        expected = 0.2 * 10_000 + 500
        assert len(times) == pytest.approx(expected, rel=0.05)
        assert times == sorted(times)


class TestFleetSmoke:
    def test_ten_thousand_sessions_bounded_events(self):
        """10⁴ sessions drive the simulator with one event per arrival —
        the event count stays bounded by the schedule, not the fleet."""

        class CountingServer:
            def __init__(self):
                self.submissions = 0

            def submit(self, sql, level, result_limit=None, tenant=None,
                       on_finish=None):
                self.submissions += 1
                from repro.core.query_server import ServerQuery

                return ServerQuery(
                    query_id=f"q{self.submissions}",
                    sql=sql,
                    level=level,
                    submitted_at=0.0,
                    tenant=tenant,
                    requested_level=level,
                )

        sim = Simulator(seed=42)
        server = CountingServer()
        fleet = SessionFleet(sim, server, num_shards=16)
        rng = np.random.default_rng(42)
        num_sessions = 10_000
        for i in range(num_sessions):
            tenant = f"tenant-{i % 97}"
            offset = float(rng.uniform(0.0, 3600.0))
            fleet.add(
                SessionSpec(
                    session_id=f"s{i}",
                    tenant=tenant,
                    level=ServiceLevel.BEST_EFFORT,
                    arrivals=(offset,),
                    sql="SELECT 1",
                )
            )
        assert fleet.num_sessions == num_sessions
        scheduled = fleet.start()
        assert scheduled == num_sessions
        # One simulator event per arrival: a cap just above the schedule
        # size must not trip.
        sim.run_until(3600.0, max_events=num_sessions + 100)
        assert server.submissions == num_sessions
        assert fleet.totals() == {
            "submitted": num_sessions,
            "rejected": 0,
            "downgraded": 0,
        }
        # Every tenant landed on its CRC shard; counts cover the fleet.
        for shard in fleet.shards:
            for spec in shard.sessions:
                assert shard_of(spec.tenant, fleet.num_shards) == shard.index
        assert sum(len(s.sessions) for s in fleet.shards) == num_sessions
