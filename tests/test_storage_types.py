"""Unit tests for logical types and ColumnVector."""

import numpy as np
import pytest

from repro.storage.types import ColumnVector, DataType, date_to_days, days_to_date


class TestDataType:
    def test_numpy_dtypes(self):
        assert DataType.INT.numpy_dtype == np.dtype(np.int32)
        assert DataType.BIGINT.numpy_dtype == np.dtype(np.int64)
        assert DataType.DOUBLE.numpy_dtype == np.dtype(np.float64)
        assert DataType.VARCHAR.numpy_dtype == np.dtype(object)
        assert DataType.DATE.numpy_dtype == np.dtype(np.int32)

    def test_is_numeric(self):
        assert DataType.DOUBLE.is_numeric
        assert DataType.BIGINT.is_numeric
        assert not DataType.VARCHAR.is_numeric
        assert not DataType.DATE.is_numeric

    def test_is_orderable(self):
        assert DataType.DATE.is_orderable
        assert DataType.VARCHAR.is_orderable
        assert not DataType.BOOLEAN.is_orderable

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("INT", DataType.INT),
            ("integer", DataType.INT),
            ("Decimal", DataType.DOUBLE),
            ("text", DataType.VARCHAR),
            ("string", DataType.VARCHAR),
            ("bool", DataType.BOOLEAN),
            ("date", DataType.DATE),
            ("long", DataType.BIGINT),
        ],
    )
    def test_from_string(self, name, expected):
        assert DataType.from_string(name) is expected

    def test_from_string_unknown(self):
        with pytest.raises(ValueError, match="unknown data type"):
            DataType.from_string("blob")


class TestColumnVector:
    def test_from_values_roundtrip(self):
        vector = ColumnVector.from_values(DataType.INT, [1, 2, 3])
        assert vector.to_values() == [1, 2, 3]
        assert vector.null_count == 0

    def test_from_values_with_nulls(self):
        vector = ColumnVector.from_values(DataType.DOUBLE, [1.5, None, 2.5])
        assert vector.to_values() == [1.5, None, 2.5]
        assert vector.null_count == 1
        assert vector.has_nulls()

    def test_varchar_values(self):
        vector = ColumnVector.from_values(DataType.VARCHAR, ["a", None, "c"])
        assert vector.to_values() == ["a", None, "c"]

    def test_null_mask_length_checked(self):
        with pytest.raises(ValueError):
            ColumnVector(
                DataType.INT,
                np.array([1, 2], dtype=np.int32),
                np.array([True], dtype=bool),
            )

    def test_take(self):
        vector = ColumnVector.from_values(DataType.INT, [10, 20, 30, None])
        taken = vector.take(np.array([3, 0]))
        assert taken.to_values() == [None, 10]

    def test_filter(self):
        vector = ColumnVector.from_values(DataType.INT, [1, 2, 3, 4])
        mask = np.array([True, False, True, False])
        assert vector.filter(mask).to_values() == [1, 3]

    def test_slice(self):
        vector = ColumnVector.from_values(DataType.VARCHAR, ["a", "b", "c"])
        assert vector.slice(1, 3).to_values() == ["b", "c"]

    def test_concat(self):
        a = ColumnVector.from_values(DataType.INT, [1, None])
        b = ColumnVector.from_values(DataType.INT, [3])
        assert a.concat(b).to_values() == [1, None, 3]

    def test_concat_null_and_nonnull(self):
        a = ColumnVector.from_values(DataType.INT, [1, 2])
        b = ColumnVector.from_values(DataType.INT, [None])
        merged = a.concat(b)
        assert merged.to_values() == [1, 2, None]

    def test_concat_dtype_mismatch(self):
        a = ColumnVector.from_values(DataType.INT, [1])
        b = ColumnVector.from_values(DataType.BIGINT, [1])
        with pytest.raises(ValueError, match="dtype mismatch"):
            a.concat(b)

    def test_concat_all_many(self):
        pieces = [
            ColumnVector.from_values(DataType.INT, [i, None]) for i in range(4)
        ]
        merged = ColumnVector.concat_all(pieces)
        assert merged.to_values() == [0, None, 1, None, 2, None, 3, None]

    def test_concat_all_no_null_mask_when_no_nulls(self):
        pieces = [
            ColumnVector.from_values(DataType.INT, [1, 2]),
            ColumnVector.from_values(DataType.INT, [3]),
        ]
        merged = ColumnVector.concat_all(pieces)
        assert merged.nulls is None
        assert merged.to_values() == [1, 2, 3]

    def test_concat_all_single_returns_same(self):
        vector = ColumnVector.from_values(DataType.INT, [1])
        assert ColumnVector.concat_all([vector]) is vector

    def test_concat_all_empty_rejected(self):
        with pytest.raises(ValueError):
            ColumnVector.concat_all([])

    def test_concat_all_dtype_mismatch(self):
        with pytest.raises(ValueError, match="dtype mismatch"):
            ColumnVector.concat_all(
                [
                    ColumnVector.from_values(DataType.INT, [1]),
                    ColumnVector.from_values(DataType.BIGINT, [1]),
                ]
            )

    def test_nbytes_varchar_counts_payload(self):
        vector = ColumnVector.from_values(DataType.VARCHAR, ["ab", "cdef"])
        assert vector.nbytes() == 6 + 8

    def test_nbytes_numeric(self):
        vector = ColumnVector.from_values(DataType.INT, [1, 2, 3])
        assert vector.nbytes() == 12

    def test_boolean_from_values(self):
        vector = ColumnVector.from_values(DataType.BOOLEAN, [True, None, False])
        assert vector.to_values() == [True, None, False]

    def test_len(self):
        assert len(ColumnVector.from_values(DataType.INT, [1, 2])) == 2


class TestDates:
    def test_epoch(self):
        assert date_to_days("1970-01-01") == 0

    def test_roundtrip(self):
        for date in ["1992-03-15", "1998-12-01", "2024-02-29"]:
            assert days_to_date(date_to_days(date)) == date

    def test_ordering_preserved(self):
        assert date_to_days("1995-01-01") < date_to_days("1996-01-01")
