"""End-to-end tests for the SLO engine over the real stack.

Covers the observability invariant (observe=True changes no result and
no price), the deliberately-triggered burn-rate alert under overload,
and the autoscaler audit log's 1:1 pact with the watermark counter.
"""

import dataclasses

import pytest

from repro.baselines import run_workload
from repro.baselines.runner import Submission
from repro.core import ServiceLevel
from repro.obs.alerts import BurnRateRule
from repro.storage.catalog import Catalog
from repro.storage.object_store import ObjectStore
from repro.turbo import TurboConfig
from repro.turbo.config import CfConfig, VmConfig
from repro.workloads import TpchGenerator, load_dataset

HEAVY = "SELECT l_returnflag, count(*) FROM lineitem GROUP BY l_returnflag"


@pytest.fixture(scope="module")
def dataset():
    return TpchGenerator(scale=0.05).tables()


def _stress_config() -> TurboConfig:
    """An overload regime: a 2-worker cap, inflated scans, and a short
    grace period, so relaxed queries blow their pending-time deadline."""
    return dataclasses.replace(
        TurboConfig.fast(),
        vm=VmConfig(
            max_workers=2,
            scale_out_lag_s=9.0,
            evaluation_interval_s=1.0,
            scale_in_window_s=30.0,
            scale_in_cooldown_s=30.0,
        ),
        cf=CfConfig(startup_s=0.1),
        grace_period_s=10.0,
        data_inflation=5000.0,
    )


def _stress_submissions() -> list[Submission]:
    return [
        Submission(1.0 + index * 0.5, HEAVY, ServiceLevel.RELAXED)
        for index in range(30)
    ]


def _stress_rules() -> list[BurnRateRule]:
    # Windows shrunk to the test's time scale; same dual-window shape.
    return [
        BurnRateRule(
            "relaxed_burn_rate", "relaxed", threshold=6.0,
            fast_window_s=30.0, slow_window_s=60.0,
        )
    ]


def _run_stress(dataset, observe: bool):
    # Each run loads its own store: ObjectStore.metrics is cumulative,
    # so sharing one store would bleed absolute counter values (and thus
    # time-series exports) between runs.
    store = ObjectStore()
    catalog = Catalog()
    load_dataset(store, catalog, "tpch", dataset)
    return run_workload(
        _stress_submissions(), store, catalog, "tpch", _stress_config(),
        observe=observe, scrape_interval_s=5.0,
        alert_rules=_stress_rules() if observe else None,
    )


class TestBurnRateUnderOverload:
    def test_overload_violates_relaxed_deadlines(self, dataset):
        result = _run_stress(dataset, observe=True)
        level = result.obs.slo.snapshot()["levels"]["relaxed"]
        assert level["queries"] == 30
        assert level["violations"] > 5
        assert level["compliance"] < 0.9
        # The 99% budget is torched by a double-digit violation rate.
        assert level["budget"]["exhausted"]

    def test_burn_rate_alert_fires(self, dataset):
        result = _run_stress(dataset, observe=True)
        fired = [e for e in result.alerts.events if e.state == "firing"]
        assert [e.rule for e in fired] == ["relaxed_burn_rate"]
        assert fired[0].value >= 6.0
        # It fired on a scrape tick — alert timing is cadence-quantized.
        assert fired[0].time in result.timeseries.scrape_times

    def test_slack_histogram_recorded_misses(self, dataset):
        result = _run_stress(dataset, observe=True)
        slack = result.obs.metrics.get("pixels_query_deadline_slack_seconds")
        assert slack.count(level="relaxed") == 30
        rendered = result.obs.metrics.render()
        assert "pixels_query_deadline_slack_seconds_bucket" in rendered


class TestObserveInvariance:
    def test_observe_changes_no_result_and_no_price(self, dataset):
        dark = _run_stress(dataset, observe=False)
        lit = _run_stress(dataset, observe=True)

        def fingerprint(result):
            return [
                (
                    q.status.value,
                    q.submitted_at,
                    q.dispatched_at,
                    q.pending_time_s,
                    q.execution.finished_at if q.execution else None,
                    q.price,
                    q.execution.bytes_scanned if q.execution else None,
                )
                for q in result.queries
            ]

        assert fingerprint(dark) == fingerprint(lit)
        assert dark.billed() == lit.billed()
        # The unobserved run truly ran dark.
        assert dark.obs is None and dark.timeseries is None

    def test_observed_run_is_deterministic(self, dataset):
        first = _run_stress(dataset, observe=True)
        second = _run_stress(dataset, observe=True)
        assert (
            first.timeseries.export_jsonl() == second.timeseries.export_jsonl()
        )
        assert first.alerts.export_jsonl() == second.alerts.export_jsonl()
        assert first.obs.slo.export_json() == second.obs.slo.export_json()
        assert (
            first.coordinator.vm_cluster.export_audit_jsonl()
            == second.coordinator.vm_cluster.export_audit_jsonl()
        )


class TestAutoscalerAudit:
    def test_audit_log_is_one_to_one_with_watermark_counter(self, dataset):
        result = _run_stress(dataset, observe=True)
        audit = result.coordinator.vm_cluster.audit_log
        crossings = result.obs.metrics.get(
            "pixels_vm_watermark_crossings_total"
        )
        outs = [d for d in audit if d.action == "scale_out"]
        ins = [d for d in audit if d.action == "scale_in"]
        assert len(audit) > 0
        assert len(outs) == crossings.value(watermark="high")
        assert len(ins) == crossings.value(watermark="low")

    def test_audit_entries_explain_the_decision(self, dataset):
        result = _run_stress(dataset, observe=True)
        for decision in result.coordinator.vm_cluster.audit_log:
            if decision.action == "scale_out":
                assert decision.watermark == "high"
                assert decision.trigger_value >= decision.threshold
                assert decision.delta > 0
                assert (
                    decision.workers_target
                    == decision.workers_before
                    + decision.pending_before
                    + decision.delta
                )
            else:
                assert decision.watermark == "low"
                assert decision.trigger_value <= decision.threshold
                assert decision.delta < 0
                assert (
                    decision.workers_target
                    == decision.workers_before + decision.delta
                )

    def test_audit_recorded_even_without_observe(self, dataset):
        # The audit log is plain bookkeeping, not instrumentation: it is
        # available on unobserved runs too.
        result = _run_stress(dataset, observe=False)
        assert len(result.coordinator.vm_cluster.audit_log) > 0


class TestWorkloadDashboard:
    def test_dashboard_data_requires_observe(self, dataset):
        result = _run_stress(dataset, observe=False)
        with pytest.raises(ValueError):
            result.dashboard_data("nope")

    def test_dashboard_reflects_the_incident(self, dataset):
        from repro.obs.dashboard import render_dashboard_html

        result = _run_stress(dataset, observe=True)
        html = render_dashboard_html(result.dashboard_data("stress"))
        assert "relaxed_burn_rate" in html
        assert "EXHAUSTED" in html
        assert "scale_out" in html
