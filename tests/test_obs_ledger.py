"""Metering ledger and per-tenant spend accounting tests."""

import json

import pytest

from repro import PixelsDB, ServiceLevel
from repro.obs.ledger import (
    AXES,
    MeterLedger,
    NoopMeterLedger,
    load_events_jsonl,
)
from repro.obs.spend import SpendAccountant, budget_rules


class TestMeterLedger:
    def test_charge_query_emits_one_event_per_axis(self):
        ledger = MeterLedger()
        events = ledger.charge_query(
            "q1",
            axes={"bandwidth": 60, "compute": 30, "requests": 8, "fixed": 2},
            billed_nanodollars=100,
            tenant="t",
            level="immediate",
            venue="vm",
        )
        assert [e.axis for e in events] == list(AXES)
        assert sum(e.nanodollars for e in events) == 100
        assert all(e.billed_nanodollars == 100 for e in events)
        assert ledger.net_nanodollars("q1") == 100

    def test_append_only_monotonic_seq_and_ts(self):
        now = [0.0]
        ledger = MeterLedger(clock=lambda: now[0])
        ledger.charge("a", axis="fixed", nanodollars=1)
        now[0] = 5.0
        ledger.charge("b", axis="fixed", nanodollars=2)
        seqs = [e.seq for e in ledger.events()]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert [e.ts for e in ledger.events()] == [0.0, 5.0]

    def test_void_appends_negating_events_never_deletes(self):
        ledger = MeterLedger()
        ledger.charge_query(
            "q1",
            axes={"bandwidth": 7, "compute": 3, "requests": 0, "fixed": 0},
            billed_nanodollars=10,
        )
        before = len(ledger)
        voids = ledger.void("q1", reason="cancelled")
        assert len(ledger) == before + len(voids)  # nothing removed
        assert all(v.kind == "void" for v in voids)
        assert ledger.net_nanodollars("q1") == 0
        assert ledger.voided_query_ids() == ["q1"]

    def test_void_without_charges_leaves_tombstone(self):
        ledger = MeterLedger()
        voids = ledger.void("ghost", tenant="t", reason="cancelled_held")
        assert len(voids) == 1
        assert voids[0].nanodollars == 0
        assert voids[0].reason == "cancelled_held"
        assert "ghost" in ledger.voided_query_ids()

    def test_rejects_unknown_axis_and_account(self):
        ledger = MeterLedger()
        with pytest.raises(ValueError):
            ledger.charge("q", axis="gpu", nanodollars=1)
        with pytest.raises(ValueError):
            ledger.charge("q", axis="fixed", nanodollars=1, account="bank")

    def test_jsonl_export_round_trips(self):
        ledger = MeterLedger()
        ledger.charge_query(
            "q1",
            axes={"bandwidth": 5, "compute": 0, "requests": 0, "fixed": 1},
            billed_nanodollars=6,
            tenant="t",
            level="relaxed",
            venue="cf",
            bytes_scanned=1234,
            data_inflation=2.0,
            price_per_tb=1.0,
        )
        ledger.void("q1")
        text = ledger.export_jsonl()
        restored = load_events_jsonl(text)
        assert restored == ledger.events()

    def test_listeners_hear_every_event(self):
        ledger = MeterLedger()
        heard = []
        ledger.add_listener(heard.append)
        ledger.charge("q", axis="fixed", nanodollars=3)
        ledger.void("q")
        assert len(heard) == len(ledger)

    def test_noop_twin_is_inert(self):
        noop = NoopMeterLedger()
        assert noop.enabled is False
        assert noop.charge("q", axis="fixed", nanodollars=1) is None
        assert noop.charge_query("q", axes={}, billed_nanodollars=0) == []
        assert noop.void("q") == []
        assert noop.export_jsonl() == ""
        assert len(noop) == 0


class TestSpendAccountant:
    def _fed(self):
        ledger = MeterLedger()
        spend = SpendAccountant(budgets={"acme": 1e-8})
        ledger.add_listener(spend.on_event)
        return ledger, spend

    def test_aggregates_by_tenant_and_level(self):
        ledger, spend = self._fed()
        ledger.charge_query(
            "q1",
            axes={"bandwidth": 50, "compute": 0, "requests": 0, "fixed": 0},
            billed_nanodollars=50,
            tenant="acme",
            level="immediate",
        )
        ledger.charge_query(
            "q2",
            axes={"bandwidth": 7, "compute": 0, "requests": 0, "fixed": 0},
            billed_nanodollars=7,
            tenant="acme",
            level="relaxed",
        )
        ledger.charge_query(
            "q3",
            axes={"bandwidth": 3, "compute": 0, "requests": 0, "fixed": 0},
            billed_nanodollars=3,
            tenant="beta",
            level="relaxed",
        )
        assert spend.tenants() == ["acme", "beta"]
        assert spend.tenant_nanodollars("acme") == 57
        assert spend.by_level("acme") == {"immediate": 50, "relaxed": 7}
        assert spend.over_budget() == ["acme"]  # 57 nano$ > 10 nano$

    def test_voids_subtract_from_spend(self):
        ledger, spend = self._fed()
        ledger.charge_query(
            "q1",
            axes={"bandwidth": 50, "compute": 0, "requests": 0, "fixed": 0},
            billed_nanodollars=50,
            tenant="acme",
            level="immediate",
        )
        ledger.void("q1")
        assert spend.tenant_nanodollars("acme") == 0
        assert spend.over_budget() == []
        assert spend.report()["voids"] == 4  # one negating event per axis

    def test_rolling_window(self):
        now = [0.0]
        ledger = MeterLedger(clock=lambda: now[0])
        spend = SpendAccountant()
        ledger.add_listener(spend.on_event)
        ledger.charge("q1", axis="fixed", nanodollars=10, tenant="t")
        now[0] = 100.0
        ledger.charge("q2", axis="fixed", nanodollars=5, tenant="t")
        assert spend.spent_since("t", 50.0) == 5
        assert spend.spent_since("t", 0.0) == 15

    def test_provider_account_tracked_per_venue(self):
        ledger, spend = self._fed()
        ledger.charge(
            "q1", axis="compute", nanodollars=900, account="provider",
            venue="vm",
        )
        ledger.charge(
            "q2", axis="compute", nanodollars=100, account="provider",
            venue="cf",
        )
        assert spend.provider_nanodollars() == {"cf": 100, "vm": 900}
        # Provider spend never pollutes tenant totals.
        assert spend.tenants() == []

    def test_report_json_is_byte_stable(self):
        ledger, spend = self._fed()
        ledger.charge("q", axis="fixed", nanodollars=5, tenant="t")
        assert spend.export_json() == spend.export_json()
        payload = json.loads(spend.export_json())
        assert payload["tenants"][0]["tenant"] == "t"

    def test_budget_rules_target_tenant_labelled_metric(self):
        rules = budget_rules({"b": 2.0, "a": 1.0})
        assert [r.name for r in rules] == ["TenantBudget:a", "TenantBudget:b"]
        assert all(
            r.metric == "pixels_tenant_billed_dollars_total" for r in rules
        )
        assert rules[0].labels == (("tenant", "a"),)


class TestTenantThreading:
    """tenant= flows from submit into every observability surface."""

    @pytest.fixture(scope="class")
    def observed_db(self):
        db = PixelsDB(observe=True, seed=5, tenant_budgets={"acme": 1e-9})
        db.load_tpch("tpch", scale=0.02)
        db.submit(
            "tpch",
            "SELECT count(*) FROM orders",
            ServiceLevel.IMMEDIATE,
            tenant="acme",
        )
        db.submit("tpch", "SELECT count(*) FROM customer", ServiceLevel.RELAXED)
        db.run_to_completion()
        db.run(60.0)  # at least one scrape, so budget alerts evaluate
        return db

    def test_ledger_events_carry_tenant(self, observed_db):
        tenants = {
            e.tenant
            for e in observed_db.obs.ledger.events()
            if e.account == "user"
        }
        assert tenants == {"acme", "default"}

    def test_statement_store_keyed_by_tenant(self, observed_db):
        assert {"acme", "default"} <= {
            e.tenant for e in observed_db.obs.statements.entries()
        }

    def test_journal_submit_event_carries_tenant(self, observed_db):
        submits = [
            r
            for r in observed_db.obs.journal.records()
            if r["event"] == "submit"
        ]
        assert {r["tenant"] for r in submits} == {"acme", "default"}

    def test_root_span_carries_tenant(self, observed_db):
        tracer = observed_db.obs.tracer
        attrs = [
            span.attributes
            for qid in tracer.trace_ids()
            for span in tracer.spans(qid)
            if span.name == "query"
        ]
        assert any(a.get("tenant") == "acme" for a in attrs)

    def test_tenant_billed_metric_guarded_by_cardinality(self, observed_db):
        counter = observed_db.obs.metrics.counter(
            "pixels_tenant_billed_dollars_total", ""
        )
        assert counter.value(tenant="acme") > 0.0

    def test_soft_budget_alert_fires(self, observed_db):
        assert "TenantBudget:acme" in observed_db.alerts.firing()

    def test_spend_report_flags_over_budget_tenant(self, observed_db):
        rows = {
            row["tenant"]: row
            for row in observed_db.spend_report()["tenants"]
        }
        assert rows["acme"]["over_budget"] is True
        assert rows["default"]["over_budget"] is False

    def test_dashboard_renders_spend_panel(self, observed_db):
        html = observed_db.dashboard_html()
        assert "Spend by tenant" in html
        assert "acme" in html
        text = observed_db.dashboard_text()
        assert "spend by tenant" in text
        assert "OVER BUDGET" in text


class TestRoverBillingEndpoints:
    def test_rover_threads_tenant_and_serves_ledger_and_spend(self):
        from repro import UserStore

        db = PixelsDB(observe=True, seed=7)
        db.load_tpch("tpch", scale=0.02)
        users = UserStore()
        users.register("ana", "pw", {"tpch"}, tenant="analytics")
        rover = db.rover(users, "tpch")
        token = rover.login("ana", "pw")
        rover.select_database(token, "tpch")
        block = rover.ask(token, "How many orders are there?")
        rover.submit_query(token, block.block_id, ServiceLevel.IMMEDIATE)
        db.run_to_completion()

        ledger_text = rover.ledger(token)
        assert ledger_text  # billing left a trail
        events = load_events_jsonl(ledger_text)
        assert any(
            e.tenant == "analytics" for e in events if e.account == "user"
        )
        spend = json.loads(rover.spend(token))
        assert [row["tenant"] for row in spend["tenants"]] == ["analytics"]
        assert spend["tenants"][0]["nanodollars"] > 0

    def test_rover_tenant_defaults_to_username(self):
        from repro.rover.auth import UserStore

        users = UserStore()
        user = users.register("solo", "pw", set())
        assert user.tenant == "solo"
        assert users.tenant_of("solo") == "solo"

    def test_endpoints_require_session(self):
        from repro import UserStore
        from repro.errors import AuthenticationError

        db = PixelsDB(observe=True, seed=7)
        db.load_tpch("tpch", scale=0.02)
        rover = db.rover(UserStore(), "tpch")
        with pytest.raises(AuthenticationError):
            rover.ledger("bogus-token")
        with pytest.raises(AuthenticationError):
            rover.spend("bogus-token")
