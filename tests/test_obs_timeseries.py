"""Unit tests for the time-series store and scrape loop."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import ScrapeLoop, TimeSeriesStore
from repro.sim import Simulator


def _point(store: TimeSeriesStore, time: float, name: str, value: float,
           **labels: object) -> None:
    key = tuple(sorted((k, str(v)) for k, v in labels.items()))
    store.append(time, name, key, value)


class TestStore:
    def test_series_filters_by_exact_labels(self):
        store = TimeSeriesStore()
        _point(store, 1.0, "depth", 3.0, level="relaxed")
        _point(store, 2.0, "depth", 5.0, level="relaxed")
        _point(store, 2.0, "depth", 9.0, level="immediate")
        assert store.series("depth", level="relaxed") == [(1.0, 3.0), (2.0, 5.0)]
        assert store.series("depth") == [(1.0, 3.0), (2.0, 5.0), (2.0, 9.0)]
        assert store.latest("depth", level="immediate") == 9.0
        assert store.latest("missing") is None

    def test_names_and_label_sets_are_sorted(self):
        store = TimeSeriesStore()
        _point(store, 1.0, "b", 1.0)
        _point(store, 1.0, "a", 1.0, z="2")
        _point(store, 1.0, "a", 1.0, z="1")
        assert store.names() == ["a", "b"]
        assert store.label_sets("a") == [(("z", "1"),), (("z", "2"),)]

    def test_value_delta_over_half_open_window(self):
        store = TimeSeriesStore()
        for time, value in [(10.0, 5.0), (20.0, 8.0), (30.0, 14.0)]:
            _point(store, time, "total", value)
        # Baseline is the last sample at/before start; end is inclusive.
        assert store.value_delta("total", 10.0, 30.0) == pytest.approx(9.0)
        assert store.value_delta("total", 0.0, 30.0) == pytest.approx(14.0)
        assert store.value_delta("total", 20.0, 25.0) == pytest.approx(0.0)

    def test_value_delta_none_before_first_sample(self):
        store = TimeSeriesStore()
        _point(store, 50.0, "total", 3.0)
        assert store.value_delta("total", 0.0, 40.0) is None
        # A series first appearing inside the window counts from zero.
        assert store.value_delta("total", 0.0, 60.0) == pytest.approx(3.0)

    def test_delta_sum_matches_label_subsets(self):
        store = TimeSeriesStore()
        for time, value in [(10.0, 2.0), (20.0, 6.0)]:
            _point(store, time, "lat_count", value, level="relaxed", venue="vm")
        for time, value in [(10.0, 1.0), (20.0, 2.0)]:
            _point(store, time, "lat_count", value, level="immediate", venue="vm")
        assert store.delta_sum("lat_count", 10.0, 20.0) == pytest.approx(5.0)
        assert store.delta_sum(
            "lat_count", 10.0, 20.0, (("level", "relaxed"),)
        ) == pytest.approx(4.0)
        assert store.delta_sum(
            "lat_count", 10.0, 20.0, (("level", "gold"),)
        ) is None

    def test_export_jsonl_is_deterministic_and_ordered(self):
        def build() -> str:
            store = TimeSeriesStore()
            _point(store, 2.0, "b", 1.5, x="1")
            _point(store, 1.0, "a", 2.5)
            return store.export_jsonl()

        text = build()
        assert text == build()
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0] == '{"labels": {"x": "1"}, "name": "b", "time": 2.0, "value": 1.5}'
        assert text.endswith("\n")


class TestScrapeLoop:
    def test_fixed_cadence_regardless_of_event_interleaving(self):
        sim = Simulator()
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        loop = ScrapeLoop(sim, registry, interval_s=30.0)
        # Application events land at awkward, non-aligned times.
        for time, value in [(7.0, 3.0), (31.5, 8.0), (59.999, 1.0), (95.0, 6.0)]:
            sim.schedule_at(time, lambda v=value: gauge.set(v))
        sim.run_until(100.0)
        assert loop.store.scrape_times == [30.0, 60.0, 90.0]
        assert loop.store.series("depth") == [(30.0, 3.0), (60.0, 1.0), (90.0, 1.0)]

    def test_scrape_events_scheduled_out_of_order_still_tick_in_order(self):
        sim = Simulator()
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        loop = ScrapeLoop(sim, registry, interval_s=10.0)
        # Schedule the later mutation first; the heap orders by time.
        sim.schedule_at(25.0, lambda: counter.inc(10))
        sim.schedule_at(5.0, lambda: counter.inc(1))
        sim.run_until(30.0)
        assert loop.store.series("events_total") == [
            (10.0, 1.0), (20.0, 1.0), (30.0, 11.0),
        ]

    def test_final_flush_is_idempotent_on_tick_boundary(self):
        sim = Simulator()
        registry = MetricsRegistry()
        registry.gauge("depth").set(1)
        loop = ScrapeLoop(sim, registry, interval_s=30.0)
        sim.run_until(60.0)
        before = len(loop.store)
        loop.scrape()  # now == last tick → swallowed
        assert len(loop.store) == before
        sim.run_until(75.0)
        loop.scrape()  # mid-interval flush → one more snapshot
        assert loop.store.scrape_times == [30.0, 60.0, 75.0]

    def test_collectors_run_on_each_scrape(self):
        sim = Simulator()
        registry = MetricsRegistry()
        depth = registry.gauge("queue_depth")
        queue: list[int] = []
        registry.add_collector(lambda: depth.set(len(queue)))
        loop = ScrapeLoop(sim, registry, interval_s=10.0)
        sim.schedule_at(15.0, lambda: queue.extend([1, 2]))
        sim.run_until(20.0)
        assert loop.store.series("queue_depth") == [(10.0, 0.0), (20.0, 2.0)]

    def test_listeners_receive_the_scrape_time(self):
        sim = Simulator()
        seen: list[float] = []
        ScrapeLoop(sim, MetricsRegistry(), interval_s=10.0,
                   listeners=[seen.append])
        sim.run_until(30.0)
        assert seen == [10.0, 20.0, 30.0]

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            ScrapeLoop(Simulator(), MetricsRegistry(), interval_s=0.0)
