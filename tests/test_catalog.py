"""Unit tests for the metadata catalog."""

import pytest

from repro.errors import (
    DuplicateObjectError,
    NoSuchColumnError,
    NoSuchSchemaError,
    NoSuchTableError,
)
from repro.storage.catalog import Catalog, ColumnMeta
from repro.storage.types import DataType


@pytest.fixture
def catalog():
    c = Catalog()
    c.create_schema("tpch", comment="decision support")
    c.create_table(
        "tpch",
        "orders",
        [
            ColumnMeta("o_orderkey", DataType.BIGINT, "order id"),
            ColumnMeta("o_custkey", DataType.BIGINT, "customer id"),
            ColumnMeta("o_totalprice", DataType.DOUBLE, "total price"),
        ],
        bucket="warehouse",
        prefix="tpch/orders",
    )
    c.create_table(
        "tpch",
        "customer",
        [ColumnMeta("c_custkey", DataType.BIGINT, "customer id")],
    )
    return c


class TestSchemas:
    def test_create_and_lookup(self, catalog):
        assert catalog.schema("tpch").name == "tpch"
        assert catalog.has_schema("tpch")
        assert catalog.schema_names == ["tpch"]

    def test_duplicate_schema_rejected(self, catalog):
        with pytest.raises(DuplicateObjectError):
            catalog.create_schema("tpch")

    def test_missing_schema_raises(self, catalog):
        with pytest.raises(NoSuchSchemaError):
            catalog.schema("nope")

    def test_drop_schema(self, catalog):
        catalog.drop_schema("tpch")
        assert not catalog.has_schema("tpch")
        with pytest.raises(NoSuchSchemaError):
            catalog.drop_schema("tpch")


class TestTables:
    def test_lookup(self, catalog):
        table = catalog.table("tpch", "orders")
        assert table.column_names == ["o_orderkey", "o_custkey", "o_totalprice"]
        assert table.bucket == "warehouse"

    def test_missing_table(self, catalog):
        with pytest.raises(NoSuchTableError):
            catalog.table("tpch", "ghost")

    def test_duplicate_table_rejected(self, catalog):
        with pytest.raises(DuplicateObjectError):
            catalog.create_table("tpch", "orders", [ColumnMeta("x", DataType.INT)])

    def test_empty_columns_rejected(self, catalog):
        with pytest.raises(ValueError):
            catalog.create_table("tpch", "empty", [])

    def test_duplicate_column_names_rejected(self, catalog):
        with pytest.raises(DuplicateObjectError):
            catalog.create_table(
                "tpch",
                "dup",
                [ColumnMeta("a", DataType.INT), ColumnMeta("a", DataType.INT)],
            )

    def test_drop_table(self, catalog):
        catalog.drop_table("tpch", "orders")
        with pytest.raises(NoSuchTableError):
            catalog.table("tpch", "orders")

    def test_column_lookup(self, catalog):
        column = catalog.table("tpch", "orders").column("o_totalprice")
        assert column.dtype is DataType.DOUBLE
        with pytest.raises(NoSuchColumnError):
            catalog.table("tpch", "orders").column("ghost")

    def test_has_column(self, catalog):
        table = catalog.table("tpch", "orders")
        assert table.has_column("o_custkey")
        assert not table.has_column("nope")


class TestForeignKeysAndStats:
    def test_add_foreign_key(self, catalog):
        catalog.add_foreign_key("tpch", "orders", "o_custkey", "customer", "c_custkey")
        fks = catalog.table("tpch", "orders").foreign_keys
        assert len(fks) == 1
        assert fks[0].ref_table == "customer"

    def test_foreign_key_validates_columns(self, catalog):
        with pytest.raises(NoSuchColumnError):
            catalog.add_foreign_key("tpch", "orders", "ghost", "customer", "c_custkey")
        with pytest.raises(NoSuchTableError):
            catalog.add_foreign_key("tpch", "orders", "o_custkey", "ghost", "x")

    def test_update_statistics(self, catalog):
        catalog.update_statistics("tpch", "orders", 1500, 12345)
        table = catalog.table("tpch", "orders")
        assert table.row_count == 1500
        assert table.size_bytes == 12345


class TestDescribeSchema:
    def test_shape_matches_protocol(self, catalog):
        catalog.add_foreign_key("tpch", "orders", "o_custkey", "customer", "c_custkey")
        payload = catalog.describe_schema("tpch")
        assert payload["schema"] == "tpch"
        names = {t["name"] for t in payload["tables"]}
        assert names == {"orders", "customer"}
        orders = next(t for t in payload["tables"] if t["name"] == "orders")
        assert orders["columns"][0] == {
            "name": "o_orderkey",
            "type": "bigint",
            "comment": "order id",
        }
        assert orders["foreign_keys"] == [
            {"column": "o_custkey", "ref_table": "customer", "ref_column": "c_custkey"}
        ]


class TestPersistence:
    def test_json_roundtrip(self, catalog):
        catalog.add_foreign_key("tpch", "orders", "o_custkey", "customer", "c_custkey")
        catalog.update_statistics("tpch", "orders", 42, 1000)
        restored = Catalog.from_json(catalog.to_json())
        assert restored.schema_names == catalog.schema_names
        orders = restored.table("tpch", "orders")
        assert orders.column_names == ["o_orderkey", "o_custkey", "o_totalprice"]
        assert orders.row_count == 42
        assert orders.bucket == "warehouse"
        assert orders.foreign_keys[0].ref_table == "customer"
        assert orders.column("o_totalprice").comment == "total price"

    def test_save_load_through_object_store(self, catalog):
        from repro.storage.object_store import ObjectStore

        store = ObjectStore()
        catalog.save(store, "meta")
        restored = Catalog.load(store, "meta")
        assert restored.table("tpch", "orders").column_names == (
            catalog.table("tpch", "orders").column_names
        )

    def test_restored_catalog_plans_queries(self):
        """A catalog restored from the store still drives the engine."""
        from repro.engine.executor import QueryExecutor
        from repro.engine.optimizer import Optimizer
        from repro.engine.planner import Planner
        from repro.engine.source import ObjectStoreSource
        from repro.storage.object_store import ObjectStore
        from repro.workloads import TpchGenerator, load_dataset

        store = ObjectStore()
        catalog = Catalog()
        load_dataset(store, catalog, "tpch", TpchGenerator(scale=0.01).tables())
        catalog.save(store, "warehouse")
        restored = Catalog.load(store, "warehouse")
        planner = Planner(restored, "tpch")
        executor = QueryExecutor(ObjectStoreSource(store))
        result = executor.execute(
            Optimizer().optimize(planner.plan_sql("SELECT count(*) FROM orders"))
        )
        assert result.rows()[0][0] > 0
