"""EXPLAIN / EXPLAIN ANALYZE: parser, executor profiles, renderer, and
the coordinator/query-server front end."""

from tests.conftest import run_query

from repro.core import QueryStatus, ServiceLevel
from repro.engine.sql import ast
from repro.engine.sql.parser import parse_sql
from repro.obs import render_analyzed_plan


class TestParser:
    def test_explain(self):
        statement = parse_sql("EXPLAIN SELECT o_orderkey FROM orders")
        assert isinstance(statement, ast.Explain)
        assert not statement.analyze
        assert isinstance(statement.statement, ast.SelectStatement)

    def test_explain_analyze(self):
        statement = parse_sql("explain analyze SELECT 1")
        assert isinstance(statement, ast.Explain)
        assert statement.analyze

    def test_to_sql_round_trip(self):
        statement = parse_sql("EXPLAIN ANALYZE SELECT o_orderkey FROM orders")
        assert statement.to_sql().startswith("EXPLAIN ANALYZE SELECT")
        again = parse_sql(statement.to_sql())
        assert again == statement


class TestExecutorProfile:
    def test_profile_mirrors_plan_tree(self, mini_engine):
        planner, optimizer, executor = mini_engine
        plan = optimizer.optimize(
            planner.plan_sql(
                "SELECT o_orderstatus, COUNT(*) FROM orders "
                "WHERE o_totalprice > 150 GROUP BY o_orderstatus"
            )
        )
        result = executor.execute(plan, analyze=True)
        profile = result.profile
        assert profile is not None

        def flatten(node):
            yield node
            for child in node.children:
                yield from flatten(child)

        names = [p.name for p in flatten(profile)]
        assert names[0] == type(plan).__name__
        assert "Scan" in names
        # Root operator produced the final result's rows.
        assert profile.rows_out == result.data.num_rows
        assert all(p.time_s >= 0 for p in flatten(profile))

    def test_no_profile_without_analyze(self, mini_engine):
        result = run_query(mini_engine, "SELECT COUNT(*) FROM orders")
        assert result.profile is None

    def test_renderer_annotates_every_line(self, mini_store_engine):
        planner, optimizer, executor = mini_store_engine
        plan = optimizer.optimize(
            planner.plan_sql("SELECT COUNT(*) FROM orders WHERE o_totalprice > 150")
        )
        result = executor.execute(plan, analyze=True)
        text = render_analyzed_plan(plan, result.profile, result.stats)
        lines = text.splitlines()
        plan_lines = [line for line in lines if line and not line.startswith("totals:")]
        assert all("[rows=" in line for line in plan_lines)
        assert lines[-1].startswith("totals: bytes_scanned=")
        # Object-store execution reports real GET/cache accounting.
        assert result.stats.get_requests > 0
        assert f"get_requests={result.stats.get_requests}" in lines[-1]


class TestCoordinatorFrontEnd:
    def test_explain_report_annotations(self, turbo_env):
        sim, store, catalog, config, coordinator, server = turbo_env
        text = coordinator.explain(
            "SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag"
        )
        assert "Scan tpch.lineitem" in text
        assert "venue: vm — a vm slot is free" in text
        assert "estimated bytes scanned:" in text
        assert "vm estimate:" in text
        assert "cf estimate:" in text
        assert "cf fan-out:" in text

    def test_explain_reflects_cf_switch(self, turbo_env):
        sim, store, catalog, config, coordinator, server = turbo_env
        text = coordinator.explain("SELECT COUNT(*) FROM nation", cf_enabled=False)
        assert "cf acceleration disabled" in text

    def test_submitted_explain_returns_plan_rows_and_bills_nothing(self, turbo_env):
        sim, store, catalog, config, coordinator, server = turbo_env
        record = server.submit(
            "EXPLAIN SELECT COUNT(*) FROM nation", ServiceLevel.IMMEDIATE
        )
        sim.run_until(60)
        assert record.status is QueryStatus.FINISHED
        assert record.price == 0.0
        lines = [row[0] for row in record.result_rows()]
        assert any(line.startswith("Scan tpch.nation") for line in map(str.strip, lines))
        assert any("venue:" in line for line in lines)

    def test_submitted_explain_analyze_runs_and_annotates(self, turbo_env):
        sim, store, catalog, config, coordinator, server = turbo_env
        record = server.submit(
            "EXPLAIN ANALYZE SELECT l_returnflag, COUNT(*) FROM lineitem "
            "GROUP BY l_returnflag",
            ServiceLevel.IMMEDIATE,
        )
        sim.run_until(600)
        assert record.status is QueryStatus.FINISHED
        lines = [row[0] for row in record.result_rows()]
        assert any("[rows=" in line for line in lines)
        assert lines[-1].startswith("totals:")
        # ANALYZE really scans, so it bills like the underlying query.
        assert record.price > 0
        assert record.execution.venue is not None

    def test_submitted_explain_analyze_reports_pending_header(self, turbo_env):
        sim, store, catalog, config, coordinator, server = turbo_env
        record = server.submit(
            "EXPLAIN ANALYZE SELECT COUNT(*) FROM region",
            ServiceLevel.IMMEDIATE,
        )
        sim.run_until(600)
        assert record.status is QueryStatus.FINISHED
        lines = [row[0] for row in record.result_rows()]
        pending = [line for line in lines if line.startswith("pending: ")]
        assert len(pending) == 1
        # Pending time sits beside execution time, attributably split:
        # server queue wait, admission verdict, then VM queue wait.
        assert "queue_wait_s=" in pending[0]
        assert "admission=admit" in pending[0]
        assert "vm_queue_s=" in pending[0]
        assert any(line.startswith("execution: ") for line in lines)

    def test_inline_explain_analyze_has_no_pending_header(self, turbo_env):
        sim, store, catalog, config, coordinator, server = turbo_env
        # Inline runs never pass through the query server: there is no
        # scheduling story to tell, so the header is absent (and the
        # output stays byte-stable with pre-header captures).
        text = coordinator.explain_analyze("SELECT COUNT(*) FROM region")
        assert "pending:" not in text

    def test_inline_explain_analyze(self, turbo_env):
        sim, store, catalog, config, coordinator, server = turbo_env
        text = coordinator.explain_analyze("SELECT COUNT(*) FROM region")
        assert "[rows=1 " in text
        assert "totals:" in text
