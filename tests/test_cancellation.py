"""Cancellation tests: server queues, VM queue, running queries, CF."""

import pytest

from repro.core import QueryStatus, ServiceLevel
from repro.turbo.coordinator import ExecutionVenue

HEAVY = "SELECT l_returnflag, count(*) FROM lineitem GROUP BY l_returnflag"


class TestServerQueueCancellation:
    def test_cancel_held_relaxed_query(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        for _ in range(12):  # push over the high watermark
            server.submit(HEAVY, ServiceLevel.RELAXED)
        held = server.submit(HEAVY, ServiceLevel.RELAXED)
        assert held.dispatched_at is None
        queued_before = server.queued_relaxed
        assert server.cancel(held.query_id) is True
        assert held.status is QueryStatus.FAILED
        assert held.error == "cancelled by user"
        assert server.queued_relaxed == queued_before - 1
        sim.run_until(900)
        assert held.status is QueryStatus.FAILED  # never resurrected

    def test_cancel_held_best_effort_query(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        for _ in range(3):
            server.submit(HEAVY, ServiceLevel.RELAXED)
        held = server.submit(HEAVY, ServiceLevel.BEST_EFFORT)
        assert held.dispatched_at is None
        assert server.cancel(held.query_id) is True
        assert server.queued_best_effort == 0
        sim.run_until(900)
        assert held.status is QueryStatus.FAILED

    def test_cancel_fires_on_finish_callback(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        for _ in range(12):
            server.submit(HEAVY, ServiceLevel.RELAXED)
        finished = []
        held = server.submit(
            HEAVY, ServiceLevel.RELAXED, on_finish=lambda r: finished.append(r)
        )
        server.cancel(held.query_id)
        assert finished == [held]


class TestVmCancellation:
    def test_cancel_vm_queued_query(self, turbo_env):
        sim, _, _, _, coordinator, server = turbo_env
        records = [server.submit(HEAVY, ServiceLevel.RELAXED) for _ in range(4)]
        victim = records[-1]
        assert victim.status is QueryStatus.PENDING  # waiting in VM queue
        queue_before = coordinator.vm_cluster.queue_length
        assert server.cancel(victim.query_id) is True
        assert coordinator.vm_cluster.queue_length == queue_before - 1
        assert victim.status is QueryStatus.FAILED
        sim.run_until(900)
        others = [r for r in records if r is not victim]
        assert all(r.status is QueryStatus.FINISHED for r in others)

    def test_cancel_running_query_frees_slot(self, turbo_env):
        sim, _, _, _, coordinator, server = turbo_env
        record = server.submit(HEAVY, ServiceLevel.RELAXED)
        sim.run_until(0.001)
        assert record.status is QueryStatus.RUNNING
        running_before = coordinator.vm_cluster.running_tasks
        assert server.cancel(record.query_id) is True
        assert coordinator.vm_cluster.running_tasks == running_before - 1
        assert record.status is QueryStatus.FAILED
        # The freed slot is immediately usable.
        follow_up = server.submit(HEAVY, ServiceLevel.RELAXED)
        sim.run_until(900)
        assert follow_up.status is QueryStatus.FINISHED

    def test_cancelled_query_never_completes(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        record = server.submit(HEAVY, ServiceLevel.RELAXED)
        server.cancel(record.query_id)
        sim.run_until(900)
        assert record.status is QueryStatus.FAILED
        assert record.result_rows() == []
        assert record.price == 0.0


class TestCfCancellation:
    def test_cancel_cf_query_marks_failed_but_bills_invocation(self, turbo_env):
        sim, _, _, _, coordinator, server = turbo_env
        for _ in range(4):
            server.submit(HEAVY, ServiceLevel.RELAXED)
        record = server.submit(HEAVY, ServiceLevel.IMMEDIATE)
        assert record.execution.venue is ExecutionVenue.CF
        assert server.cancel(record.query_id) is True
        assert record.status is QueryStatus.FAILED
        sim.run_until(900)
        # The function fan-out already launched: it runs and is billed.
        assert record.status is QueryStatus.FAILED
        assert coordinator.cf_service.provider_cost() > 0


class TestCancellationEdges:
    def test_cancel_finished_query_returns_false(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        record = server.submit("SELECT count(*) FROM orders", ServiceLevel.IMMEDIATE)
        sim.run_until(120)
        assert record.status is QueryStatus.FINISHED
        assert server.cancel(record.query_id) is False
        assert record.status is QueryStatus.FINISHED

    def test_cancel_unknown_query_raises(self, turbo_env):
        from repro.errors import NoSuchQueryError

        _, _, _, _, _, server = turbo_env
        with pytest.raises(NoSuchQueryError):
            server.cancel("ghost")

    def test_double_cancel_is_false(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        record = server.submit(HEAVY, ServiceLevel.RELAXED)
        assert server.cancel(record.query_id) is True
        assert server.cancel(record.query_id) is False


class TestRoverCancellation:
    def test_cancel_via_result_block(self, turbo_env):
        from repro.nl2sql import CodesService
        from repro.rover import RoverServer, UserStore

        sim, store, catalog, config, coordinator, server = turbo_env
        users = UserStore()
        users.register("u", "p", {"tpch"})
        rover = RoverServer(users, catalog, CodesService(), server)
        token = rover.login("u", "p")
        rover.select_database(token, "tpch")
        block = rover.ask(token, "How many orders are there?")
        result = rover.submit_query(token, block.block_id, ServiceLevel.RELAXED)
        assert rover.cancel_query(token, result.result_id) is True
        expanded = rover.expand_result(token, result.result_id)
        assert expanded["status"] == "failed"
        assert "cancelled" in expanded["error"]


class TestCancellationBilling:
    """Cancelled queries bill exactly $0 and leave a voided audit trail
    in the metering ledger that the reconciler accepts."""

    def _observed_env(self):
        from repro.core import QueryServer
        from repro.obs import Instrumentation
        from repro.sim import Simulator
        from repro.turbo import Coordinator, TurboConfig
        from repro.workloads import TpchGenerator, load_dataset
        from repro.storage.catalog import Catalog
        from repro.storage.object_store import ObjectStore

        sim = Simulator(seed=11)
        store = ObjectStore()
        catalog = Catalog()
        load_dataset(store, catalog, "tpch", TpchGenerator(scale=0.05).tables())
        config = TurboConfig.fast()
        obs = Instrumentation.create(clock=lambda: sim.now)
        coordinator = Coordinator(sim, config, catalog, store, "tpch", obs=obs)
        server = QueryServer(sim, coordinator, config)
        return sim, server

    def test_cancelled_held_query_bills_zero_with_void_event(self):
        sim, server = self._observed_env()
        for _ in range(12):
            server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        held = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        assert server.cancel(held.query_id) is True
        sim.run_until(900)
        assert held.status is QueryStatus.FAILED
        assert held.price == 0.0
        assert held.price_nanodollars == 0
        ledger = server.obs.ledger
        assert held.query_id in ledger.voided_query_ids()
        voids = [
            e for e in ledger.events_for(held.query_id) if e.kind == "void"
        ]
        assert voids, "cancellation left no void event"
        assert voids[0].tenant == "acme"
        assert voids[0].reason == "cancelled_held"
        assert ledger.net_nanodollars(held.query_id) == 0

    def test_cancelled_dispatched_query_voids_and_reconciles(self):
        from repro.obs.reconcile import reconcile_server

        sim, server = self._observed_env()
        records = [
            server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
            for _ in range(4)
        ]
        victim = records[-1]
        assert victim.dispatched_at is not None  # in the VM pipeline
        assert server.cancel(victim.query_id) is True
        sim.run_until(900)
        assert victim.status is QueryStatus.FAILED
        assert victim.error == "cancelled by user"
        assert victim.price == 0.0
        assert victim.price_nanodollars == 0
        ledger = server.obs.ledger
        assert victim.query_id in ledger.voided_query_ids()
        assert ledger.net_nanodollars(victim.query_id) == 0
        # The survivors billed normally and the whole ledger reconciles:
        # cancelled queries net zero, finished ones match their price.
        report = reconcile_server(server)
        assert report.ok, report.render()
        assert server.total_billed_nanodollars() == sum(
            r.price_nanodollars for r in records
        )
        assert all(
            r.price_nanodollars > 0 for r in records if r is not victim
        )

    def test_cancelled_query_excluded_from_tenant_spend(self):
        sim, server = self._observed_env()
        kept = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        sim.run_until(900)  # let it finish before the next one is held
        for _ in range(12):
            server.submit(HEAVY, ServiceLevel.RELAXED, tenant="other")
        held = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        server.cancel(held.query_id)
        sim.run_until(1800)
        assert kept.status is QueryStatus.FINISHED
        spend = server.obs.spend
        assert spend.tenant_nanodollars("acme") == kept.price_nanodollars
        assert spend.report()["voids"] >= 1


class TestCancellationActivity:
    """The live-activity registry's view of a cancellation: the entry
    lands in the terminal ``cancelled`` state, its progress freezes at
    the fraction it died at, and the books still balance."""

    def _observed_env(self):
        from repro.core import QueryServer
        from repro.obs import Instrumentation
        from repro.sim import Simulator
        from repro.turbo import Coordinator, TurboConfig
        from repro.workloads import TpchGenerator, load_dataset
        from repro.storage.catalog import Catalog
        from repro.storage.object_store import ObjectStore

        sim = Simulator(seed=11)
        store = ObjectStore()
        catalog = Catalog()
        # Small row groups: the lineitem scan spans many morsels, so a
        # mid-pipeline cancel lands at a partial progress fraction.
        load_dataset(
            store,
            catalog,
            "tpch",
            TpchGenerator(scale=0.05).tables(),
            rows_per_group=256,
        )
        config = TurboConfig.fast()
        obs = Instrumentation.create(clock=lambda: sim.now)
        coordinator = Coordinator(sim, config, catalog, store, "tpch", obs=obs)
        server = QueryServer(sim, coordinator, config)
        return sim, server

    def test_cancel_mid_pipeline_freezes_partial_progress(self):
        from repro.obs.reconcile import reconcile_server

        sim, server = self._observed_env()
        record = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        entry = server.obs.activity.entry(record.query_id)
        assert entry.exec_started_at is not None  # idle cluster: runs now
        sim.run_until(entry.exec_started_at + entry.exec_duration_s * 0.5)
        assert record.status is QueryStatus.RUNNING
        snapshot = server.obs.activity.snapshot()
        row = next(
            r for r in snapshot["queries"] if r["query_id"] == record.query_id
        )
        assert 0.0 < row["progress"] < 1.0
        midflight = row["progress"]
        assert server.cancel(record.query_id) is True
        sim.run_until(900)
        assert record.status is QueryStatus.FAILED
        assert entry.state == "cancelled"
        row = next(
            r
            for r in server.obs.activity.snapshot()["queries"]
            if r["query_id"] == record.query_id
        )
        assert row["state"] == "cancelled"
        # Progress froze at the cancel instant — never reaches 1.0.
        assert row["progress"] == pytest.approx(midflight)
        assert row["progress"] <= 1.0
        # The ledger voided the in-flight charges and still reconciles.
        ledger = server.obs.ledger
        assert record.query_id in ledger.voided_query_ids()
        assert ledger.net_nanodollars(record.query_id) == 0
        report = reconcile_server(server)
        assert report.ok, report.render()

    def test_cancel_held_query_reports_cancelled_held(self):
        sim, server = self._observed_env()
        for _ in range(12):
            server.submit(HEAVY, ServiceLevel.RELAXED)
        held = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        entry = server.obs.activity.entry(held.query_id)
        assert entry.state == "queued"
        assert server.cancel(held.query_id) is True
        assert entry.state == "cancelled"
        assert entry.detail == "cancelled_held"
        sim.run_until(900)
        row = next(
            r
            for r in server.obs.activity.snapshot()["queries"]
            if r["query_id"] == held.query_id
        )
        assert row["state"] == "cancelled"
        assert row["progress"] == 0.0  # never ran
        assert row["detail"] == "cancelled_held"
        # Terminal states are stable: no later transition revives it.
        states = [state for state, _ in entry.history]
        assert states[-1] == "cancelled"
        assert states.count("cancelled") == 1
