"""Cancellation tests: server queues, VM queue, running queries, CF."""

import pytest

from repro.core import QueryStatus, ServiceLevel
from repro.turbo.coordinator import ExecutionVenue

HEAVY = "SELECT l_returnflag, count(*) FROM lineitem GROUP BY l_returnflag"


class TestServerQueueCancellation:
    def test_cancel_held_relaxed_query(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        for _ in range(12):  # push over the high watermark
            server.submit(HEAVY, ServiceLevel.RELAXED)
        held = server.submit(HEAVY, ServiceLevel.RELAXED)
        assert held.dispatched_at is None
        queued_before = server.queued_relaxed
        assert server.cancel(held.query_id) is True
        assert held.status is QueryStatus.FAILED
        assert held.error == "cancelled by user"
        assert server.queued_relaxed == queued_before - 1
        sim.run_until(900)
        assert held.status is QueryStatus.FAILED  # never resurrected

    def test_cancel_held_best_effort_query(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        for _ in range(3):
            server.submit(HEAVY, ServiceLevel.RELAXED)
        held = server.submit(HEAVY, ServiceLevel.BEST_EFFORT)
        assert held.dispatched_at is None
        assert server.cancel(held.query_id) is True
        assert server.queued_best_effort == 0
        sim.run_until(900)
        assert held.status is QueryStatus.FAILED

    def test_cancel_fires_on_finish_callback(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        for _ in range(12):
            server.submit(HEAVY, ServiceLevel.RELAXED)
        finished = []
        held = server.submit(
            HEAVY, ServiceLevel.RELAXED, on_finish=lambda r: finished.append(r)
        )
        server.cancel(held.query_id)
        assert finished == [held]


class TestVmCancellation:
    def test_cancel_vm_queued_query(self, turbo_env):
        sim, _, _, _, coordinator, server = turbo_env
        records = [server.submit(HEAVY, ServiceLevel.RELAXED) for _ in range(4)]
        victim = records[-1]
        assert victim.status is QueryStatus.PENDING  # waiting in VM queue
        queue_before = coordinator.vm_cluster.queue_length
        assert server.cancel(victim.query_id) is True
        assert coordinator.vm_cluster.queue_length == queue_before - 1
        assert victim.status is QueryStatus.FAILED
        sim.run_until(900)
        others = [r for r in records if r is not victim]
        assert all(r.status is QueryStatus.FINISHED for r in others)

    def test_cancel_running_query_frees_slot(self, turbo_env):
        sim, _, _, _, coordinator, server = turbo_env
        record = server.submit(HEAVY, ServiceLevel.RELAXED)
        sim.run_until(0.001)
        assert record.status is QueryStatus.RUNNING
        running_before = coordinator.vm_cluster.running_tasks
        assert server.cancel(record.query_id) is True
        assert coordinator.vm_cluster.running_tasks == running_before - 1
        assert record.status is QueryStatus.FAILED
        # The freed slot is immediately usable.
        follow_up = server.submit(HEAVY, ServiceLevel.RELAXED)
        sim.run_until(900)
        assert follow_up.status is QueryStatus.FINISHED

    def test_cancelled_query_never_completes(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        record = server.submit(HEAVY, ServiceLevel.RELAXED)
        server.cancel(record.query_id)
        sim.run_until(900)
        assert record.status is QueryStatus.FAILED
        assert record.result_rows() == []
        assert record.price == 0.0


class TestCfCancellation:
    def test_cancel_cf_query_marks_failed_but_bills_invocation(self, turbo_env):
        sim, _, _, _, coordinator, server = turbo_env
        for _ in range(4):
            server.submit(HEAVY, ServiceLevel.RELAXED)
        record = server.submit(HEAVY, ServiceLevel.IMMEDIATE)
        assert record.execution.venue is ExecutionVenue.CF
        assert server.cancel(record.query_id) is True
        assert record.status is QueryStatus.FAILED
        sim.run_until(900)
        # The function fan-out already launched: it runs and is billed.
        assert record.status is QueryStatus.FAILED
        assert coordinator.cf_service.provider_cost() > 0


class TestCancellationEdges:
    def test_cancel_finished_query_returns_false(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        record = server.submit("SELECT count(*) FROM orders", ServiceLevel.IMMEDIATE)
        sim.run_until(120)
        assert record.status is QueryStatus.FINISHED
        assert server.cancel(record.query_id) is False
        assert record.status is QueryStatus.FINISHED

    def test_cancel_unknown_query_raises(self, turbo_env):
        from repro.errors import NoSuchQueryError

        _, _, _, _, _, server = turbo_env
        with pytest.raises(NoSuchQueryError):
            server.cancel("ghost")

    def test_double_cancel_is_false(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        record = server.submit(HEAVY, ServiceLevel.RELAXED)
        assert server.cancel(record.query_id) is True
        assert server.cancel(record.query_id) is False


class TestRoverCancellation:
    def test_cancel_via_result_block(self, turbo_env):
        from repro.nl2sql import CodesService
        from repro.rover import RoverServer, UserStore

        sim, store, catalog, config, coordinator, server = turbo_env
        users = UserStore()
        users.register("u", "p", {"tpch"})
        rover = RoverServer(users, catalog, CodesService(), server)
        token = rover.login("u", "p")
        rover.select_database(token, "tpch")
        block = rover.ask(token, "How many orders are there?")
        result = rover.submit_query(token, block.block_id, ServiceLevel.RELAXED)
        assert rover.cancel_query(token, result.result_id) is True
        expanded = rover.expand_result(token, result.result_id)
        assert expanded["status"] == "failed"
        assert "cancelled" in expanded["error"]
