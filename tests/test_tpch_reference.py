"""Cross-validation: engine results vs an independent numpy reference.

The Q1/Q6-style queries are recomputed directly from the generated
arrays — a second, structurally different implementation — and compared
against the SQL engine's output end-to-end through the columnar format.
"""

import numpy as np
import pytest

from repro.engine.executor import QueryExecutor
from repro.engine.optimizer import Optimizer
from repro.engine.planner import Planner
from repro.engine.source import ObjectStoreSource
from repro.storage.catalog import Catalog
from repro.storage.object_store import ObjectStore
from repro.storage.types import date_to_days
from repro.workloads import TpchGenerator, load_dataset


@pytest.fixture(scope="module")
def environment():
    generator = TpchGenerator(scale=0.05, seed=13)
    tables = generator.tables()
    store = ObjectStore()
    catalog = Catalog()
    load_dataset(store, catalog, "tpch", tables)
    planner = Planner(catalog, "tpch")
    optimizer = Optimizer()
    executor = QueryExecutor(ObjectStoreSource(store))

    def run(sql):
        return executor.execute(optimizer.optimize(planner.plan_sql(sql))).rows()

    raw = {table.name: table.data for table in tables}
    return run, raw


class TestQ1Reference:
    def test_pricing_summary_matches_numpy(self, environment):
        run, raw = environment
        cutoff = date_to_days("1998-09-02")
        rows = run(
            "SELECT l_returnflag, l_linestatus, sum(l_quantity), "
            "sum(l_extendedprice), sum(l_extendedprice * (1 - l_discount)), "
            "avg(l_quantity), count(*) FROM lineitem "
            "WHERE l_shipdate <= DATE '1998-09-02' "
            "GROUP BY l_returnflag, l_linestatus "
            "ORDER BY l_returnflag, l_linestatus"
        )
        lineitem = raw["lineitem"]
        ship = lineitem.column("l_shipdate").data
        keep = ship <= cutoff
        flags = np.asarray(lineitem.column("l_returnflag").data)[keep]
        statuses = np.asarray(lineitem.column("l_linestatus").data)[keep]
        quantity = lineitem.column("l_quantity").data[keep]
        price = lineitem.column("l_extendedprice").data[keep]
        discount = lineitem.column("l_discount").data[keep]
        expected = []
        for flag in sorted(set(flags.tolist())):
            for status in sorted(set(statuses.tolist())):
                mask = (flags == flag) & (statuses == status)
                if not mask.any():
                    continue
                expected.append(
                    (
                        flag,
                        status,
                        float(quantity[mask].sum()),
                        float(price[mask].sum()),
                        float((price[mask] * (1 - discount[mask])).sum()),
                        float(quantity[mask].mean()),
                        int(mask.sum()),
                    )
                )
        assert len(rows) == len(expected)
        for got, want in zip(rows, expected):
            assert got[0] == want[0] and got[1] == want[1]
            for g, w in zip(got[2:], want[2:]):
                assert g == pytest.approx(w, rel=1e-9)


class TestQ6Reference:
    def test_forecast_revenue_matches_numpy(self, environment):
        run, raw = environment
        (got,) = run(
            "SELECT sum(l_extendedprice * l_discount) FROM lineitem "
            "WHERE l_shipdate >= DATE '1994-01-01' "
            "AND l_shipdate < DATE '1995-01-01' "
            "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"
        )
        lineitem = raw["lineitem"]
        ship = lineitem.column("l_shipdate").data
        discount = lineitem.column("l_discount").data
        quantity = lineitem.column("l_quantity").data
        price = lineitem.column("l_extendedprice").data
        mask = (
            (ship >= date_to_days("1994-01-01"))
            & (ship < date_to_days("1995-01-01"))
            & (discount >= 0.05)
            & (discount <= 0.07)
            & (quantity < 24)
        )
        expected = float((price[mask] * discount[mask]).sum())
        if not mask.any():
            assert got[0] is None
        else:
            assert got[0] == pytest.approx(expected, rel=1e-9)


class TestJoinReference:
    def test_customer_order_totals_match_numpy(self, environment):
        run, raw = environment
        rows = run(
            "SELECT c_custkey, sum(o_totalprice) FROM customer c "
            "JOIN orders o ON c.c_custkey = o.o_custkey "
            "GROUP BY c_custkey ORDER BY c_custkey"
        )
        orders = raw["orders"]
        keys = orders.column("o_custkey").data
        totals = orders.column("o_totalprice").data
        expected: dict[int, float] = {}
        for key, total in zip(keys.tolist(), totals.tolist()):
            expected[key] = expected.get(key, 0.0) + total
        assert len(rows) == len(expected)
        for custkey, total in rows:
            assert total == pytest.approx(expected[custkey], rel=1e-9)
