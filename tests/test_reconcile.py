"""End-to-end billing reconciliation tests.

The positive direction proves the tentpole equality chain on a real
observed workload — ledger axis sum == profiler attribution split ==
billed price == $/TB bytes basis, all in exact integer nanodollars —
and the negative direction corrupts ledgers in specific ways and
requires the reconciler to name each violated invariant.
"""

import dataclasses

import pytest

from repro import PixelsDB, ServiceLevel
from repro.obs.ledger import AXES, load_events_jsonl
from repro.obs.profiler import (
    NANOS_PER_DOLLAR,
    split_attribution_nanodollars,
)
from repro.obs.reconcile import (
    bytes_basis_nanodollars,
    main as reconcile_main,
    reconcile_events,
    reconcile_server,
)


@pytest.fixture(scope="module")
def observed_db():
    db = PixelsDB(observe=True, seed=9)
    db.load_tpch("tpch", scale=0.02)
    queries = [
        ("SELECT * FROM lineitem", ServiceLevel.IMMEDIATE, "acme"),
        ("SELECT count(*) FROM orders", ServiceLevel.RELAXED, "acme"),
        ("SELECT * FROM customer", ServiceLevel.BEST_EFFORT, "beta"),
        ("SELECT count(*) FROM lineitem", ServiceLevel.IMMEDIATE, None),
    ]
    for sql, level, tenant in queries:
        db.submit("tpch", sql, level, tenant=tenant)
    db.run_to_completion()
    return db


class TestEqualityChain:
    """The four audit surfaces agree exactly, per query."""

    def test_reconciliation_is_clean(self, observed_db):
        report = observed_db.reconcile()
        assert report.ok, report.render()
        assert report.queries_checked > 0
        assert report.events_checked == len(observed_db.obs.ledger)

    def test_ledger_net_equals_integer_bill_per_query(self, observed_db):
        server = observed_db.query_server("tpch")
        ledger = observed_db.obs.ledger
        for record in server.queries:
            net = ledger.net_nanodollars(record.query_id)
            assert net == record.price_nanodollars
            assert net == round(record.price * NANOS_PER_DOLLAR)

    def test_ledger_axes_equal_profiler_split(self, observed_db):
        server = observed_db.query_server("tpch")
        ledger = observed_db.obs.ledger
        for record in server.queries:
            profile = server.query_profile(record.query_id)
            _, pools = split_attribution_nanodollars(
                record.price, profile.attribution
            )
            by_axis = {axis: 0 for axis in AXES}
            for event in ledger.events_for(record.query_id):
                if event.account == "user" and event.kind == "charge":
                    by_axis[event.axis] += event.nanodollars
            assert by_axis == dict(zip(AXES, pools))
            # ... and the profile tree sums to the same integer bill.
            tree = sum(n.self_nanodollars for n in profile.root.walk())
            assert tree == record.price_nanodollars

    def test_bytes_basis_matches_stamped_bill(self, observed_db):
        inflation = observed_db.config.data_inflation
        for event in observed_db.obs.ledger.events():
            if event.account != "user" or event.kind != "charge":
                continue
            assert event.data_inflation == inflation
            assert (
                bytes_basis_nanodollars(
                    event.bytes_scanned,
                    event.data_inflation,
                    event.price_per_tb,
                )
                == event.billed_nanodollars
            )

    def test_server_total_is_exact_integer_sum(self, observed_db):
        server = observed_db.query_server("tpch")
        assert server.total_billed_nanodollars() == sum(
            q.price_nanodollars for q in server.queries
        )
        assert server.total_billed() == (
            server.total_billed_nanodollars() / NANOS_PER_DOLLAR
        )

    def test_statement_store_agrees_with_ledger_per_tenant(self, observed_db):
        """Σ statement-store nanodollars == Σ ledger user charges — the
        shared splitter keeps every surface on the same integers."""
        store_total = sum(
            e.nanodollars for e in observed_db.obs.statements.entries()
        )
        assert store_total == observed_db.obs.ledger.total_nanodollars("user")

    def test_standalone_replay_of_export_is_clean(self, observed_db):
        events = load_events_jsonl(observed_db.ledger_jsonl())
        report = reconcile_events(events)
        assert report.ok, report.render()
        assert report.total_nanodollars == (
            observed_db.obs.ledger.total_nanodollars("user")
        )


class TestNamedViolations:
    """Seeded corruptions are detected and named — zero tolerance."""

    def _events(self, observed_db):
        return list(observed_db.obs.ledger.events())

    def _user_charge_index(self, events, axis="bandwidth"):
        return next(
            i
            for i, e in enumerate(events)
            if e.kind == "charge" and e.account == "user" and e.axis == axis
        )

    def test_one_nanodollar_drift_is_detected(self, observed_db):
        events = self._events(observed_db)
        i = self._user_charge_index(events)
        events[i] = dataclasses.replace(
            events[i], nanodollars=events[i].nanodollars + 1
        )
        report = reconcile_events(events)
        assert not report.ok
        assert {v.invariant for v in report.violations} == {
            "ledger.charge_sums_to_bill"
        }
        assert report.violations[0].query_id == events[i].query_id

    def test_tampered_bytes_basis_is_detected(self, observed_db):
        events = self._events(observed_db)
        i = self._user_charge_index(events)
        events[i] = dataclasses.replace(
            events[i], bytes_scanned=events[i].bytes_scanned + 1000
        )
        report = reconcile_events(events)
        assert "ledger.bytes_basis" in {
            v.invariant for v in report.violations
        }

    def test_reordered_sequence_is_detected(self, observed_db):
        events = self._events(observed_db)
        events[0], events[1] = events[1], events[0]
        report = reconcile_events(events)
        assert "ledger.sequence_monotonic" in {
            v.invariant for v in report.violations
        }

    def test_negative_charge_is_detected(self, observed_db):
        events = self._events(observed_db)
        i = self._user_charge_index(events)
        events[i] = dataclasses.replace(events[i], nanodollars=-5)
        report = reconcile_events(events)
        assert "ledger.charge_sign" in {
            v.invariant for v in report.violations
        }

    def test_unknown_axis_is_detected(self, observed_db):
        events = self._events(observed_db)
        events[0] = dataclasses.replace(events[0], axis="gpu")
        report = reconcile_events(events)
        assert "ledger.schema" in {v.invariant for v in report.violations}

    def test_partial_void_is_detected(self, observed_db):
        """Voiding only one axis leaves a non-zero net — caught."""
        events = self._events(observed_db)
        i = self._user_charge_index(events)
        tail = dataclasses.replace(
            events[i],
            seq=events[-1].seq + 1,
            kind="void",
            nanodollars=-(events[i].nanodollars // 2) - 1,
        )
        report = reconcile_events(events + [tail])
        assert "ledger.void_nets_zero" in {
            v.invariant for v in report.violations
        }

    def test_dropped_ledger_entry_is_detected_server_side(self, observed_db):
        """An in-memory ledger that lost a query's events (simulated via
        a fresh server cross-check) trips ledger.missing_query."""
        server = observed_db.query_server("tpch")
        ledger = server.obs.ledger
        victim = next(q for q in server.queries if q.price_nanodollars > 0)
        stolen = ledger._by_query.pop(victim.query_id)
        try:
            report = reconcile_server(server)
        finally:
            ledger._by_query[victim.query_id] = stolen
        assert "ledger.missing_query" in {
            v.invariant for v in report.violations
        }

    def test_violation_report_round_trips_to_json(self, observed_db):
        events = self._events(observed_db)
        i = self._user_charge_index(events)
        events[i] = dataclasses.replace(
            events[i], nanodollars=events[i].nanodollars + 1
        )
        report = reconcile_events(events)
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["violations"][0]["invariant"] == (
            "ledger.charge_sums_to_bill"
        )
        assert "VIOLATION" in report.render()


class TestReconcileCli:
    def test_cli_accepts_clean_and_rejects_corrupt(
        self, observed_db, tmp_path, capsys
    ):
        clean = tmp_path / "clean.jsonl"
        clean.write_text(observed_db.ledger_jsonl(), encoding="utf-8")
        assert reconcile_main([str(clean)]) == 0

        events = list(observed_db.obs.ledger.events())
        i = next(
            i
            for i, e in enumerate(events)
            if e.kind == "charge" and e.account == "user"
        )
        events[i] = dataclasses.replace(
            events[i], nanodollars=events[i].nanodollars + 1
        )
        from repro.obs.ledger import events_jsonl

        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text(events_jsonl(events), encoding="utf-8")
        assert reconcile_main([str(corrupt)]) == 1
        out = capsys.readouterr().out
        assert "ledger.charge_sums_to_bill" in out

    def test_cli_usage_without_args(self):
        assert reconcile_main([]) == 2
