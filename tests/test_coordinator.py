"""Unit/integration tests for the Coordinator's scheduling decisions."""

import pytest

from repro.errors import NoSuchQueryError, PixelsError
from repro.turbo.coordinator import ExecutionVenue

SIMPLE = "SELECT count(*) FROM orders"
HEAVY = (
    "SELECT l_returnflag, count(*) FROM lineitem GROUP BY l_returnflag"
)


class TestSubmission:
    def test_runs_on_vm_when_slot_free(self, turbo_env):
        sim, _, _, _, coordinator, _ = turbo_env
        execution = coordinator.submit(SIMPLE, cf_enabled=True)
        sim.run_until(60)
        assert execution.succeeded
        assert execution.venue is ExecutionVenue.VM
        assert execution.result.rows()[0][0] > 0

    def test_overload_with_cf_goes_to_cf(self, turbo_env):
        sim, _, _, _, coordinator, _ = turbo_env
        executions = [
            coordinator.submit(HEAVY, cf_enabled=True) for _ in range(6)
        ]
        sim.run_until(120)
        venues = {execution.venue for execution in executions}
        assert ExecutionVenue.CF in venues
        assert all(execution.succeeded for execution in executions)

    def test_overload_without_cf_queues_in_vm(self, turbo_env):
        sim, _, _, _, coordinator, _ = turbo_env
        executions = [
            coordinator.submit(HEAVY, cf_enabled=False) for _ in range(6)
        ]
        assert coordinator.cf_service.invocations == []
        sim.run_until(300)
        assert all(execution.succeeded for execution in executions)
        assert all(
            execution.venue is ExecutionVenue.VM for execution in executions
        )
        # The later queries waited for a slot: nonzero pending time.
        assert any(execution.pending_time_s > 0 for execution in executions)

    def test_cf_and_vm_same_results(self, turbo_env):
        sim, _, _, _, coordinator, _ = turbo_env
        vm_execution = coordinator.submit(HEAVY, cf_enabled=False)
        sim.run_until(120)
        # Saturate, then submit with CF.
        blockers = [coordinator.submit(HEAVY, cf_enabled=False) for _ in range(4)]
        cf_execution = coordinator.submit(HEAVY, cf_enabled=True)
        sim.run_until(400)
        assert cf_execution.venue is ExecutionVenue.CF
        assert sorted(cf_execution.result.rows()) == sorted(
            vm_execution.result.rows()
        )

    def test_bad_sql_fails_cleanly(self, turbo_env):
        sim, _, _, _, coordinator, _ = turbo_env
        execution = coordinator.submit("SELEKT oops", cf_enabled=True)
        assert execution.error is not None
        assert not execution.succeeded

    def test_unknown_table_fails_cleanly(self, turbo_env):
        sim, _, _, _, coordinator, _ = turbo_env
        execution = coordinator.submit(
            "SELECT * FROM missing_table", cf_enabled=True
        )
        assert execution.error is not None

    def test_duplicate_query_id_rejected(self, turbo_env):
        _, _, _, _, coordinator, _ = turbo_env
        coordinator.submit(SIMPLE, cf_enabled=True, query_id="dup")
        with pytest.raises(PixelsError):
            coordinator.submit(SIMPLE, cf_enabled=True, query_id="dup")

    def test_execution_lookup(self, turbo_env):
        _, _, _, _, coordinator, _ = turbo_env
        execution = coordinator.submit(SIMPLE, cf_enabled=True, query_id="x")
        assert coordinator.execution("x") is execution
        with pytest.raises(NoSuchQueryError):
            coordinator.execution("ghost")

    def test_on_complete_callback_fires(self, turbo_env):
        sim, _, _, _, coordinator, _ = turbo_env
        finished = []
        coordinator.submit(
            SIMPLE, cf_enabled=True, on_complete=lambda e: finished.append(e)
        )
        sim.run_until(60)
        assert len(finished) == 1
        assert finished[0].succeeded


class TestLoadStatusApi:
    def test_watermark_checks(self, turbo_env):
        sim, _, _, config, coordinator, _ = turbo_env
        assert coordinator.below_high_watermark()
        assert coordinator.below_low_watermark()
        for _ in range(12):
            coordinator.submit(HEAVY, cf_enabled=False)
        assert not coordinator.below_high_watermark()
        assert not coordinator.below_low_watermark()

    def test_concurrency_counts_running_and_queued(self, turbo_env):
        _, _, _, _, coordinator, _ = turbo_env
        for _ in range(5):
            coordinator.submit(HEAVY, cf_enabled=False)
        assert coordinator.concurrency == 5


class TestStatistics:
    def test_execution_times_recorded(self, turbo_env):
        sim, _, _, _, coordinator, _ = turbo_env
        execution = coordinator.submit(HEAVY, cf_enabled=True)
        sim.run_until(120)
        assert execution.pending_time_s == 0.0
        assert execution.execution_time_s > 0
        assert execution.bytes_scanned > 0

    def test_provider_cost_accumulates(self, turbo_env):
        sim, _, _, _, coordinator, _ = turbo_env
        coordinator.submit(HEAVY, cf_enabled=True)
        sim.run_until(120)
        assert coordinator.total_provider_cost() > 0

    def test_cf_execution_records_workers(self, turbo_env):
        sim, _, _, _, coordinator, _ = turbo_env
        for _ in range(4):
            coordinator.submit(HEAVY, cf_enabled=False)
        cf_execution = coordinator.submit(HEAVY, cf_enabled=True)
        sim.run_until(300)
        assert cf_execution.venue is ExecutionVenue.CF
        assert cf_execution.cf_workers >= 1
        assert cf_execution.provider_cost > 0
