"""Property-based engine tests: the SQL engine vs a Python reference.

Hypothesis generates random small tables and random (filter, aggregate,
sort) query fragments; the engine's answer must match a straightforward
pure-Python evaluation.  This guards the vectorized operators' null
semantics and ordering rules against whole classes of inputs rather than
hand-picked cases.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.executor import QueryExecutor
from repro.engine.optimizer import Optimizer
from repro.engine.planner import Planner
from repro.engine.source import InMemorySource
from repro.storage.catalog import Catalog, ColumnMeta
from repro.storage.table import TableData
from repro.storage.types import DataType

ROW = st.tuples(
    st.one_of(st.integers(-50, 50), st.none()),
    st.one_of(st.sampled_from(["a", "b", "c", "dd"]), st.none()),
    st.one_of(
        st.floats(
            min_value=-100, max_value=100, allow_nan=False, width=32
        ),
        st.none(),
    ),
)
ROWS = st.lists(ROW, min_size=0, max_size=60)

SCHEMA = [
    ("k", DataType.INT),
    ("s", DataType.VARCHAR),
    ("v", DataType.DOUBLE),
]


def engine_for(rows):
    catalog = Catalog()
    catalog.create_schema("p")
    catalog.create_table(
        "p",
        "t",
        [
            ColumnMeta("k", DataType.INT),
            ColumnMeta("s", DataType.VARCHAR),
            ColumnMeta("v", DataType.DOUBLE),
        ],
    )
    source = InMemorySource({("p", "t"): TableData.from_rows(SCHEMA, rows)})
    planner = Planner(catalog, "p")
    optimizer = Optimizer()
    executor = QueryExecutor(source)

    def run(sql):
        return executor.execute(optimizer.optimize(planner.plan_sql(sql))).rows()

    return run


def approx_rows(rows):
    return [
        tuple(
            round(value, 6) if isinstance(value, float) else value
            for value in row
        )
        for row in rows
    ]


class TestFilterProperties:
    @settings(max_examples=50, deadline=None)
    @given(ROWS, st.integers(-50, 50))
    def test_filter_matches_reference(self, rows, threshold):
        run = engine_for(rows)
        got = run(f"SELECT k FROM t WHERE k > {threshold}")
        expected = [(k,) for k, _, _ in rows if k is not None and k > threshold]
        assert sorted(got) == sorted(expected)

    @settings(max_examples=50, deadline=None)
    @given(ROWS)
    def test_is_null_partitions_rows(self, rows):
        run = engine_for(rows)
        nulls = run("SELECT count(*) FROM t WHERE k IS NULL")[0][0]
        not_nulls = run("SELECT count(*) FROM t WHERE k IS NOT NULL")[0][0]
        assert nulls + not_nulls == len(rows)

    @settings(max_examples=50, deadline=None)
    @given(ROWS, st.integers(-50, 0), st.integers(0, 50))
    def test_between_equals_two_comparisons(self, rows, low, high):
        run = engine_for(rows)
        between = run(f"SELECT count(*) FROM t WHERE k BETWEEN {low} AND {high}")
        two = run(f"SELECT count(*) FROM t WHERE k >= {low} AND k <= {high}")
        assert between == two

    @settings(max_examples=50, deadline=None)
    @given(ROWS)
    def test_complement_splits_non_null(self, rows):
        """WHERE p and WHERE NOT p partition the rows where p is not NULL."""
        run = engine_for(rows)
        positive = run("SELECT count(*) FROM t WHERE k > 0")[0][0]
        negative = run("SELECT count(*) FROM t WHERE NOT (k > 0)")[0][0]
        non_null = run("SELECT count(*) FROM t WHERE k IS NOT NULL")[0][0]
        assert positive + negative == non_null


class TestAggregateProperties:
    @settings(max_examples=50, deadline=None)
    @given(ROWS)
    def test_global_aggregates_match_reference(self, rows):
        run = engine_for(rows)
        (count, total, low, high) = run(
            "SELECT count(v), sum(v), min(v), max(v) FROM t"
        )[0]
        values = [v for _, _, v in rows if v is not None]
        assert count == len(values)
        if values:
            assert total == pytest.approx(math.fsum(values), abs=1e-6)
            assert low == pytest.approx(min(values))
            assert high == pytest.approx(max(values))
        else:
            assert total is None and low is None and high is None

    @settings(max_examples=50, deadline=None)
    @given(ROWS)
    def test_group_counts_sum_to_total(self, rows):
        run = engine_for(rows)
        groups = run("SELECT s, count(*) FROM t GROUP BY s")
        assert sum(count for _, count in groups) == len(rows)
        # One group per distinct value (NULL forms its own group).
        distinct = {s for _, s, _ in rows}
        assert len(groups) == len(distinct)

    @settings(max_examples=50, deadline=None)
    @given(ROWS)
    def test_count_distinct_matches_reference(self, rows):
        run = engine_for(rows)
        got = run("SELECT count(DISTINCT s) FROM t")[0][0]
        assert got == len({s for _, s, _ in rows if s is not None})

    @settings(max_examples=50, deadline=None)
    @given(ROWS)
    def test_avg_is_sum_over_count(self, rows):
        run = engine_for(rows)
        avg, total, count = run("SELECT avg(v), sum(v), count(v) FROM t")[0]
        if count == 0:
            assert avg is None
        else:
            assert avg == pytest.approx(total / count)

    @settings(max_examples=50, deadline=None)
    @given(ROWS)
    def test_group_sums_match_reference(self, rows):
        run = engine_for(rows)
        got = {
            s: total for s, total in run("SELECT s, sum(k) FROM t GROUP BY s")
        }
        expected: dict = {}
        for k, s, _ in rows:
            expected.setdefault(s, [])
            if k is not None:
                expected[s].append(k)
        for s, ks in expected.items():
            if ks:
                assert got[s] == sum(ks)
            else:
                assert got[s] is None


class TestSortDistinctProperties:
    @settings(max_examples=50, deadline=None)
    @given(ROWS)
    def test_sort_is_ordered_nulls_last(self, rows):
        run = engine_for(rows)
        got = [row[0] for row in run("SELECT k FROM t ORDER BY k")]
        non_null = [value for value in got if value is not None]
        assert non_null == sorted(non_null)
        first_null = next(
            (i for i, value in enumerate(got) if value is None), len(got)
        )
        assert all(value is None for value in got[first_null:])

    @settings(max_examples=50, deadline=None)
    @given(ROWS)
    def test_sort_desc_reverses_non_null_order(self, rows):
        run = engine_for(rows)
        asc = [r[0] for r in run("SELECT k FROM t ORDER BY k") if r[0] is not None]
        desc = [
            r[0] for r in run("SELECT k FROM t ORDER BY k DESC") if r[0] is not None
        ]
        assert desc == list(reversed(asc))

    @settings(max_examples=50, deadline=None)
    @given(ROWS)
    def test_sort_preserves_multiset(self, rows):
        run = engine_for(rows)
        unsorted_rows = run("SELECT k, s, v FROM t")
        sorted_rows = run("SELECT k, s, v FROM t ORDER BY s, k DESC")
        assert sorted(approx_rows(unsorted_rows), key=repr) == sorted(
            approx_rows(sorted_rows), key=repr
        )

    @settings(max_examples=50, deadline=None)
    @given(ROWS)
    def test_distinct_removes_exactly_duplicates(self, rows):
        run = engine_for(rows)
        got = run("SELECT DISTINCT s FROM t")
        flattened = [row[0] for row in got]
        assert len(flattened) == len(set(flattened))
        assert set(flattened) == {s for _, s, _ in rows}

    @settings(max_examples=50, deadline=None)
    @given(ROWS, st.integers(0, 10), st.integers(0, 10))
    def test_limit_offset_slice_semantics(self, rows, limit, offset):
        run = engine_for(rows)
        everything = run("SELECT k FROM t ORDER BY k")
        window = run(f"SELECT k FROM t ORDER BY k LIMIT {limit} OFFSET {offset}")
        assert window == everything[offset : offset + limit]


class TestJoinProperties:
    @settings(max_examples=40, deadline=None)
    @given(ROWS, ROWS)
    def test_self_join_count_matches_reference(self, left_rows, right_rows):
        catalog = Catalog()
        catalog.create_schema("p")
        for name in ("l", "r"):
            catalog.create_table(
                "p", name,
                [
                    ColumnMeta("k", DataType.INT),
                    ColumnMeta("s", DataType.VARCHAR),
                    ColumnMeta("v", DataType.DOUBLE),
                ],
            )
        source = InMemorySource(
            {
                ("p", "l"): TableData.from_rows(SCHEMA, left_rows),
                ("p", "r"): TableData.from_rows(SCHEMA, right_rows),
            }
        )
        executor = QueryExecutor(source)
        planner = Planner(catalog, "p")
        plan = Optimizer().optimize(
            planner.plan_sql(
                "SELECT count(*) FROM l JOIN r ON l.k = r.k"
            )
        )
        got = executor.execute(plan).rows()[0][0]
        from collections import Counter

        left_counts = Counter(k for k, _, _ in left_rows if k is not None)
        right_counts = Counter(k for k, _, _ in right_rows if k is not None)
        expected = sum(
            count * right_counts[key] for key, count in left_counts.items()
        )
        assert got == expected
