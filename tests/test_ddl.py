"""Tests for DDL: CREATE TABLE / DROP TABLE through the Coordinator."""

import pytest

from repro.core import QueryStatus, ServiceLevel
from repro.errors import (
    DuplicateObjectError,
    NoSuchTableError,
    ParseError,
    PixelsError,
)
from repro.engine.sql import ast
from repro.engine.sql.parser import parse_sql


class TestDdlParsing:
    def test_create_table(self):
        statement = parse_sql(
            "CREATE TABLE metrics (id bigint, label varchar, v double)"
        )
        assert statement == ast.CreateTable(
            "metrics", (("id", "bigint"), ("label", "varchar"), ("v", "double"))
        )

    def test_drop_table(self):
        assert parse_sql("DROP TABLE metrics") == ast.DropTable("metrics")

    def test_create_requires_columns(self):
        with pytest.raises(ParseError):
            parse_sql("CREATE TABLE empty ()")

    def test_create_requires_table_keyword(self):
        with pytest.raises(ParseError, match="expected TABLE"):
            parse_sql("CREATE VIEW v")

    def test_to_sql_roundtrip(self):
        sql = "CREATE TABLE t (a int, b varchar)"
        assert parse_sql(parse_sql(sql).to_sql()).to_sql() == parse_sql(sql).to_sql()

    def test_date_type_allowed(self):
        statement = parse_sql("CREATE TABLE t (d date)")
        assert statement.columns == (("d", "date"),)


class TestDdlExecution:
    def test_create_then_query(self, turbo_env):
        sim, _, catalog, _, coordinator, server = turbo_env
        message = coordinator.execute_ddl(
            "CREATE TABLE metrics (id bigint, label varchar, v double)"
        )
        assert message == "created table metrics"
        assert catalog.table("tpch", "metrics").column_names == ["id", "label", "v"]
        record = server.submit("SELECT count(*) FROM metrics", ServiceLevel.IMMEDIATE)
        sim.run_until(60)
        assert record.status is QueryStatus.FINISHED
        assert record.result_rows() == [(0,)]

    def test_drop_removes_table_and_files(self, turbo_env):
        _, store, catalog, _, coordinator, _ = turbo_env
        coordinator.execute_ddl("CREATE TABLE gone (x int)")
        prefix = "tpch/gone"
        assert store.list_keys("warehouse", prefix + "/")
        coordinator.execute_ddl("DROP TABLE gone")
        with pytest.raises(NoSuchTableError):
            catalog.table("tpch", "gone")
        assert store.list_keys("warehouse", prefix + "/") == []

    def test_duplicate_create_rejected(self, turbo_env):
        _, _, _, _, coordinator, _ = turbo_env
        coordinator.execute_ddl("CREATE TABLE dup (x int)")
        with pytest.raises(DuplicateObjectError):
            coordinator.execute_ddl("CREATE TABLE dup (x int)")

    def test_drop_missing_rejected(self, turbo_env):
        _, _, _, _, coordinator, _ = turbo_env
        with pytest.raises(NoSuchTableError):
            coordinator.execute_ddl("DROP TABLE ghost")

    def test_unknown_type_rejected(self, turbo_env):
        _, _, _, _, coordinator, _ = turbo_env
        with pytest.raises(PixelsError, match="unknown data type"):
            coordinator.execute_ddl("CREATE TABLE bad (x blob)")

    def test_select_through_execute_ddl_rejected(self, turbo_env):
        _, _, _, _, coordinator, _ = turbo_env
        with pytest.raises(PixelsError, match="expects CREATE"):
            coordinator.execute_ddl("SELECT 1 FROM orders")

    def test_created_table_visible_to_nl2sql(self, turbo_env):
        _, _, catalog, _, coordinator, _ = turbo_env
        coordinator.execute_ddl(
            "CREATE TABLE sensors (sensor_id bigint, temperature double)"
        )
        from repro.nl2sql import RuleBasedTranslator

        translation = RuleBasedTranslator().translate(
            catalog.schema("tpch"), "what is the average temperature of sensors"
        )
        assert "avg(temperature)" in translation.sql
        assert "FROM sensors" in translation.sql
