"""Morsel-driven parallel execution and fused expression kernels.

The contract under test is *bit-identical determinism*: query results, row
ordering, billed dollars, storage accounting, and the rendered EXPLAIN
ANALYZE output must not depend on the worker count.  Expression fusion is
checked with a seeded randomized equivalence test against the interpreted
evaluator (including NULL propagation and Kleene three-valued logic).
"""

import random

import numpy as np
import pytest

from tests.conftest import (
    CUSTOMER_SCHEMA,
    CUSTOMER_ROWS,
    build_catalog,
)
from repro.engine.executor import QueryExecutor
from repro.engine.expr import (
    BoundArithmetic,
    BoundColumn,
    BoundComparison,
    BoundInList,
    BoundIsNull,
    BoundLiteral,
    BoundLogical,
    BoundNegate,
    BoundNot,
    BoundExpr,
    clear_broadcast_cache,
    compile_expr,
    fold_constants,
    _BROADCAST_CACHE,
)
from repro.engine.optimizer import Optimizer
from repro.engine.planner import Planner
from repro.engine.source import ObjectStoreSource
from repro.obs.explain import render_analyzed_plan
from repro.storage.catalog import ColumnMeta
from repro.storage.object_store import ObjectStore
from repro.storage.table import TableData, TableWriter
from repro.storage.types import ColumnVector, DataType

# ---------------------------------------------------------------------------
# A store-backed dataset with enough row groups to exercise real morsels.
# ---------------------------------------------------------------------------

NUM_ORDERS = 311  # prime-ish; last row group is ragged on purpose
ROWS_PER_GROUP = 16


def _orders_rows():
    rng = random.Random(1234)
    statuses = ["O", "F", "P"]
    rows = []
    for key in range(1, NUM_ORDERS + 1):
        price = None if key % 13 == 0 else round(rng.uniform(10.0, 900.0), 2)
        rows.append(
            (
                key,
                rng.randrange(1, 4),
                price,
                statuses[key % 3],
                9131 + (key % 40),
            )
        )
    return rows


ORDERS_SCHEMA = [
    ("o_orderkey", DataType.BIGINT),
    ("o_custkey", DataType.BIGINT),
    ("o_totalprice", DataType.DOUBLE),
    ("o_orderstatus", DataType.VARCHAR),
    ("o_orderdate", DataType.DATE),
]


def _setup():
    store = ObjectStore()
    store.create_bucket("warehouse")
    writer = TableWriter(
        store, "warehouse", "mini/orders", rows_per_group=ROWS_PER_GROUP
    )
    writer.write(TableData.from_rows(ORDERS_SCHEMA, _orders_rows()))
    writer = TableWriter(
        store, "warehouse", "mini/customer", rows_per_group=ROWS_PER_GROUP
    )
    writer.write(TableData.from_rows(CUSTOMER_SCHEMA, CUSTOMER_ROWS))
    catalog = build_catalog("warehouse", "mini/orders", "mini/customer")
    return store, catalog


def _run(sql, workers, analyze=True):
    store, catalog = _setup()
    planner, optimizer = Planner(catalog, "mini"), Optimizer()
    executor = QueryExecutor(ObjectStoreSource(store), workers=workers)
    plan = optimizer.optimize(planner.plan_sql(sql))
    result = executor.execute(plan, analyze=analyze)
    return store, plan, result


INVARIANCE_QUERIES = [
    # partial->final aggregate (int SUM / COUNT / MIN / MAX are exact)
    "SELECT o_orderstatus, COUNT(*) AS n, SUM(o_orderkey) AS s, "
    "MIN(o_orderdate) AS lo, MAX(o_orderdate) AS hi "
    "FROM orders GROUP BY o_orderstatus",
    # global aggregate, empty-group edge included via selective filter
    "SELECT COUNT(*) AS n, AVG(o_orderkey) AS a FROM orders "
    "WHERE o_totalprice > 880",
    # DOUBLE SUM falls back to gather mode (order-sensitive float adds)
    "SELECT SUM(o_totalprice) AS s, AVG(o_totalprice) AS a FROM orders",
    # partial->final distinct
    "SELECT DISTINCT o_orderstatus FROM orders",
    # partial->final top-N, including boundary ties on o_orderdate
    "SELECT o_orderkey, o_orderdate FROM orders "
    "ORDER BY o_orderdate, o_orderkey LIMIT 7",
    # gather-mode full sort
    "SELECT o_orderkey FROM orders WHERE o_custkey = 2 ORDER BY o_orderkey",
    # parallel segments feeding both sides of a hash join
    "SELECT c_name, COUNT(*) AS n FROM orders "
    "JOIN customer ON o_custkey = c_custkey "
    "WHERE o_totalprice IS NOT NULL GROUP BY c_name",
    # fused filter + projection arithmetic over the scan segment
    "SELECT o_orderkey * 2 + 1 AS k FROM orders "
    "WHERE o_totalprice > 100 AND o_orderstatus <> 'P'",
    # LIMIT chain stays sequential (early exit must keep billing lazy)
    "SELECT o_orderkey FROM orders LIMIT 5",
]


class TestWorkerInvariance:
    @pytest.mark.parametrize("sql", INVARIANCE_QUERIES)
    def test_results_billing_and_explain_identical(self, sql):
        from repro.core.service_levels import ServiceLevel
        from repro.turbo.config import TurboConfig
        from repro.turbo.cost import CostModel

        cost_model = CostModel(TurboConfig.fast())
        baseline = None
        for workers in (1, 2, 8):
            store, plan, result = _run(sql, workers)
            rendered = render_analyzed_plan(plan, result.profile, result.stats)
            snapshot = (
                result.column_names,
                result.rows(),
                rendered,
                cost_model.user_price(result.stats, ServiceLevel.IMMEDIATE),
                store.metrics.logical_bytes_scanned,
                store.metrics.get_requests,
                store.metrics.bytes_read,
                store.metrics.footer_cache_misses,
                store.metrics.chunk_cache_misses,
            )
            if baseline is None:
                baseline = snapshot
            else:
                assert snapshot == baseline, f"workers={workers}: {sql}"

    def test_morsel_count_matches_row_groups(self):
        expected_groups = -(-NUM_ORDERS // ROWS_PER_GROUP)
        for workers in (1, 4):
            _, _, result = _run(
                "SELECT COUNT(*) AS n FROM orders", workers
            )
            assert result.profile.morsels == expected_groups

    def test_limit_early_exit_survives_worker_config(self):
        """A LIMIT chain has no pipeline breaker, so it must stay
        sequential — billed bytes reflect early exit, not a full scan."""
        _, _, full = _run("SELECT COUNT(*) AS n FROM orders", 4)
        _, _, limited = _run("SELECT o_orderkey FROM orders LIMIT 3", 4)
        assert limited.stats.bytes_scanned < full.stats.bytes_scanned

    def test_workers_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        store, _ = _setup()
        executor = QueryExecutor(ObjectStoreSource(store))
        assert executor.workers == 3
        monkeypatch.delenv("REPRO_WORKERS")
        executor = QueryExecutor(ObjectStoreSource(store))
        assert executor.workers == 1


class TestExplainSurfaces:
    def test_morsels_annotated_on_scan_lines(self):
        _, plan, result = _run("SELECT COUNT(*) AS n FROM orders", 4)
        rendered = render_analyzed_plan(plan, result.profile, result.stats)
        assert "morsels=" in rendered

    def test_context_header_is_opt_in(self):
        _, plan, result = _run("SELECT COUNT(*) AS n FROM orders", 2)
        bare = render_analyzed_plan(plan, result.profile, result.stats)
        assert not bare.startswith("execution:")
        headed = render_analyzed_plan(
            plan,
            result.profile,
            result.stats,
            context={"workers": 2, "batch_size": 4096},
        )
        first, rest = headed.split("\n", 1)
        assert first == "execution: workers=2 batch_size=4096"
        assert rest == bare

    def test_coordinator_explain_reports_workers(self, turbo_env):
        sim, store, catalog, config, coordinator, server = turbo_env
        text = coordinator.explain_analyze("SELECT COUNT(*) FROM region")
        assert text.startswith("execution: workers=")
        assert "batch_size=" in text.splitlines()[0]


# ---------------------------------------------------------------------------
# Fused expression kernels: randomized equivalence with the interpreter.
# ---------------------------------------------------------------------------


def _expr_table(rng, num_rows=97):
    def nullable(data, fraction):
        nulls = np.array([rng.random() < fraction for _ in range(num_rows)])
        return nulls if nulls.any() else None

    a = np.array([rng.randrange(-50, 50) for _ in range(num_rows)], dtype=np.int64)
    b = np.array([rng.uniform(-10.0, 10.0) for _ in range(num_rows)])
    c = np.array([rng.randrange(0, 5) for _ in range(num_rows)], dtype=np.int64)
    s = np.array([rng.choice(["red", "green", "blue", ""]) for _ in range(num_rows)], dtype=object)
    return TableData(
        {
            "t.a": ColumnVector(DataType.BIGINT, a, nullable(a, 0.2)),
            "t.b": ColumnVector(DataType.DOUBLE, b, nullable(b, 0.2)),
            "t.c": ColumnVector(DataType.BIGINT, c),
            "t.s": ColumnVector(DataType.VARCHAR, s, nullable(s, 0.15)),
        }
    )


def _gen_numeric(rng, depth) -> BoundExpr:
    if depth <= 0 or rng.random() < 0.3:
        choice = rng.randrange(5)
        if choice == 0:
            return BoundColumn("t.a", DataType.BIGINT)
        if choice == 1:
            return BoundColumn("t.b", DataType.DOUBLE)
        if choice == 2:
            return BoundColumn("t.c", DataType.BIGINT)
        if choice == 3:
            return BoundLiteral(rng.randrange(-20, 20), DataType.BIGINT)
        return BoundLiteral(round(rng.uniform(-5.0, 5.0), 3), DataType.DOUBLE)
    op = rng.choice(["+", "-", "*", "/", "%"])
    left = _gen_numeric(rng, depth - 1)
    right = _gen_numeric(rng, depth - 1)
    if rng.random() < 0.15:
        return BoundNegate.bind(BoundArithmetic.bind(op, left, right))
    return BoundArithmetic.bind(op, left, right)


def _gen_bool(rng, depth) -> BoundExpr:
    if depth <= 0 or rng.random() < 0.25:
        kind = rng.randrange(4)
        if kind == 0:
            return BoundComparison.bind(
                rng.choice(["=", "<>", "<", "<=", ">", ">="]),
                _gen_numeric(rng, 1),
                _gen_numeric(rng, 1),
            )
        if kind == 1:
            return BoundComparison.bind(
                rng.choice(["=", "<>"]),
                BoundColumn("t.s", DataType.VARCHAR),
                BoundLiteral(rng.choice(["red", "blue", "nope"]), DataType.VARCHAR),
            )
        if kind == 2:
            return BoundIsNull(
                _gen_numeric(rng, 1), negated=rng.random() < 0.5
            )
        return BoundInList(
            BoundColumn("t.a", DataType.BIGINT),
            tuple(rng.randrange(-50, 50) for _ in range(3)),
            negated=rng.random() < 0.5,
        )
    roll = rng.random()
    if roll < 0.15:
        return BoundNot.bind(_gen_bool(rng, depth - 1))
    return BoundLogical.bind(
        rng.choice(["AND", "OR"]),
        _gen_bool(rng, depth - 1),
        _gen_bool(rng, depth - 1),
    )


def _assert_vectors_equal(expected: ColumnVector, actual: ColumnVector, context):
    assert actual.dtype is expected.dtype, context
    expected_nulls = (
        expected.nulls
        if expected.nulls is not None
        else np.zeros(len(expected), dtype=bool)
    )
    actual_nulls = (
        actual.nulls if actual.nulls is not None else np.zeros(len(actual), dtype=bool)
    )
    assert np.array_equal(expected_nulls, actual_nulls), context
    valid = ~expected_nulls
    if expected.dtype is DataType.VARCHAR:
        expected_valid = [str(v) for v in expected.data[valid]]
        actual_valid = [str(v) for v in actual.data[valid]]
        assert expected_valid == actual_valid, context
    else:
        assert np.array_equal(
            np.asarray(expected.data)[valid], np.asarray(actual.data)[valid]
        ), context


class TestCompiledExpressions:
    def test_randomized_equivalence_with_interpreter(self):
        rng = random.Random(20260808)
        table = _expr_table(rng)
        for round_index in range(250):
            expr = (
                _gen_bool(rng, 3) if round_index % 2 else _gen_numeric(rng, 3)
            )
            context = f"round {round_index}: {expr.to_sql()}"
            interpreted = expr.evaluate(table)
            compiled = compile_expr(expr)
            _assert_vectors_equal(interpreted, compiled(table), context)

    def test_kleene_logic_with_nulls(self):
        # NULL AND FALSE = FALSE, NULL AND TRUE = NULL, NULL OR TRUE = TRUE.
        nulls = np.array([True, True, False, False])
        left = ColumnVector(
            DataType.BOOLEAN, np.array([True, False, True, False]), nulls
        )
        table = TableData(
            {
                "t.l": left,
                "t.t": ColumnVector(DataType.BOOLEAN, np.array([True] * 4)),
                "t.f": ColumnVector(DataType.BOOLEAN, np.array([False] * 4)),
            }
        )
        l = BoundColumn("t.l", DataType.BOOLEAN)
        for expr in (
            BoundLogical.bind("AND", l, BoundColumn("t.f", DataType.BOOLEAN)),
            BoundLogical.bind("AND", l, BoundColumn("t.t", DataType.BOOLEAN)),
            BoundLogical.bind("OR", l, BoundColumn("t.t", DataType.BOOLEAN)),
            BoundLogical.bind("OR", l, BoundColumn("t.f", DataType.BOOLEAN)),
        ):
            _assert_vectors_equal(
                expr.evaluate(table), compile_expr(expr)(table), expr.to_sql()
            )

    def test_constant_folding(self):
        expr = BoundArithmetic.bind(
            "*",
            BoundLiteral(3, DataType.BIGINT),
            BoundArithmetic.bind(
                "+", BoundLiteral(4, DataType.BIGINT), BoundLiteral(1, DataType.BIGINT)
            ),
        )
        folded = fold_constants(expr)
        assert isinstance(folded, BoundLiteral)
        assert folded.value == 15
        # Column references block folding but constant subtrees still fold.
        mixed = BoundArithmetic.bind(
            "+", BoundColumn("t.a", DataType.BIGINT), expr
        )
        folded_mixed = fold_constants(mixed)
        assert isinstance(folded_mixed, BoundArithmetic)
        assert isinstance(folded_mixed.right, BoundLiteral)
        assert folded_mixed.right.value == 15

    def test_planner_folds_constants_in_predicates(self):
        store, catalog = _setup()
        planner = Planner(catalog, "mini")
        plan = planner.plan_sql(
            "SELECT o_orderkey FROM orders WHERE o_orderkey > 2 + 3"
        )
        sql = repr(plan.explain()) if hasattr(plan, "explain") else ""
        # Walk to the Filter and check the bound predicate's right side.
        node = plan
        from repro.engine.plan import Filter

        while node is not None and not isinstance(node, Filter):
            children = node.children()
            node = children[0] if children else None
        assert node is not None, sql
        assert isinstance(node.predicate.right, BoundLiteral)
        assert node.predicate.right.value == 5

    def test_common_subexpressions_evaluate_once(self):
        calls = 0

        class CountingColumn(BoundColumn):
            def evaluate(self, table):
                nonlocal calls
                calls += 1
                return super().evaluate(table)

        rng = random.Random(7)
        table = _expr_table(rng)
        shared = BoundArithmetic.bind(
            "*",
            CountingColumn("t.a", DataType.BIGINT),
            BoundColumn("t.c", DataType.BIGINT),
        )
        expr = BoundComparison.bind(">", shared, BoundLiteral(0, DataType.BIGINT))
        expr = BoundLogical.bind(
            "OR",
            expr,
            BoundComparison.bind("<", shared, BoundLiteral(-10, DataType.BIGINT)),
        )
        interpreted = expr.evaluate(table)
        compiled = compile_expr(expr)
        _assert_vectors_equal(interpreted, compiled(table), expr.to_sql())


class TestBroadcastCache:
    def test_repeated_literals_share_vectors(self):
        clear_broadcast_cache()
        table = TableData(
            {"t.x": ColumnVector(DataType.BIGINT, np.arange(64, dtype=np.int64))}
        )
        literal = BoundLiteral(42, DataType.BIGINT)
        first = literal.evaluate(table)
        second = literal.evaluate(table)
        assert first.data is second.data
        assert len(_BROADCAST_CACHE) >= 1
        clear_broadcast_cache()
        assert len(_BROADCAST_CACHE) == 0

    def test_distinct_lengths_get_distinct_vectors(self):
        clear_broadcast_cache()
        small = TableData(
            {"t.x": ColumnVector(DataType.BIGINT, np.arange(8, dtype=np.int64))}
        )
        large = TableData(
            {"t.x": ColumnVector(DataType.BIGINT, np.arange(16, dtype=np.int64))}
        )
        literal = BoundLiteral("x", DataType.VARCHAR)
        assert len(literal.evaluate(small)) == 8
        assert len(literal.evaluate(large)) == 16
