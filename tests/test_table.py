"""Unit tests for TableData and table-level read/write."""

import numpy as np
import pytest

from repro.errors import NoSuchColumnError
from repro.storage.object_store import ObjectStore
from repro.storage.table import TableData, TableReader, TableWriter
from repro.storage.types import ColumnVector, DataType

SCHEMA = [("k", DataType.BIGINT), ("v", DataType.VARCHAR)]


def make_table(n):
    return TableData.from_rows(SCHEMA, [(i, f"v{i}") for i in range(n)])


@pytest.fixture
def store():
    s = ObjectStore()
    s.create_bucket("b")
    return s


class TestTableData:
    def test_from_rows_roundtrip(self):
        table = make_table(3)
        assert table.num_rows == 3
        assert table.to_rows() == [(0, "v0"), (1, "v1"), (2, "v2")]

    def test_ragged_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            TableData(
                {
                    "a": ColumnVector.from_values(DataType.INT, [1]),
                    "b": ColumnVector.from_values(DataType.INT, [1, 2]),
                }
            )

    def test_select_projects_and_orders(self):
        table = make_table(2)
        projected = table.select(["v", "k"])
        assert projected.column_names == ["v", "k"]

    def test_select_missing_column(self):
        with pytest.raises(NoSuchColumnError):
            make_table(1).select(["ghost"])

    def test_filter_take_slice(self):
        table = make_table(5)
        assert table.filter(np.array([True, False, True, False, False])).num_rows == 2
        assert table.take(np.array([4, 0])).to_rows() == [(4, "v4"), (0, "v0")]
        assert table.slice(1, 3).to_rows() == [(1, "v1"), (2, "v2")]

    def test_concat(self):
        merged = make_table(2).concat(make_table(1))
        assert merged.num_rows == 3

    def test_concat_schema_mismatch(self):
        other = TableData({"x": ColumnVector.from_values(DataType.INT, [1])})
        with pytest.raises(ValueError):
            make_table(1).concat(other)

    def test_concat_all_many_pieces(self):
        pieces = [make_table(3) for _ in range(5)]
        merged = TableData.concat_all(pieces)
        assert merged.num_rows == 15
        assert merged.to_rows() == make_table(3).to_rows() * 5

    def test_concat_all_empty_and_single(self):
        assert TableData.concat_all([]).num_rows == 0
        single = make_table(2)
        assert TableData.concat_all([single]) is single

    def test_concat_all_schema_mismatch(self):
        other = TableData({"x": ColumnVector.from_values(DataType.INT, [1])})
        with pytest.raises(ValueError):
            TableData.concat_all([make_table(1), other])

    def test_concat_all_preserves_nulls(self):
        a = TableData.from_rows(SCHEMA, [(1, None)])
        b = TableData.from_rows(SCHEMA, [(None, "x")])
        c = TableData.from_rows(SCHEMA, [(3, "y")])
        assert TableData.concat_all([a, b, c]).to_rows() == [
            (1, None),
            (None, "x"),
            (3, "y"),
        ]

    def test_rename(self):
        renamed = make_table(1).rename({"k": "key"})
        assert renamed.column_names == ["key", "v"]

    def test_empty_table(self):
        table = TableData.empty(SCHEMA)
        assert table.num_rows == 0
        assert table.to_rows() == []

    def test_no_columns(self):
        assert TableData({}).num_rows == 0

    def test_schema(self):
        assert make_table(1).schema() == SCHEMA

    def test_nulls_survive_from_rows(self):
        table = TableData.from_rows(SCHEMA, [(1, None), (None, "x")])
        assert table.to_rows() == [(1, None), (None, "x")]


class TestTableWriterReader:
    def test_roundtrip_single_file(self, store):
        table = make_table(100)
        keys = TableWriter(store, "b", "t").write(table)
        assert keys == ["t/part-0.pxl"]
        result = TableReader(store, "b", "t").scan()
        assert result.data.to_rows() == table.to_rows()

    def test_multiple_files(self, store):
        table = make_table(250)
        keys = TableWriter(store, "b", "t", rows_per_file=100).write(table)
        assert len(keys) == 3
        result = TableReader(store, "b", "t").scan()
        assert result.data.num_rows == 250
        assert result.data.to_rows() == table.to_rows()

    def test_row_group_size_respected(self, store):
        TableWriter(store, "b", "t", rows_per_file=100, rows_per_group=10).write(
            make_table(100)
        )
        from repro.storage.file_format import PixelsReader

        reader = PixelsReader(store, "b", "t/part-0.pxl")
        assert len(reader.footer.row_groups) == 10

    def test_projection(self, store):
        TableWriter(store, "b", "t").write(make_table(10))
        result = TableReader(store, "b", "t").scan(columns=["v"])
        assert result.data.column_names == ["v"]

    def test_predicate_pushdown_skips_groups(self, store):
        TableWriter(store, "b", "t", rows_per_file=1000, rows_per_group=100).write(
            make_table(1000)
        )
        result = TableReader(store, "b", "t").scan(
            columns=["k"], ranges={"k": (950, None)}
        )
        assert result.row_groups_skipped == 9
        assert result.data.column("k").to_values() == list(range(900, 1000))

    def test_bytes_scanned_accounted(self, store):
        TableWriter(store, "b", "t").write(make_table(100))
        result = TableReader(store, "b", "t").scan()
        assert result.bytes_scanned > 0
        assert result.latency_s > 0

    def test_scan_specific_keys(self, store):
        TableWriter(store, "b", "t", rows_per_file=50).write(make_table(100))
        reader = TableReader(store, "b", "t")
        result = reader.scan(keys=["t/part-1.pxl"])
        assert result.data.column("k").to_values() == list(range(50, 100))

    def test_empty_table_roundtrip(self, store):
        TableWriter(store, "b", "t").write(TableData.empty(SCHEMA))
        result = TableReader(store, "b", "t").scan()
        assert result.data.num_rows == 0

    def test_file_keys(self, store):
        TableWriter(store, "b", "t", rows_per_file=30).write(make_table(90))
        assert len(TableReader(store, "b", "t").file_keys()) == 3

    def test_writer_rejects_bad_params(self, store):
        with pytest.raises(ValueError):
            TableWriter(store, "b", "t", rows_per_file=0)

    def test_writer_rejects_empty_schema(self, store):
        with pytest.raises(ValueError):
            TableWriter(store, "b", "t").write(TableData({}))
