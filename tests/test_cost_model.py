"""Unit tests for the cost model: durations, provider cost, user prices."""

import pytest

from repro.core.service_levels import ServiceLevel
from repro.engine.executor import QueryStats
from repro.turbo.config import CfConfig, TurboConfig, VmConfig
from repro.turbo.cost import TB, CostModel


@pytest.fixture
def model():
    return CostModel(TurboConfig())


def stats(bytes_scanned=0, rows=0):
    return QueryStats(bytes_scanned=bytes_scanned, rows_scanned=rows)


class TestVmExecution:
    def test_duration_scales_with_bytes(self, model):
        small = model.vm_execution(stats(bytes_scanned=10**6))
        large = model.vm_execution(stats(bytes_scanned=10**9))
        assert large.duration_s > small.duration_s

    def test_minimum_is_startup_overhead(self, model):
        estimate = model.vm_execution(stats())
        assert estimate.duration_s == pytest.approx(
            TurboConfig().vm.startup_overhead_s
        )

    def test_provider_cost_positive(self, model):
        estimate = model.vm_execution(stats(bytes_scanned=10**9))
        assert estimate.provider_cost > 0
        assert estimate.provider_cost == pytest.approx(
            estimate.worker_seconds * TurboConfig().vm.price_per_worker_s
        )


class TestCfExecution:
    def test_fan_out_grows_with_bytes(self, model):
        cf = TurboConfig().cf
        one = model.cf_execution(stats(bytes_scanned=cf.bytes_per_worker // 2))
        many = model.cf_execution(stats(bytes_scanned=cf.bytes_per_worker * 10))
        assert one.num_workers == 1
        assert many.num_workers == 10

    def test_fan_out_capped(self, model):
        cf = TurboConfig().cf
        estimate = model.cf_execution(
            stats(bytes_scanned=cf.bytes_per_worker * cf.max_workers_per_query * 5)
        )
        assert estimate.num_workers == cf.max_workers_per_query

    def test_parallelism_shortens_duration(self, model):
        cf = TurboConfig().cf
        serial_bytes = cf.bytes_per_worker
        parallel_bytes = cf.bytes_per_worker * 16
        serial = model.cf_execution(stats(bytes_scanned=serial_bytes))
        parallel = model.cf_execution(stats(bytes_scanned=parallel_bytes))
        # 16x data with 16 workers: duration grows far less than 16x.
        assert parallel.duration_s < serial.duration_s * 3

    def test_unit_price_ratio_matches_config(self):
        """The CF/VM unit-price ratio is the paper's 9-24x (default 12x)."""
        config = TurboConfig()
        ratio = config.cf.price_per_worker_s(config.vm) / config.vm.price_per_worker_s
        assert ratio == pytest.approx(config.cf.price_multiplier)
        assert 9 <= ratio <= 24

    def test_cf_more_expensive_than_vm_for_same_work(self, model):
        """Even per-query, CF execution costs more than VM execution — the
        cost asymmetry the service levels monetize."""
        work = stats(bytes_scanned=10**9, rows=10**6)
        vm = model.vm_execution(work)
        cf = model.cf_execution(work)
        assert cf.provider_cost > vm.provider_cost


class TestUserPrices:
    def test_paper_prices(self, model):
        assert model.price_per_tb(ServiceLevel.IMMEDIATE) == 5.0
        assert model.price_per_tb(ServiceLevel.RELAXED) == 1.0
        assert model.price_per_tb(ServiceLevel.BEST_EFFORT) == 0.5

    def test_price_proportional_to_bytes(self, model):
        one_tb = model.user_price(stats(bytes_scanned=TB), ServiceLevel.IMMEDIATE)
        assert one_tb == pytest.approx(5.0)
        half = model.user_price(stats(bytes_scanned=TB // 2), ServiceLevel.IMMEDIATE)
        assert half == pytest.approx(2.5)

    def test_level_fractions(self, model):
        base = model.user_price(stats(bytes_scanned=TB), ServiceLevel.IMMEDIATE)
        relaxed = model.user_price(stats(bytes_scanned=TB), ServiceLevel.RELAXED)
        best = model.user_price(stats(bytes_scanned=TB), ServiceLevel.BEST_EFFORT)
        assert relaxed == pytest.approx(base * 0.2)
        assert best == pytest.approx(base * 0.1)

    def test_zero_scan_is_free(self, model):
        assert model.user_price(stats(), ServiceLevel.IMMEDIATE) == 0.0


class TestConfig:
    def test_defaults_match_paper(self):
        vm = VmConfig()
        assert vm.high_watermark == 5.0
        assert vm.low_watermark == 0.75
        assert 60 <= vm.scale_out_lag_s <= 120
        cf = CfConfig()
        assert cf.startup_s <= 1.0
        assert TurboConfig().grace_period_s == 300.0

    def test_fast_config_keeps_ratios(self):
        fast = TurboConfig.fast()
        assert fast.cf.price_multiplier == TurboConfig().cf.price_multiplier
        assert fast.vm.high_watermark == 5.0
        assert fast.vm.low_watermark == 0.75
