"""Tests for the buffer pool (repro.storage.cache) and read coalescing.

The load-bearing property is the **billing invariant**: query results and
billed bytes-scanned are identical with the pool on or off — caching only
reduces GET requests and modelled latency.  Also covered: LRU eviction
under a tiny byte budget, etag invalidation after put/delete, and the
range-GET coalescing that collapses a cold row-group read to ~1 GET.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.executor import QueryExecutor
from repro.engine.optimizer import Optimizer
from repro.engine.planner import Planner
from repro.engine.source import ObjectStoreSource
from repro.storage import (
    BufferPool,
    CacheConfig,
    DataType,
    ObjectStore,
    TableData,
    TableReader,
    TableWriter,
)
from repro.storage.catalog import Catalog
from repro.workloads import TPCH_QUERIES, TpchGenerator, load_dataset

QUERY_NAMES = sorted(TPCH_QUERIES)


@pytest.fixture(scope="module")
def tpch_env():
    """A small TPC-H dataset with multiple files and row groups per table."""
    store = ObjectStore()
    catalog = Catalog()
    load_dataset(
        store,
        catalog,
        "tpch",
        TpchGenerator(scale=0.02).tables(),
        rows_per_file=4096,
        rows_per_group=1024,
    )
    return store, catalog


def run_query(store, catalog, sql, cache=None):
    plan = Optimizer().optimize(Planner(catalog, "tpch").plan_sql(sql))
    source = ObjectStoreSource(store, cache=cache)
    return QueryExecutor(source).execute(plan)


@pytest.fixture
def chunked_table():
    """A 3-column table with a known layout: 4 files x 10 row groups."""
    store = ObjectStore()
    store.create_bucket("b")
    schema = [
        ("k", DataType.BIGINT),
        ("v", DataType.VARCHAR),
        ("x", DataType.DOUBLE),
    ]
    rows = [(i, f"v{i}", float(i)) for i in range(20000)]
    table = TableData.from_rows(schema, rows)
    TableWriter(store, "b", "t", rows_per_file=5000, rows_per_group=500).write(
        table
    )
    return store, schema, table


class TestBillingInvariant:
    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_results_and_billed_bytes_identical_cache_on_off(
        self, tpch_env, name
    ):
        store, catalog = tpch_env
        sql = TPCH_QUERIES[name]
        baseline = run_query(store, catalog, sql)
        pool = BufferPool(store)
        cold = run_query(store, catalog, sql, cache=pool)
        warm = run_query(store, catalog, sql, cache=pool)
        assert cold.rows() == baseline.rows()
        assert warm.rows() == baseline.rows()
        # Billed bytes are logical: the pool never changes them.
        assert cold.stats.bytes_scanned == baseline.stats.bytes_scanned
        assert warm.stats.bytes_scanned == baseline.stats.bytes_scanned

    @given(
        name=st.sampled_from(QUERY_NAMES),
        budget=st.integers(min_value=0, max_value=256 * 1024),
    )
    @settings(max_examples=10, deadline=None)
    def test_any_chunk_budget_preserves_results_and_billing(
        self, tpch_env, name, budget
    ):
        """Property: whatever the pool budget (including 0), results and
        billed bytes match the uncached run."""
        store, catalog = tpch_env
        sql = TPCH_QUERIES[name]
        baseline = run_query(store, catalog, sql)
        pool = BufferPool(store, CacheConfig(chunk_budget_bytes=budget))
        cached = run_query(store, catalog, sql, cache=pool)
        rerun = run_query(store, catalog, sql, cache=pool)
        assert cached.rows() == baseline.rows()
        assert rerun.rows() == baseline.rows()
        assert cached.stats.bytes_scanned == baseline.stats.bytes_scanned
        assert rerun.stats.bytes_scanned == baseline.stats.bytes_scanned

    def test_scan_billed_bytes_exclude_coalescing_gap_bytes(
        self, chunked_table
    ):
        """Projecting 2 of 3 columns coalesces across the gap left by the
        middle column; the gap bytes travel but are never billed."""
        store, _, _ = chunked_table
        wide_gap = TableReader(
            store, "b", "t", cache=BufferPool(store)
        )
        narrow = TableReader(
            store,
            "b",
            "t",
            cache=BufferPool(store, CacheConfig(max_coalesce_gap_bytes=0)),
        )
        before = store.metrics.snapshot()
        r_gap = wide_gap.scan(columns=["k", "x"])
        mid = store.metrics.snapshot()
        r_exact = narrow.scan(columns=["k", "x"])
        after = store.metrics.snapshot()
        assert r_gap.data.to_rows() == r_exact.data.to_rows()
        # Billing identical; physical transfer strictly larger when gaps
        # are bridged (the "v" column chunks sit between "k" and "x").
        assert r_gap.bytes_scanned == r_exact.bytes_scanned
        gap_read = mid.delta(before).bytes_read
        exact_read = after.delta(mid).bytes_read
        assert gap_read > exact_read
        assert r_gap.get_requests < r_exact.get_requests


class TestCoalescing:
    def test_cold_scan_is_one_get_per_row_group(self, chunked_table):
        store, _, _ = chunked_table
        # 4 files x 10 groups; chunks within a group are contiguous, so
        # coalescing folds each group's 3 chunks into one ranged GET.
        # Plus 2 footer GETs per file (tail + footer blob).
        result = TableReader(store, "b", "t").scan()
        assert result.get_requests == 40 + 2 * 4

    def test_disabling_coalescing_pays_one_get_per_chunk(self, chunked_table):
        store, _, _ = chunked_table
        pool = BufferPool(store, CacheConfig(max_coalesce_gap_bytes=0))
        result = TableReader(store, "b", "t", cache=pool).scan()
        # 3 column chunks per group are contiguous (gap 0), so they still
        # merge at gap<=0; projecting disjoint columns must not.
        assert result.get_requests == 40 + 2 * 4
        pool.clear()
        split = TableReader(store, "b", "t", cache=pool).scan(
            columns=["k", "x"]
        )
        assert split.get_requests == 2 * 40 + 2 * 4

    def test_warm_scan_issues_5x_fewer_gets(self, chunked_table):
        store, _, table = chunked_table
        pool = BufferPool(store)
        reader = TableReader(store, "b", "t", cache=pool)
        cold = reader.scan()
        warm = reader.scan()
        assert warm.data.to_rows() == cold.data.to_rows() == table.to_rows()
        assert cold.get_requests >= 5 * max(warm.get_requests, 1)
        assert warm.get_requests == 0  # fully served from the pool
        assert warm.cache_hits > 0 and warm.cache_misses == 0
        assert warm.latency_s < cold.latency_s

    def test_footer_cache_skips_reopen_gets(self, chunked_table):
        store, _, _ = chunked_table
        pool = BufferPool(store, CacheConfig(chunk_budget_bytes=0))
        reader = TableReader(store, "b", "t", cache=pool)
        cold = reader.scan()
        warm = reader.scan()
        # Chunk pool disabled: only the 2-per-file footer GETs disappear.
        assert cold.get_requests - warm.get_requests == 2 * 4
        assert warm.bytes_scanned == cold.bytes_scanned


class TestLruEviction:
    def test_budget_is_enforced_with_lru_eviction(self):
        store = ObjectStore()
        store.create_bucket("b")
        for i in range(8):
            store.put("b", f"o{i}", b"x" * 100)
        pool = BufferPool(store, CacheConfig(chunk_budget_bytes=250))
        for i in range(8):
            pool.put_chunk("b", f"o{i}", 0, b"x" * 100)
        assert pool.cached_chunk_bytes <= 250
        assert pool.cached_chunks == 2
        assert pool.stats.chunk_evictions == 6
        # LRU: the two most recently inserted survive.
        assert pool.chunk("b", "o7", 0, 100) is not None
        assert pool.chunk("b", "o6", 0, 100) is not None
        assert pool.chunk("b", "o0", 0, 100) is None

    def test_lookup_refreshes_recency(self):
        store = ObjectStore()
        store.create_bucket("b")
        for name in ("a", "b", "c"):
            store.put("b", name, b"x" * 100)
        pool = BufferPool(store, CacheConfig(chunk_budget_bytes=200))
        pool.put_chunk("b", "a", 0, b"x" * 100)
        pool.put_chunk("b", "b", 0, b"x" * 100)
        assert pool.chunk("b", "a", 0, 100) is not None  # touch "a"
        pool.put_chunk("b", "c", 0, b"x" * 100)  # evicts LRU = "b"
        assert pool.chunk("b", "a", 0, 100) is not None
        assert pool.chunk("b", "b", 0, 100) is None

    def test_oversized_payload_is_not_admitted(self):
        store = ObjectStore()
        store.create_bucket("b")
        store.put("b", "big", b"x" * 1000)
        pool = BufferPool(store, CacheConfig(chunk_budget_bytes=500))
        pool.put_chunk("b", "big", 0, b"x" * 1000)
        assert pool.cached_chunks == 0
        assert pool.stats.chunk_evictions == 0

    def test_tiny_budget_scan_stays_correct(self, chunked_table):
        store, _, table = chunked_table
        pool = BufferPool(store, CacheConfig(chunk_budget_bytes=4096))
        reader = TableReader(store, "b", "t", cache=pool)
        first = reader.scan()
        second = reader.scan()
        assert first.data.to_rows() == table.to_rows()
        assert second.data.to_rows() == table.to_rows()
        assert pool.cached_chunk_bytes <= 4096
        assert second.cache_evictions > 0  # churned under pressure


class TestEtagInvalidation:
    def test_overwrite_invalidates_cached_chunk(self):
        store = ObjectStore()
        store.create_bucket("b")
        store.put("b", "k", b"old-bytes")
        pool = BufferPool(store)
        pool.put_chunk("b", "k", 0, b"old-bytes")
        assert pool.chunk("b", "k", 0, 9) == b"old-bytes"
        store.put("b", "k", b"new-bytes")
        assert pool.chunk("b", "k", 0, 9) is None
        # Invalidation counts as a miss, not a budget eviction.
        assert pool.stats.chunk_evictions == 0
        assert pool.stats.chunk_misses == 1

    def test_delete_invalidates_cached_chunk(self):
        store = ObjectStore()
        store.create_bucket("b")
        store.put("b", "k", b"payload")
        pool = BufferPool(store)
        pool.put_chunk("b", "k", 0, b"payload")
        store.delete("b", "k")
        assert pool.chunk("b", "k", 0, 7) is None
        assert pool.cached_chunks == 0

    def test_warm_pool_never_serves_stale_table(self, chunked_table):
        store, schema, _ = chunked_table
        pool = BufferPool(store)
        reader = TableReader(store, "b", "t", cache=pool)
        reader.scan()  # warm the pool on the original data
        fresh = TableData.from_rows(
            schema, [(i, "new", -1.0) for i in range(20000)]
        )
        TableWriter(
            store, "b", "t", rows_per_file=5000, rows_per_group=500
        ).write(fresh)
        rescan = reader.scan()
        assert rescan.data.to_rows() == fresh.to_rows()
        assert rescan.cache_hits == 0  # every warm entry went stale

    def test_footer_invalidated_on_overwrite(self):
        store = ObjectStore()
        store.create_bucket("b")
        store.put("b", "f", b"v1")
        pool = BufferPool(store)
        pool.put_footer("b", "f", {"version": 1}, 10)
        assert pool.footer("b", "f") == ({"version": 1}, 10)
        store.put("b", "f", b"v2")
        assert pool.footer("b", "f") is None


class TestConfigPlumbing:
    def test_from_config_disabled_returns_none(self):
        store = ObjectStore()
        assert BufferPool.from_config(store, None) is None
        assert (
            BufferPool.from_config(store, CacheConfig(enabled=False)) is None
        )
        pool = BufferPool.from_config(store, CacheConfig())
        assert isinstance(pool, BufferPool)

    def test_config_rejects_negative_values(self):
        with pytest.raises(ValueError):
            CacheConfig(footer_entries=-1)
        with pytest.raises(ValueError):
            CacheConfig(chunk_budget_bytes=-1)
        with pytest.raises(ValueError):
            CacheConfig(max_coalesce_gap_bytes=-1)

    def test_clear_resets_occupancy(self, chunked_table):
        store, _, _ = chunked_table
        pool = BufferPool(store)
        TableReader(store, "b", "t", cache=pool).scan()
        assert pool.cached_chunks > 0 and pool.cached_footers > 0
        pool.clear()
        assert pool.cached_chunks == 0
        assert pool.cached_footers == 0
        assert pool.cached_chunk_bytes == 0
