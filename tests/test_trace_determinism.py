"""End-to-end tracing: deterministic exports, span closure on every
termination path, and the zero-cost disabled default."""

import json

from repro import PixelsDB, ServiceLevel
from repro.core import QueryServer, QueryStatus
from repro.obs import Instrumentation
from repro.sim import Simulator
from repro.storage.catalog import Catalog
from repro.storage.object_store import ObjectStore
from repro.turbo import Coordinator, TurboConfig
from repro.turbo.faults import FaultConfig
from repro.workloads import TpchGenerator, load_dataset

SQL = "SELECT l_returnflag, count(*) FROM lineitem GROUP BY l_returnflag"


def run_session(observe=True):
    db = PixelsDB(observe=observe, seed=5)
    db.load_tpch("tpch", scale=0.01)
    db.submit("tpch", "SELECT COUNT(*) FROM nation", ServiceLevel.IMMEDIATE)
    db.submit(
        "tpch",
        "SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment",
        ServiceLevel.RELAXED,
    )
    db.submit("tpch", "SELECT COUNT(*) FROM region", ServiceLevel.BEST_EFFORT)
    db.run_to_completion()
    return db


def make_observed_stack(faults=None, seed=3):
    sim = Simulator(seed=seed)
    store = ObjectStore()
    catalog = Catalog()
    load_dataset(store, catalog, "tpch", TpchGenerator(scale=0.02).tables())
    config = TurboConfig.fast()
    obs = Instrumentation.create(clock=lambda: sim.now)
    coordinator = Coordinator(
        sim, config, catalog, store, "tpch", faults=faults, obs=obs
    )
    server = QueryServer(sim, coordinator, config)
    return sim, coordinator, server, obs


def span_names(timeline):
    names = []

    def walk(nodes):
        for node in nodes:
            names.append(node["name"])
            walk(node["children"])

    walk(timeline["spans"])
    return names


class TestDeterminism:
    def test_same_seed_gives_byte_identical_traces(self):
        first = run_session().export_traces()
        second = run_session().export_traces()
        assert first == second
        assert json.loads(first)  # non-empty, valid JSON

    def test_query_lifecycle_spans_present(self):
        db = run_session()
        timeline = json.loads(db.trace("sq-1"))
        names = span_names(timeline)
        for expected in ("query", "submit", "dispatch", "plan", "execute", "scan", "bill"):
            assert expected in names, f"missing span {expected!r}"
        # Every span is closed with a terminal status.
        def statuses(nodes):
            for node in nodes:
                yield node["status"], node["end"]
                yield from statuses(node["children"])

        for status, end in statuses(timeline["spans"]):
            assert status != "open"
            assert end is not None


class TestClosureOnTerminationPaths:
    def test_cancellation_closes_spans_as_cancelled(self):
        sim, coordinator, server, obs = make_observed_stack()
        record = server.submit(SQL, ServiceLevel.IMMEDIATE)
        sim.run_until(0.01)  # dispatched, still executing
        assert server.cancel(record.query_id)
        sim.run_until(60)
        assert record.status is QueryStatus.FAILED
        spans = obs.tracer.spans(record.query_id)
        assert spans and obs.tracer.open_spans(record.query_id) == []
        assert any(span.status == "cancelled" for span in spans)

    def test_cancel_while_held_in_server_queue(self):
        sim, coordinator, server, obs = make_observed_stack()
        # best-effort is held whenever the cluster is not below the low
        # watermark; submit a blocker first.
        server.submit(SQL, ServiceLevel.IMMEDIATE)
        held = server.submit(SQL, ServiceLevel.BEST_EFFORT)
        assert held.status is QueryStatus.PENDING
        assert server.cancel(held.query_id)
        spans = obs.tracer.spans(held.query_id)
        queue_spans = [s for s in spans if s.name == "queue"]
        assert queue_spans and queue_spans[0].status == "cancelled"
        assert obs.tracer.open_spans(held.query_id) == []

    def test_cf_retries_leave_retry_spans(self):
        sim, coordinator, server, obs = make_observed_stack(
            FaultConfig(cf_failure_rate=0.5, max_retries=10)
        )
        for _ in range(4):  # saturate the VM slots
            server.submit(SQL, ServiceLevel.RELAXED)
        record = server.submit(SQL, ServiceLevel.IMMEDIATE)
        sim.run_until(1800)
        assert record.status is QueryStatus.FINISHED
        assert record.execution.retries > 0
        spans = obs.tracer.spans(record.query_id)
        invokes = [s for s in spans if s.name == "cf_invoke"]
        assert len(invokes) == record.execution.retries + 1
        assert [s.status for s in invokes] == ["retry"] * record.execution.retries + ["ok"]
        assert obs.tracer.open_spans(record.query_id) == []

    def test_vm_crash_retry_marks_execute_span(self):
        sim, coordinator, server, obs = make_observed_stack(
            FaultConfig(vm_crash_rate=0.5, max_retries=10)
        )
        records = [server.submit(SQL, ServiceLevel.RELAXED) for _ in range(8)]
        sim.run_until(1800)
        assert all(r.status is QueryStatus.FINISHED for r in records)
        retried = [r for r in records if r.execution.retries > 0]
        assert retried
        for record in retried:
            executes = [
                s for s in obs.tracer.spans(record.query_id) if s.name == "execute"
            ]
            assert sum(1 for s in executes if s.status == "retry") == (
                record.execution.retries
            )
            assert executes[-1].status == "ok"
            assert obs.tracer.open_spans(record.query_id) == []


class TestDisabledDefault:
    def test_observe_off_records_nothing(self):
        db = run_session(observe=False)
        assert db.metrics() == ""
        assert json.loads(db.export_traces()) == []
        assert not db.obs.enabled

    def test_results_identical_with_and_without_observability(self):
        queries_on = run_session(observe=True).query_server("tpch").queries
        queries_off = run_session(observe=False).query_server("tpch").queries
        assert [q.result_rows() for q in queries_on] == [
            q.result_rows() for q in queries_off
        ]
        assert [q.price for q in queries_on] == [q.price for q in queries_off]


class TestMetricsEndToEnd:
    def test_exposition_covers_the_paper_series(self):
        db = run_session()
        text = db.metrics()
        for series in (
            "pixels_queries_submitted_total",
            "pixels_queries_total",
            "pixels_billed_dollars_total",
            "pixels_server_queue_depth",
            "pixels_vm_workers",
            "pixels_vm_queue_depth",
            "pixels_cache_events_total",
            "pixels_logical_bytes_scanned_total",
            "pixels_store_requests_total",
            "pixels_query_pending_seconds_bucket",
        ):
            assert series in text, f"missing series {series!r}"
        assert 'pixels_queries_submitted_total{level="immediate"} 1' in text
        assert 'pixels_queries_total{status="ok",venue="vm"} 3' in text

    def test_watermark_crossings_counted(self):
        from repro.turbo.config import VmConfig
        from repro.turbo.vm_cluster import VmCluster, VmTask

        sim = Simulator()
        obs = Instrumentation.create(clock=lambda: sim.now)
        cluster = VmCluster(
            sim,
            VmConfig(
                min_workers=1,
                max_workers=8,
                slots_per_worker=2,
                scale_out_lag_s=5.0,
                evaluation_interval_s=1.0,
                scale_in_window_s=20.0,
                scale_in_cooldown_s=20.0,
            ),
            obs=obs,
        )
        workers = []
        for index in range(12):  # hold 12 tasks open: far above high watermark
            cluster.submit(
                VmTask(task_id=f"t{index}", on_start=workers.append)
            )
        sim.run_until(10.0)
        counter = obs.metrics.get("pixels_vm_watermark_crossings_total")
        assert counter.value(watermark="high") == cluster.scale_out_events > 0
        # Release everything; after the window + cooldown the cluster
        # scales back in and counts the low-watermark crossing.
        while workers:
            cluster.release(workers.pop())
        sim.run_until(120.0)
        assert counter.value(watermark="low") == cluster.scale_in_events > 0
        assert obs.metrics.get("pixels_vm_workers").value() == 1

    def test_rover_exposes_metrics_and_traces(self):
        from repro.rover import UserStore

        db = run_session()
        users = UserStore()
        users.register("ana", "pw", {"tpch"})
        rover = db.rover(users, "tpch")
        token = rover.login("ana", "pw")
        assert "pixels_queries_total" in rover.metrics(token)
        trace = json.loads(rover.trace(token, "sq-1"))
        assert trace["trace_id"] == "sq-1"
