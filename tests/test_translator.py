"""Unit tests for the rule-based translator (single-turn NL → SQL)."""

import pytest

from repro.errors import TranslationError
from repro.engine.sql.parser import parse_sql
from repro.nl2sql.translator import RuleBasedTranslator
from tests.conftest import build_catalog


@pytest.fixture
def translator():
    return RuleBasedTranslator()


@pytest.fixture
def schema():
    return build_catalog().schema("mini")


def sql_of(translator, schema, question):
    translation = translator.translate(schema, question)
    parse_sql(translation.sql)  # must always be syntactically valid
    return translation.sql


class TestBasicShapes:
    def test_count(self, translator, schema):
        sql = sql_of(translator, schema, "How many orders are there?")
        assert sql == "SELECT count(*) FROM orders"

    def test_count_with_filter(self, translator, schema):
        sql = sql_of(
            translator, schema, "How many orders have total price over 150?"
        )
        assert "count(*)" in sql
        assert "o_totalprice > 150" in sql

    def test_average(self, translator, schema):
        sql = sql_of(translator, schema, "What is the average total price of orders?")
        assert "avg(o_totalprice)" in sql

    def test_max(self, translator, schema):
        sql = sql_of(translator, schema, "highest total price in orders")
        assert "max(o_totalprice)" in sql

    def test_count_distinct(self, translator, schema):
        sql = sql_of(
            translator, schema, "How many different customer ids are in orders?"
        )
        assert "count(DISTINCT" in sql

    def test_group_by(self, translator, schema):
        sql = sql_of(
            translator, schema, "What is the total price per order status?"
        )
        assert "GROUP BY o_orderstatus" in sql
        assert "sum(o_totalprice)" in sql

    def test_top_n(self, translator, schema):
        sql = sql_of(translator, schema, "Top 3 orders by total price")
        assert sql.endswith("LIMIT 3")
        assert "ORDER BY o_totalprice DESC" in sql

    def test_top_n_word_number(self, translator, schema):
        sql = sql_of(translator, schema, "top five orders by total price")
        assert sql.endswith("LIMIT 5")

    def test_between(self, translator, schema):
        sql = sql_of(
            translator, schema,
            "How many orders have total price between 100 and 400?",
        )
        assert "BETWEEN 100 AND 400" in sql

    def test_date_filter(self, translator, schema):
        sql = sql_of(
            translator, schema, "How many orders were there after 1995-06-01?"
        )
        assert "DATE '1995-06-01'" in sql
        assert "o_orderdate >" in sql

    def test_string_equality(self, translator, schema):
        sql = sql_of(
            translator, schema, "How many orders have order status equal to 'O'?"
        )
        assert "o_orderstatus = 'O'" in sql

    def test_show_columns(self, translator, schema):
        sql = sql_of(
            translator, schema,
            "Show the customer name of customer with nation id less than 15",
        )
        assert sql.startswith("SELECT c_name FROM customer")
        assert "c_nationkey < 15" in sql


class TestJoins:
    def test_join_over_fk(self, translator, schema):
        sql = sql_of(
            translator, schema, "What is the total price per customer name?"
        )
        assert "JOIN" in sql
        assert "o_custkey" in sql and "c_custkey" in sql
        assert "GROUP BY c_name" in sql

    def test_single_table_when_possible(self, translator, schema):
        sql = sql_of(translator, schema, "How many customers are there?")
        assert "JOIN" not in sql
        assert "FROM customer" in sql


class TestRobustness:
    def test_filler_prefix_ignored(self, translator, schema):
        sql = sql_of(
            translator, schema, "Could you tell me how many orders are there?"
        )
        assert sql == "SELECT count(*) FROM orders"

    def test_empty_question_rejected(self, translator, schema):
        with pytest.raises(TranslationError):
            translator.translate(schema, "   ")

    def test_vague_question_low_confidence(self, translator, schema):
        translation = translator.translate(schema, "orders")
        assert translation.confidence < 1.0
        parse_sql(translation.sql)

    def test_translation_carries_pruned_schema(self, translator, schema):
        translation = translator.translate(schema, "how many orders are there")
        assert "orders" in translation.pruned_schema.table_names

    def test_quoted_value_with_apostrophe(self, translator, schema):
        sql = sql_of(
            translator, schema,
            'How many customers have customer name equal to "o\'brien"?',
        )
        assert "''" in sql  # escaped for SQL
