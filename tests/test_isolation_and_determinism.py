"""Cross-cutting invariants: session isolation, simulation determinism,
and error-path coverage in the execution stack."""

import pytest

from repro.core import ServiceLevel
from repro.errors import ExecutionError
from repro.nl2sql import CodesService
from repro.rover import RoverServer, UserStore


class TestRoverSessionIsolation:
    @pytest.fixture
    def rover(self, turbo_env):
        sim, store, catalog, config, coordinator, server = turbo_env
        users = UserStore()
        users.register("alice", "a", {"tpch"})
        users.register("bob", "b", {"tpch"})
        return sim, RoverServer(users, catalog, CodesService(), server)

    def test_blocks_invisible_across_sessions(self, rover):
        _, server = rover
        alice = server.login("alice", "a")
        bob = server.login("bob", "b")
        server.select_database(alice, "tpch")
        block = server.ask(alice, "How many orders are there?")
        from repro.errors import NoSuchQueryError

        with pytest.raises(NoSuchQueryError):
            server.block(bob, block.block_id)

    def test_result_blocks_scoped_to_session(self, rover):
        sim, server = rover
        alice = server.login("alice", "a")
        bob = server.login("bob", "b")
        for token in (alice, bob):
            server.select_database(token, "tpch")
        block = server.ask(alice, "How many orders are there?")
        server.submit_query(token=alice, block_id=block.block_id, level="immediate")
        assert len(server.result_blocks(alice)) == 1
        assert server.result_blocks(bob) == []

    def test_same_user_two_sessions_are_distinct(self, rover):
        _, server = rover
        first = server.login("alice", "a")
        second = server.login("alice", "a")
        assert first != second
        server.select_database(first, "tpch")
        block = server.ask(first, "How many orders are there?")
        assert server.result_blocks(second) == []
        from repro.errors import NoSuchQueryError

        with pytest.raises(NoSuchQueryError):
            server.block(second, block.block_id)

    def test_database_selection_is_per_session(self, rover):
        _, server = rover
        alice = server.login("alice", "a")
        bob = server.login("bob", "b")
        server.select_database(alice, "tpch")
        from repro.errors import RoverError

        with pytest.raises(RoverError, match="select a database"):
            server.ask(bob, "How many orders are there?")


class TestSimulationDeterminism:
    def _run_once(self):
        from repro.baselines import run_workload
        from repro.baselines.runner import Submission
        from repro.storage.catalog import Catalog
        from repro.storage.object_store import ObjectStore
        from repro.turbo import TurboConfig
        from repro.workloads import TpchGenerator, load_dataset

        store = ObjectStore()
        catalog = Catalog()
        load_dataset(store, catalog, "tpch", TpchGenerator(scale=0.02).tables())
        submissions = [
            Submission(
                float(i),
                "SELECT l_returnflag, count(*) FROM lineitem "
                "GROUP BY l_returnflag",
                list(ServiceLevel)[i % 3],
            )
            for i in range(9)
        ]
        result = run_workload(
            submissions, store, catalog, "tpch", TurboConfig.fast(), seed=4
        )
        return [
            (
                q.query_id,
                q.status.value,
                q.pending_time_s,
                q.execution_time_s,
                q.price,
            )
            for q in result.queries
        ], result.provider_cost()

    def test_identical_runs_bit_identical(self):
        first = self._run_once()
        second = self._run_once()
        assert first == second

    def test_fault_runs_deterministic(self):
        from repro.turbo.faults import FaultConfig
        from tests.test_faults import make_stack, SQL

        def run():
            sim, coordinator, server = make_stack(
                FaultConfig(vm_crash_rate=0.5, max_retries=10), seed=3
            )
            records = [server.submit(SQL, ServiceLevel.RELAXED) for _ in range(5)]
            sim.run_until(1800)
            return [
                (r.status.value, r.execution.retries, r.price) for r in records
            ]

        assert run() == run()


class TestObservabilityDeterminism:
    """The fleet-observability exports are simulation outputs: statement
    statistics and the query journal must be byte-identical across
    repeated runs and invariant to the morsel driver's worker count."""

    def _run_observed(self):
        from repro.baselines import run_workload
        from repro.baselines.runner import Submission
        from repro.storage.catalog import Catalog
        from repro.storage.object_store import ObjectStore
        from repro.turbo import TurboConfig
        from repro.workloads import TpchGenerator, load_dataset

        store = ObjectStore()
        catalog = Catalog()
        load_dataset(store, catalog, "tpch", TpchGenerator(scale=0.02).tables())
        submissions = [
            Submission(
                float(i),
                "SELECT l_returnflag, count(*) FROM lineitem "
                "GROUP BY l_returnflag",
                list(ServiceLevel)[i % 3],
            )
            for i in range(9)
        ]
        result = run_workload(
            submissions, store, catalog, "tpch", TurboConfig.fast(), seed=4,
            observe=True,
        )
        return (
            result.obs.statements.export_json(),
            result.obs.statements.render_top(10, "dollars"),
            result.obs.journal.export_jsonl(),
        )

    def test_exports_byte_identical_across_runs(self):
        assert self._run_observed() == self._run_observed()

    def test_exports_invariant_to_worker_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        sequential = self._run_observed()
        monkeypatch.setenv("REPRO_WORKERS", "4")
        parallel = self._run_observed()
        assert sequential == parallel

    def test_journal_has_content_and_correlates(self):
        import json

        statements_json, _, journal = self._run_observed()
        records = [json.loads(line) for line in journal.splitlines()]
        assert records  # every lifecycle stage journaled
        events = {r["event"] for r in records}
        assert "submit" in events
        assert "finish" in events
        finished = [r for r in records if r["event"] == "finish"]
        fingerprints = {
            s["fingerprint"]
            for s in json.loads(statements_json)["statements"]
        }
        # Every finish record's fingerprint joins the statement store.
        assert {r["fingerprint"] for r in finished} <= fingerprints


class TestErrorPaths:
    def test_unknown_plan_node_rejected(self, mini_engine):
        from repro.engine.plan import PlanNode

        class Mystery(PlanNode):
            def output_schema(self):
                return []

        _, _, executor = mini_engine
        with pytest.raises(ExecutionError, match="unknown plan node"):
            executor.execute(Mystery())

    def test_scan_without_location_rejected(self, mini_catalog):
        from repro.engine.executor import QueryExecutor
        from repro.engine.planner import Planner
        from repro.engine.source import ObjectStoreSource
        from repro.storage.object_store import ObjectStore

        # mini_catalog tables carry no bucket/prefix.
        planner = Planner(mini_catalog, "mini")
        executor = QueryExecutor(ObjectStoreSource(ObjectStore()))
        with pytest.raises(ExecutionError, match="storage location"):
            executor.execute(planner.plan_sql("SELECT c_name FROM customer"))

    def test_in_memory_source_missing_table(self, mini_catalog):
        from repro.engine.executor import QueryExecutor
        from repro.engine.planner import Planner
        from repro.engine.source import InMemorySource

        planner = Planner(mini_catalog, "mini")
        executor = QueryExecutor(InMemorySource())
        with pytest.raises(ExecutionError, match="no in-memory table"):
            executor.execute(planner.plan_sql("SELECT c_name FROM customer"))

    def test_failed_query_price_is_zero(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        record = server.submit("SELECT ghost FROM orders", ServiceLevel.IMMEDIATE)
        sim.run_until(10)
        assert record.price == 0.0


class TestBillingDeterminism:
    """The metering ledger and spend exports are byte-identical across
    runs and invariant to morsel-parallel worker count."""

    def _run_billed(self):
        from repro.baselines import run_workload
        from repro.baselines.runner import Submission
        from repro.storage.catalog import Catalog
        from repro.storage.object_store import ObjectStore
        from repro.turbo import TurboConfig
        from repro.workloads import TpchGenerator, load_dataset

        store = ObjectStore()
        catalog = Catalog()
        load_dataset(store, catalog, "tpch", TpchGenerator(scale=0.02).tables())
        submissions = [
            Submission(
                float(i),
                "SELECT l_returnflag, count(*) FROM lineitem "
                "GROUP BY l_returnflag",
                list(ServiceLevel)[i % 3],
                tenant=("acme", "beta")[i % 2],
            )
            for i in range(9)
        ]
        result = run_workload(
            submissions, store, catalog, "tpch", TurboConfig.fast(), seed=4,
            observe=True,
        )
        from repro.obs.reconcile import reconcile_server

        report = reconcile_server(result.server)
        assert report.ok, report.render()
        return (
            result.obs.ledger.export_jsonl(),
            result.obs.spend.export_json(),
            report.export_json(),
        )

    def test_billing_exports_byte_identical_across_runs(self):
        assert self._run_billed() == self._run_billed()

    def test_billing_exports_invariant_to_worker_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        sequential = self._run_billed()
        monkeypatch.setenv("REPRO_WORKERS", "4")
        parallel = self._run_billed()
        assert sequential == parallel
