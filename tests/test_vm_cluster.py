"""Unit tests for the VM cluster: slots, queueing, watermark autoscaling."""

import pytest

from repro.errors import ScalingError
from repro.sim import Simulator
from repro.turbo.config import VmConfig
from repro.turbo.vm_cluster import VmCluster, VmTask


def make_cluster(sim, **overrides):
    defaults = dict(
        min_workers=1,
        max_workers=8,
        slots_per_worker=2,
        scale_out_lag_s=10.0,
        evaluation_interval_s=1.0,
        scale_in_window_s=20.0,
        scale_in_cooldown_s=20.0,
    )
    defaults.update(overrides)
    return VmCluster(sim, VmConfig(**defaults))


def task(name, started):
    return VmTask(task_id=name, on_start=lambda worker: started.append((name, worker)))


class TestSlots:
    def test_starts_immediately_with_free_slot(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        started = []
        assert cluster.submit(task("a", started)) is True
        assert started and started[0][0] == "a"
        assert cluster.running_tasks == 1

    def test_queues_when_full(self):
        sim = Simulator()
        cluster = make_cluster(sim)  # 1 worker x 2 slots
        started = []
        cluster.submit(task("a", started))
        cluster.submit(task("b", started))
        assert cluster.submit(task("c", started)) is False
        assert cluster.queue_length == 1
        assert cluster.concurrency == 3

    def test_release_starts_queued_fifo(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        started = []
        cluster.submit(task("a", started))
        cluster.submit(task("b", started))
        cluster.submit(task("c", started))
        cluster.submit(task("d", started))
        worker = started[0][1]
        cluster.release(worker)
        assert [name for name, _ in started] == ["a", "b", "c"]

    def test_release_without_busy_slot_raises(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        started = []
        cluster.submit(task("a", started))
        worker = started[0][1]
        cluster.release(worker)
        with pytest.raises(ScalingError):
            cluster.release(worker)

    def test_least_loaded_worker_preferred(self):
        sim = Simulator()
        cluster = make_cluster(sim, min_workers=2)
        started = []
        cluster.submit(task("a", started))
        cluster.submit(task("b", started))
        workers = {worker.worker_id for _, worker in started}
        assert len(workers) == 2  # spread, not packed


class TestScaleOut:
    def test_scale_out_triggers_above_high_watermark(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        started = []
        for i in range(12):  # per-worker concurrency 12 > 5
            cluster.submit(task(f"t{i}", started))
        sim.run_until(2.0)  # one autoscaler tick
        assert cluster.scale_out_events == 1
        assert cluster.num_workers == 1  # lag not yet elapsed
        sim.run_until(15.0)
        assert cluster.num_workers > 1

    def test_workers_arrive_after_lag_and_drain_queue(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        started = []
        for i in range(12):
            cluster.submit(task(f"t{i}", started))
        sim.run_until(15.0)
        assert len(started) > 2  # queued tasks started on new workers

    def test_no_repeated_scale_out_while_pending(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        started = []
        for i in range(12):
            cluster.submit(task(f"t{i}", started))
        sim.run_until(8.0)  # several ticks within the lag window
        assert cluster.scale_out_events == 1

    def test_max_workers_respected(self):
        sim = Simulator()
        cluster = make_cluster(sim, max_workers=2)
        started = []
        for i in range(50):
            cluster.submit(task(f"t{i}", started))
        sim.run_until(30.0)
        assert cluster.num_workers <= 2

    def test_below_watermark_no_scale_out(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        started = []
        cluster.submit(task("a", started))
        sim.run_until(5.0)
        assert cluster.scale_out_events == 0


class TestScaleIn:
    def test_idle_cluster_scales_in_to_minimum(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        started = []
        for i in range(12):
            cluster.submit(task(f"t{i}", started))
        sim.run_until(12.0)
        grown = cluster.num_workers
        assert grown > 1
        # Finish everything; cluster idles below the low watermark.
        for name, worker in list(started):
            cluster.release(worker)
        sim.run_until(200.0)
        assert cluster.scale_in_events >= 1
        assert cluster.num_workers < grown
        assert cluster.num_workers >= 1

    def test_cooldown_delays_scale_in(self):
        sim = Simulator()
        cluster = make_cluster(sim, scale_in_cooldown_s=1000.0)
        started = []
        for i in range(12):
            cluster.submit(task(f"t{i}", started))
        sim.run_until(12.0)
        for name, worker in list(started):
            cluster.release(worker)
        sim.run_until(100.0)
        assert cluster.scale_in_events == 0  # lazy policy holds workers

    def test_busy_worker_stops_only_after_draining(self):
        sim = Simulator()
        cluster = make_cluster(sim, min_workers=1)
        started = []
        for i in range(12):
            cluster.submit(task(f"t{i}", started))
        sim.run_until(12.0)
        # Release all but one task; keep one running through scale-in.
        for name, worker in started[:-1]:
            cluster.release(worker)
        survivor_worker = started[-1][1]
        sim.run_until(200.0)
        assert survivor_worker.is_active  # still running its task
        cluster.release(survivor_worker)
        if survivor_worker.stopping:
            assert not survivor_worker.is_active  # stopped after drain

    def test_never_below_min_workers(self):
        sim = Simulator()
        cluster = make_cluster(sim, min_workers=2)
        sim.run_until(300.0)
        assert cluster.num_workers == 2


class TestAccounting:
    def test_worker_seconds_accumulate(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        sim.run_until(100.0)
        assert cluster.total_worker_seconds() == pytest.approx(100.0)

    def test_provider_cost_proportional_to_uptime(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        sim.run_until(50.0)
        half = cluster.provider_cost()
        sim.run_until(100.0)
        assert cluster.provider_cost() == pytest.approx(2 * half)

    def test_retired_workers_counted(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        started = []
        for i in range(12):
            cluster.submit(task(f"t{i}", started))
        sim.run_until(12.0)
        for name, worker in started:
            cluster.release(worker)
        sim.run_until(200.0)
        # Uptime from the scaled-out period persists after scale-in.
        assert cluster.total_worker_seconds() > 200.0

    def test_gauges_recorded(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        started = []
        cluster.submit(task("a", started))
        sim.run_until(3.0)
        assert cluster.trace.values("vm.workers")
        assert cluster.trace.values("vm.concurrency")

    def test_disable_autoscaler(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        cluster.disable_autoscaler()
        started = []
        for i in range(20):
            cluster.submit(task(f"t{i}", started))
        sim.run_until(60.0)
        assert cluster.scale_out_events == 0
        assert cluster.num_workers == 1


class TestFailWorker:
    def test_failed_idle_worker_replaced_after_lag(self):
        sim = Simulator()
        cluster = make_cluster(sim, min_workers=1)
        worker = cluster._workers[0]
        cluster.fail_worker(worker)
        assert cluster.num_workers == 0  # gone immediately (it was idle)
        sim.run_until(11.0)  # scale_out_lag is 10s in the test config
        assert cluster.num_workers == 1  # replacement arrived

    def test_busy_failed_worker_drains_then_stops(self):
        sim = Simulator()
        cluster = make_cluster(sim, min_workers=1)
        started = []
        cluster.submit(task("a", started))
        worker = started[0][1]
        cluster.fail_worker(worker)
        assert worker.is_active  # still draining its task
        cluster.release(worker)
        assert not worker.is_active

    def test_fail_worker_is_idempotent(self):
        sim = Simulator()
        cluster = make_cluster(sim, min_workers=1)
        worker = cluster._workers[0]
        cluster.fail_worker(worker)
        cluster.fail_worker(worker)  # no crash, no double replacement
        sim.run_until(11.0)
        assert cluster.num_workers == 1

    def test_replacement_recorded_in_trace(self):
        sim = Simulator()
        cluster = make_cluster(sim, min_workers=1)
        cluster.fail_worker(cluster._workers[0])
        assert cluster.trace.values("vm.replacement") == [1]
