"""Unit tests for name/type resolution and binder error reporting."""

import pytest

from repro.errors import BindError
from repro.engine.binder import Binder
from repro.engine.sql.parser import parse_sql
from repro.engine.planner import Planner
from repro.storage.types import DataType


@pytest.fixture
def binder(mini_catalog):
    return Binder(mini_catalog, "mini")


@pytest.fixture
def planner(mini_catalog):
    return Planner(mini_catalog, "mini")


def bind_where(binder, sql):
    stmt = parse_sql(sql)
    scope = binder.build_scope(stmt.from_clause)
    return binder.bind_scalar(stmt.where, scope)


class TestResolution:
    def test_unqualified_unique_column(self, binder):
        expr = bind_where(binder, "SELECT 1 FROM orders WHERE o_orderkey = 1")
        assert "orders.o_orderkey" in expr.to_sql()

    def test_qualified_via_alias(self, binder):
        expr = bind_where(binder, "SELECT 1 FROM orders o WHERE o.o_orderkey = 1")
        assert "o.o_orderkey" in expr.to_sql()

    def test_unknown_column(self, binder):
        with pytest.raises(BindError, match="unknown column"):
            bind_where(binder, "SELECT 1 FROM orders WHERE ghost = 1")

    def test_unknown_alias(self, binder):
        with pytest.raises(BindError, match="unknown table alias"):
            bind_where(binder, "SELECT 1 FROM orders WHERE x.o_orderkey = 1")

    def test_ambiguous_column(self, binder):
        with pytest.raises(BindError, match="ambiguous"):
            bind_where(
                binder,
                "SELECT 1 FROM orders a, orders b WHERE o_orderkey = 1",
            )

    def test_duplicate_binding(self, binder):
        with pytest.raises(BindError, match="duplicate table binding"):
            binder.build_scope(parse_sql("SELECT 1 FROM orders, orders").from_clause)

    def test_column_from_wrong_alias(self, binder):
        with pytest.raises(BindError, match="no column"):
            bind_where(
                binder,
                "SELECT 1 FROM orders o, customer c WHERE o.c_name = 'x'",
            )


class TestTypes:
    def test_comparison_type_mismatch(self, binder):
        with pytest.raises(BindError, match="cannot compare"):
            bind_where(binder, "SELECT 1 FROM orders WHERE o_orderstatus = 5")

    def test_numeric_promotion_ok(self, binder):
        # BIGINT column compared against INT literal is fine.
        bind_where(binder, "SELECT 1 FROM orders WHERE o_orderkey = 1")

    def test_date_literal_coercion(self, binder):
        expr = bind_where(
            binder, "SELECT 1 FROM orders WHERE o_orderdate = DATE '1995-01-01'"
        )
        assert "9131" in expr.to_sql()

    def test_plain_string_coerced_against_date(self, binder):
        expr = bind_where(
            binder, "SELECT 1 FROM orders WHERE o_orderdate >= '1995-01-01'"
        )
        assert "9131" in expr.to_sql()

    def test_bad_date_literal(self, binder):
        with pytest.raises(BindError, match="bad DATE literal"):
            bind_where(
                binder, "SELECT 1 FROM orders WHERE o_orderdate = DATE 'nonsense'"
            )

    def test_arithmetic_on_varchar_rejected(self, binder):
        with pytest.raises(BindError):
            bind_where(binder, "SELECT 1 FROM orders WHERE o_orderstatus + 1 = 2")

    def test_and_requires_boolean(self, binder):
        with pytest.raises(BindError, match="BOOLEAN"):
            bind_where(binder, "SELECT 1 FROM orders WHERE o_orderkey AND TRUE")

    def test_like_requires_varchar(self, binder):
        with pytest.raises(BindError, match="VARCHAR"):
            bind_where(binder, "SELECT 1 FROM orders WHERE o_orderkey LIKE 'x%'")

    def test_like_pattern_must_be_literal(self, binder):
        with pytest.raises(BindError, match="pattern"):
            bind_where(
                binder,
                "SELECT 1 FROM orders WHERE o_orderstatus LIKE o_orderstatus",
            )

    def test_in_list_type_checked(self, binder):
        with pytest.raises(BindError, match="IN list"):
            bind_where(binder, "SELECT 1 FROM orders WHERE o_orderkey IN ('x')")

    def test_unknown_function(self, binder):
        with pytest.raises(BindError, match="unknown function"):
            bind_where(binder, "SELECT 1 FROM orders WHERE frobnicate(1) = 1")

    def test_case_incompatible_branches(self, binder):
        with pytest.raises(BindError, match="incompatible"):
            bind_where(
                binder,
                "SELECT 1 FROM orders WHERE "
                "CASE WHEN TRUE THEN 1 ELSE 'x' END = 1",
            )


class TestAggregateRules:
    def test_aggregate_in_where_rejected(self, planner):
        with pytest.raises(BindError, match="not allowed here"):
            planner.plan_sql("SELECT 1 FROM orders WHERE sum(o_totalprice) > 10")

    def test_bare_column_outside_group_by(self, planner):
        with pytest.raises(BindError, match="GROUP BY"):
            planner.plan_sql(
                "SELECT o_orderstatus, count(*) FROM orders GROUP BY o_custkey"
            )

    def test_group_by_expression_match(self, planner):
        # The same expression in SELECT and GROUP BY must bind.
        planner.plan_sql(
            "SELECT o_totalprice * 2, count(*) FROM orders GROUP BY o_totalprice * 2"
        )

    def test_nested_aggregate_rejected(self, planner):
        with pytest.raises(BindError):
            planner.plan_sql("SELECT sum(count(*)) FROM orders GROUP BY o_custkey")

    def test_sum_of_varchar_rejected(self, planner):
        with pytest.raises(BindError, match="numeric"):
            planner.plan_sql("SELECT sum(o_orderstatus) FROM orders")

    def test_distinct_only_for_count(self, planner):
        with pytest.raises(BindError, match="DISTINCT"):
            planner.plan_sql("SELECT sum(DISTINCT o_totalprice) FROM orders")

    def test_star_in_aggregate_query_rejected(self, planner):
        with pytest.raises(BindError, match="aggregate"):
            planner.plan_sql("SELECT * FROM orders GROUP BY o_custkey")

    def test_count_star_ok(self, planner):
        planner.plan_sql("SELECT count(*) FROM orders")

    def test_duplicate_aggregates_deduplicated(self, planner):
        from repro.engine.plan import Aggregate, walk_plan

        plan = planner.plan_sql(
            "SELECT sum(o_totalprice), sum(o_totalprice) * 2 FROM orders"
        )
        agg = next(n for n in walk_plan(plan) if isinstance(n, Aggregate))
        assert len(agg.aggregates) == 1


class TestJoinConditionSplit:
    def test_equi_keys_extracted(self, planner):
        from repro.engine.plan import HashJoin, walk_plan

        plan = planner.plan_sql(
            "SELECT 1 FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey"
        )
        join = next(n for n in walk_plan(plan) if isinstance(n, HashJoin))
        assert join.left_keys == ["o.o_custkey"]
        assert join.right_keys == ["c.c_custkey"]

    def test_non_equi_becomes_residual(self, planner):
        from repro.engine.plan import HashJoin, walk_plan

        plan = planner.plan_sql(
            "SELECT 1 FROM orders o JOIN customer c "
            "ON o.o_custkey = c.c_custkey AND o.o_totalprice > 100"
        )
        join = next(n for n in walk_plan(plan) if isinstance(n, HashJoin))
        assert join.residual is not None

    def test_incomparable_join_keys_rejected(self, planner):
        with pytest.raises(BindError, match="not comparable"):
            planner.plan_sql(
                "SELECT 1 FROM orders o JOIN customer c ON o.o_orderstatus = c.c_custkey"
            )
