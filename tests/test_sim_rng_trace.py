"""Unit tests for RNG streams and metric tracing."""

import pytest

from repro.sim.rng import RngRegistry, hash_name
from repro.sim.trace import Trace, TracePoint, downsample


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(42).stream("arrivals").integers(0, 1000, 10)
        b = RngRegistry(42).stream("arrivals").integers(0, 1000, 10)
        assert (a == b).all()

    def test_different_names_are_independent(self):
        registry = RngRegistry(42)
        a = registry.stream("arrivals").integers(0, 1000, 10)
        b = registry.stream("failures").integers(0, 1000, 10)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").integers(0, 1000, 10)
        b = RngRegistry(2).stream("x").integers(0, 1000, 10)
        assert not (a == b).all()

    def test_stream_is_stateful_singleton(self):
        registry = RngRegistry(0)
        first = registry.stream("s")
        assert registry.stream("s") is first
        draw1 = first.integers(0, 1000)
        draw2 = registry.stream("s").integers(0, 1000)
        # Statefulness: consecutive draws are from one advancing stream.
        assert isinstance(draw1, type(draw2))

    def test_order_of_creation_does_not_matter(self):
        r1 = RngRegistry(9)
        r1.stream("b")
        a1 = r1.stream("a").integers(0, 1000, 5)
        r2 = RngRegistry(9)
        a2 = r2.stream("a").integers(0, 1000, 5)
        assert (a1 == a2).all()

    def test_hash_name_is_stable(self):
        assert hash_name("vm-cluster") == hash_name("vm-cluster")
        assert hash_name("a") != hash_name("b")


class TestTrace:
    def test_record_and_series(self):
        trace = Trace()
        trace.record("vms", 0.0, 2)
        trace.record("vms", 10.0, 4)
        assert trace.values("vms") == [2, 4]
        assert trace.times("vms") == [0.0, 10.0]

    def test_missing_metric_is_empty(self):
        trace = Trace()
        assert trace.series("nope") == []
        assert trace.last("nope") is None

    def test_last(self):
        trace = Trace()
        trace.record("q", 1.0, 5)
        trace.record("q", 2.0, 7)
        assert trace.last("q") == TracePoint(2.0, 7)

    def test_value_at_step_semantics(self):
        trace = Trace()
        trace.record("vms", 10.0, 2)
        trace.record("vms", 20.0, 5)
        assert trace.value_at("vms", 5.0) == 0.0
        assert trace.value_at("vms", 10.0) == 2
        assert trace.value_at("vms", 15.0) == 2
        assert trace.value_at("vms", 25.0) == 5

    def test_time_weighted_mean(self):
        trace = Trace()
        trace.record("c", 0.0, 0)
        trace.record("c", 10.0, 10)
        # 0 for [0,10), 10 for [10,20) -> mean 5 over [0,20)
        assert trace.time_weighted_mean("c", 0.0, 20.0) == pytest.approx(5.0)

    def test_time_weighted_mean_with_initial(self):
        trace = Trace()
        trace.record("c", 10.0, 0)
        assert trace.time_weighted_mean("c", 0.0, 20.0, initial=4.0) == pytest.approx(
            2.0
        )

    def test_time_weighted_mean_empty_interval(self):
        trace = Trace()
        trace.record("c", 0.0, 3)
        assert trace.time_weighted_mean("c", 5.0, 5.0) == 3

    def test_merge_interleaves_sorted(self):
        a = Trace()
        a.record("m", 1.0, 1)
        a.record("m", 3.0, 3)
        b = Trace()
        b.record("m", 2.0, 2)
        a.merge(b)
        assert a.values("m") == [1, 2, 3]

    def test_metrics_sorted(self):
        trace = Trace()
        trace.record("b", 0, 0)
        trace.record("a", 0, 0)
        assert trace.metrics() == ["a", "b"]

    def test_iter_points(self):
        trace = Trace()
        trace.record("a", 0.0, 1)
        trace.record("b", 1.0, 2)
        points = list(trace.iter_points())
        assert points == [("a", TracePoint(0.0, 1)), ("b", TracePoint(1.0, 2))]


class TestDownsample:
    def test_keeps_last_per_bucket(self):
        points = [TracePoint(t, t) for t in [0.1, 0.2, 1.5, 1.9, 3.0]]
        result = downsample(points, 1.0)
        assert [p.value for p in result] == [0.2, 1.9, 3.0]

    def test_rejects_bad_bucket(self):
        with pytest.raises(ValueError):
            downsample([], 0)

    def test_empty(self):
        assert downsample([], 5.0) == []


class TestTraceCsv:
    def test_csv_shape(self):
        trace = Trace()
        trace.record("vm.workers", 0.0, 1)
        trace.record("vm.workers", 10.0, 3)
        trace.record("q", 5.0, 1, tag="sq-1")
        csv = trace.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "metric,time,value,tag"
        assert "vm.workers,0.0,1,," not in csv  # no double commas beyond tag
        assert "q,5.0,1,sq-1" in lines

    def test_csv_metric_filter(self):
        trace = Trace()
        trace.record("a", 0.0, 1)
        trace.record("b", 0.0, 2)
        csv = trace.to_csv(metrics=["a"])
        assert "a,0.0,1" in csv and "b,0.0,2" not in csv

    def test_csv_escapes_commas_in_tags(self):
        trace = Trace()
        trace.record("m", 0.0, 1, tag="x,y")
        assert "x;y" in trace.to_csv()
