"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import LexError
from repro.engine.sql.lexer import Lexer, TokenType


def lex(sql):
    return [(t.type, t.text) for t in Lexer(sql).tokenize()[:-1]]


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = lex("SELECT select SeLeCt")
        assert all(t[0] is TokenType.KEYWORD for t in tokens)

    def test_identifiers(self):
        assert lex("orders o_orderkey _tmp x1") == [
            (TokenType.IDENTIFIER, "orders"),
            (TokenType.IDENTIFIER, "o_orderkey"),
            (TokenType.IDENTIFIER, "_tmp"),
            (TokenType.IDENTIFIER, "x1"),
        ]

    def test_numbers(self):
        assert lex("42 3.14 .5 1e3 2.5E-2") == [
            (TokenType.NUMBER, "42"),
            (TokenType.NUMBER, "3.14"),
            (TokenType.NUMBER, ".5"),
            (TokenType.NUMBER, "1e3"),
            (TokenType.NUMBER, "2.5E-2"),
        ]

    def test_string_with_escape(self):
        tokens = lex("'it''s'")
        assert tokens == [(TokenType.STRING, "it's")]

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated"):
            lex("'abc")

    def test_quoted_identifier(self):
        assert lex('"Weird Name"') == [(TokenType.IDENTIFIER, "Weird Name")]

    def test_operators(self):
        assert [t[1] for t in lex("<= >= <> != = < > + - * / % ||")] == [
            "<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%", "||",
        ]

    def test_star_token_type(self):
        tokens = lex("*")
        assert tokens[0][0] is TokenType.STAR

    def test_punctuation(self):
        assert [t[0] for t in lex("( ) , . ;")] == [
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.COMMA,
            TokenType.DOT,
            TokenType.SEMICOLON,
        ]

    def test_line_comment(self):
        assert lex("SELECT -- comment here\n1") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.NUMBER, "1"),
        ]

    def test_block_comment(self):
        assert lex("1 /* hi \n there */ 2") == [
            (TokenType.NUMBER, "1"),
            (TokenType.NUMBER, "2"),
        ]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            lex("1 /* oops")

    def test_unexpected_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            lex("SELECT @")

    def test_eof_token_present(self):
        tokens = Lexer("1").tokenize()
        assert tokens[-1].type is TokenType.EOF

    def test_positions_recorded(self):
        tokens = Lexer("SELECT x").tokenize()
        assert tokens[0].position == 0
        assert tokens[1].position == 7

    def test_dot_number_vs_qualified(self):
        assert lex("a.b") == [
            (TokenType.IDENTIFIER, "a"),
            (TokenType.DOT, "."),
            (TokenType.IDENTIFIER, "b"),
        ]

    def test_empty_input(self):
        assert lex("   ") == []
