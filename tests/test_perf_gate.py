"""Tests for the perf gate (benchmarks/perf_gate.py).

The gate's contract: deterministic simulation metrics (logical bytes,
GET counts, billed dollars, ...) must match the committed baseline
exactly; wall time is only compared when a band is supplied.  The
regression-demonstration tests here are the acceptance check that a
changed byte count / GET count / billed price actually fails CI.
"""

import importlib.util
import pathlib

import pytest

_GATE_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "perf_gate.py"
)
_spec = importlib.util.spec_from_file_location("perf_gate", _GATE_PATH)
perf_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf_gate)


def make_record(**metric_overrides):
    metrics = {
        "billed_dollars": 0.000695306426,
        "finished_queries": 30,
        "get_requests": 8,
        "logical_bytes_scanned": 3528450,
        "sim_seconds": 300.0,
    }
    metrics.update(metric_overrides)
    return {
        "schema_version": 1,
        "slug": "c1",
        "rounds": 2,
        "warmup": 0,
        "metrics": metrics,
        "wall": {"median_s": 0.1, "mad_s": 0.01, "samples_s": [0.09, 0.11]},
    }


class TestCompareRecords:
    def test_identical_records_pass(self):
        assert perf_gate.compare_records(make_record(), make_record()) == []

    @pytest.mark.parametrize(
        "metric, regressed",
        [
            ("logical_bytes_scanned", 3528451),
            ("get_requests", 9),
            ("billed_dollars", 0.0007),
            ("finished_queries", 29),
        ],
    )
    def test_deterministic_metric_regression_fails(self, metric, regressed):
        violations = perf_gate.compare_records(
            make_record(), make_record(**{metric: regressed})
        )
        assert len(violations) == 1
        assert metric in violations[0]

    def test_float_serialization_jitter_is_tolerated(self):
        base = make_record()
        fresh = make_record(
            billed_dollars=base["metrics"]["billed_dollars"] * (1 + 1e-12)
        )
        assert perf_gate.compare_records(base, fresh) == []

    def test_missing_metric_fails(self):
        fresh = make_record()
        del fresh["metrics"]["get_requests"]
        violations = perf_gate.compare_records(make_record(), fresh)
        assert violations and "missing" in violations[0]

    def test_new_metric_requires_baseline_refresh(self):
        fresh = make_record(extra_counter=1)
        violations = perf_gate.compare_records(make_record(), fresh)
        assert violations and "refresh the baseline" in violations[0]

    def test_schema_version_mismatch_short_circuits(self):
        fresh = make_record(get_requests=999)
        fresh["schema_version"] = 2
        violations = perf_gate.compare_records(make_record(), fresh)
        assert len(violations) == 1
        assert "schema_version" in violations[0]

    def test_wall_time_ignored_without_band(self):
        fresh = make_record()
        fresh["wall"]["median_s"] = 100.0
        assert perf_gate.compare_records(make_record(), fresh) == []

    def test_wall_time_gated_with_band(self):
        fresh = make_record()
        fresh["wall"]["median_s"] = 0.5
        violations = perf_gate.compare_records(
            make_record(), fresh, wall_band=0.5
        )
        assert violations and "wall median" in violations[0]
        fresh["wall"]["median_s"] = 0.12
        assert (
            perf_gate.compare_records(make_record(), fresh, wall_band=0.5)
            == []
        )


class TestRunGate:
    def test_missing_fresh_record_is_a_violation(self, monkeypatch, tmp_path):
        monkeypatch.setattr(perf_gate, "_REPO_ROOT", str(tmp_path))
        monkeypatch.setattr(perf_gate, "_RESULTS_DIR", str(tmp_path / "r"))
        checked, violations = perf_gate.run_gate(slugs=["ghost"])
        assert checked == []
        assert violations and "no fresh record" in violations[0]

    def test_gate_round_trip_on_disk(self, monkeypatch, tmp_path):
        import json

        results = tmp_path / "results"
        results.mkdir()
        monkeypatch.setattr(perf_gate, "_REPO_ROOT", str(tmp_path))
        monkeypatch.setattr(perf_gate, "_RESULTS_DIR", str(results))
        record = make_record()
        (results / "bench_c1.json").write_text(json.dumps(record))
        # No baseline yet: the gate demands one.
        checked, violations = perf_gate.run_gate(slugs=["c1"])
        assert violations and "no committed baseline" in violations[0]
        # --update promotes the fresh record, after which the gate passes.
        perf_gate.run_gate(slugs=["c1"], update=True)
        checked, violations = perf_gate.run_gate(slugs=["c1"])
        assert checked == ["c1"]
        assert violations == []

    def test_main_exit_codes(self, monkeypatch, tmp_path, capsys):
        import json

        results = tmp_path / "results"
        results.mkdir()
        monkeypatch.setattr(perf_gate, "_REPO_ROOT", str(tmp_path))
        monkeypatch.setattr(perf_gate, "_RESULTS_DIR", str(results))
        (results / "bench_c1.json").write_text(json.dumps(make_record()))
        perf_gate.run_gate(slugs=["c1"], update=True)
        assert perf_gate.main(["c1"]) == 0
        tampered = make_record(get_requests=9)
        (results / "bench_c1.json").write_text(json.dumps(tampered))
        assert perf_gate.main(["c1"]) == 1
        captured = capsys.readouterr()
        assert "get_requests" in captured.err


def make_profile(scan_bytes=3528450, scan_nanos=500_000, scan_gets=8,
                 scan_time=1.5):
    return {
        "operators": {
            "Scan": {
                "time_s": scan_time,
                "nanodollars": scan_nanos,
                "bytes_scanned": scan_bytes,
                "get_requests": scan_gets,
            },
            "Aggregate": {
                "time_s": 0.3,
                "nanodollars": 100_000,
                "bytes_scanned": 0,
                "get_requests": 0,
            },
        }
    }


class TestExplain:
    """--explain root-causing: a synthetically perturbed baseline must
    name the regressed operator and resource."""

    def test_profile_diff_names_operator_and_resource(self):
        base = make_record()
        base["profile"] = make_profile()
        fresh = make_record(logical_bytes_scanned=4528450)
        fresh["profile"] = make_profile(scan_bytes=4528450,
                                        scan_nanos=700_000)
        lines = perf_gate.explain_records(base, fresh)
        assert lines
        assert "Scan regressed in bandwidth" in lines[0]
        assert "attributed" in lines[0]

    def test_request_regression_named(self):
        base = make_record()
        base["profile"] = make_profile()
        fresh = make_record(get_requests=800)
        fresh["profile"] = make_profile(scan_gets=800, scan_nanos=600_000)
        lines = perf_gate.explain_records(base, fresh)
        assert "Scan regressed in requests" in lines[0]

    def test_metric_fallback_without_profile_sections(self):
        lines = perf_gate.explain_records(
            make_record(), make_record(logical_bytes_scanned=999)
        )
        assert lines == [
            "c1: logical_bytes_scanned implicates bandwidth: "
            "baseline 3528450 -> fresh 999"
        ]

    def test_metric_fallback_classification(self):
        base = make_record()
        fresh = make_record(
            billed_dollars=0.9, get_requests=9, sim_seconds=301.0
        )
        text = "\n".join(perf_gate.explain_records(base, fresh))
        assert "billed_dollars implicates pricing" in text
        assert "get_requests implicates requests" in text
        assert "sim_seconds implicates compute" in text

    def test_identical_records_explain_empty(self):
        base = make_record()
        base["profile"] = make_profile()
        fresh = make_record()
        fresh["profile"] = make_profile()
        assert perf_gate.explain_records(base, fresh) == []

    def test_profile_section_ignored_by_gate_comparison(self):
        # Old baselines without a profile section stay valid, and a
        # changed profile alone is not a metrics violation.
        base = make_record()
        fresh = make_record()
        fresh["profile"] = make_profile()
        assert perf_gate.compare_records(base, fresh) == []

    def test_main_explain_prints_cause(self, monkeypatch, tmp_path, capsys):
        import json

        results = tmp_path / "results"
        results.mkdir()
        monkeypatch.setattr(perf_gate, "_REPO_ROOT", str(tmp_path))
        monkeypatch.setattr(perf_gate, "_RESULTS_DIR", str(results))
        base = make_record()
        base["profile"] = make_profile()
        (tmp_path / "BENCH_c1.json").write_text(json.dumps(base))
        fresh = make_record(logical_bytes_scanned=4528450)
        fresh["profile"] = make_profile(scan_bytes=4528450,
                                        scan_nanos=700_000)
        (results / "bench_c1.json").write_text(json.dumps(fresh))
        assert perf_gate.main(["c1", "--explain"]) == 1
        captured = capsys.readouterr()
        assert "perf-gate: cause c1: Scan regressed in bandwidth" in captured.err
