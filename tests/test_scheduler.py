"""The layered scheduler: WFQ core, admission layer, session shards,
and their integration through the QueryServer façade."""

import pytest

from repro.core import QueryStatus, ServiceLevel
from repro.core.query_server import ServerQuery
from repro.core.scheduler import (
    AdmissionController,
    AdmissionPolicy,
    FairQueue,
    LevelScheduler,
    SessionFleet,
    SessionSpec,
    jain_index,
    shard_of,
)
from repro.errors import QueryRejectedError

HEAVY = "SELECT l_returnflag, count(*) FROM lineitem GROUP BY l_returnflag"


def _record(query_id, tenant, level=ServiceLevel.RELAXED):
    return ServerQuery(
        query_id=query_id,
        sql="SELECT 1",
        level=level,
        submitted_at=0.0,
        tenant=tenant,
    )


class TestFairQueue:
    def test_single_tenant_degenerates_to_fifo(self):
        queue = FairQueue()
        for i in range(5):
            queue.push(_record(f"q{i}", "solo"))
        order = [queue.pop().query_id for _ in range(5)]
        assert order == [f"q{i}" for i in range(5)]

    def test_equal_shares_interleave_flows(self):
        queue = FairQueue()
        for i in range(4):
            queue.push(_record(f"a{i}", "a"))
        for i in range(4):
            queue.push(_record(f"b{i}", "b"))
        order = [queue.pop().query_id for _ in range(8)]
        # Tenant b arrived second but is not starved behind a's backlog.
        assert order == ["a0", "b0", "a1", "b1", "a2", "b2", "a3", "b3"]

    def test_weighted_shares_bias_dispatch(self):
        queue = FairQueue(shares={"a": 2.0, "b": 1.0})
        for i in range(4):
            queue.push(_record(f"a{i}", "a"))
        for i in range(4):
            queue.push(_record(f"b{i}", "b"))
        first_six = [queue.pop().query_id for _ in range(6)]
        # Share 2:1 → tenant a gets ~2 dispatches for each of b's.
        assert sum(1 for q in first_six if q.startswith("a")) == 4

    def test_remove_is_tombstoned(self):
        queue = FairQueue()
        for i in range(3):
            queue.push(_record(f"q{i}", "t"))
        assert queue.remove("q1") is True
        assert queue.remove("q1") is False
        assert len(queue) == 2
        assert [r.query_id for r in queue.records()] == ["q0", "q2"]
        assert [queue.pop().query_id for _ in range(2)] == ["q0", "q2"]
        assert queue.pop() is None

    def test_depths_by_tenant(self):
        queue = FairQueue()
        queue.push(_record("x", "b"))
        queue.push(_record("y", "a"))
        queue.push(_record("z", "a"))
        assert queue.depths() == {"a": 2, "b": 1}
        assert queue.push(_record("w", "a")) > 0.0  # returns finish tag

    def test_finish_tag_recorded_on_record(self):
        queue = FairQueue()
        record = _record("q", "t")
        tag = queue.push(record)
        assert record.finish_tag == tag


class TestJainIndex:
    def test_perfect_fairness(self):
        assert jain_index([3, 3, 3, 3]) == pytest.approx(1.0)

    def test_total_capture(self):
        assert jain_index([8, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_index([]) is None
        assert jain_index([0, 0]) is None


class TestLevelScheduler:
    def test_snapshot_shape(self):
        scheduler = LevelScheduler(shares={"a": 2.0})
        scheduler.push(_record("r1", "a", ServiceLevel.RELAXED))
        scheduler.push(_record("b1", "b", ServiceLevel.BEST_EFFORT))
        scheduler.pop(ServiceLevel.RELAXED)
        snap = scheduler.snapshot()
        assert snap["queues"] == {"relaxed": {}, "best_effort": {"b": 1}}
        assert snap["queue_depths"] == {"relaxed": 0, "best_effort": 1}
        assert snap["dispatched_by_tenant"] == {"a": 1}
        assert snap["fairness"]["jain_dispatched"] == 1.0
        assert snap["shares"] == {"default": 1.0, "a": 2.0}

    def test_claim_counts_as_dispatch(self):
        scheduler = LevelScheduler()
        record = _record("r1", "a", ServiceLevel.RELAXED)
        scheduler.push(record)
        assert scheduler.claim(record) is True
        assert scheduler.claim(record) is False
        assert scheduler.dispatched_by_tenant() == {"a": 1}

    def test_immediate_has_no_hold_queue(self):
        scheduler = LevelScheduler()
        with pytest.raises(ValueError):
            scheduler.queue(ServiceLevel.IMMEDIATE)


class TestAdmissionController:
    def test_default_policy_admits_everything(self):
        controller = AdmissionController()
        for _ in range(1000):
            decision = controller.decide(
                "t", ServiceLevel.RELAXED, tenant_live=999, relaxed_depth=999
            )
            assert decision.action == "admit"
        assert controller.snapshot()["admitted"] == 1000

    def test_tenant_quota_rejects(self):
        controller = AdmissionController(AdmissionPolicy(tenant_quota=2))
        ok = controller.decide("t", ServiceLevel.RELAXED, 1, 0)
        full = controller.decide("t", ServiceLevel.RELAXED, 2, 0)
        assert ok.admitted and full.action == "reject"
        assert full.reason == "tenant_quota"
        assert controller.snapshot()["rejected"] == {"tenant_quota": 1}

    def test_token_bucket_refills_on_sim_clock(self):
        now = {"t": 0.0}
        controller = AdmissionController(
            AdmissionPolicy(tenant_rate_per_s=1.0, tenant_burst=2.0),
            clock=lambda: now["t"],
        )
        verdicts = [
            controller.decide("t", ServiceLevel.IMMEDIATE, 0, 0).action
            for _ in range(3)
        ]
        assert verdicts == ["admit", "admit", "reject"]
        now["t"] = 1.0  # one token refilled
        assert controller.decide("t", ServiceLevel.IMMEDIATE, 0, 0).admitted
        assert not controller.decide("t", ServiceLevel.IMMEDIATE, 0, 0).admitted

    def test_pressure_downgrades_relaxed_only(self):
        controller = AdmissionController(
            AdmissionPolicy(downgrade_queue_depth=3)
        )
        relaxed = controller.decide("t", ServiceLevel.RELAXED, 0, 3)
        assert relaxed.action == "downgrade"
        assert relaxed.level is ServiceLevel.BEST_EFFORT
        assert relaxed.requested is ServiceLevel.RELAXED
        immediate = controller.decide("t", ServiceLevel.IMMEDIATE, 0, 99)
        assert immediate.action == "admit"
        assert immediate.level is ServiceLevel.IMMEDIATE

    def test_over_budget_tenants_downgrade_first(self):
        class FakeSpend:
            enabled = True

            def over_budget(self):
                return ["acme"]

        controller = AdmissionController(
            AdmissionPolicy(downgrade_queue_depth=4, over_budget_fraction=0.25),
            spend=FakeSpend(),
        )
        # Depth 1 is under the general threshold (4) but at acme's
        # reduced threshold (max(1, 4*0.25) = 1).
        acme = controller.decide("acme", ServiceLevel.RELAXED, 0, 1)
        other = controller.decide("other", ServiceLevel.RELAXED, 0, 1)
        assert acme.action == "downgrade" and acme.reason == "over_budget"
        assert other.action == "admit"


class TestSessionShards:
    def test_shard_of_is_deterministic(self):
        assert shard_of("tenant-7", 8) == shard_of("tenant-7", 8)
        assert 0 <= shard_of("anyone", 5) < 5
        with pytest.raises(ValueError):
            shard_of("x", 0)

    def test_same_tenant_same_shard(self):
        class FakeServer:
            def submit(self, *a, **k):
                raise AssertionError("not driven in this test")

        fleet = SessionFleet(sim=None, server=FakeServer(), num_shards=4)
        one = fleet.add(
            SessionSpec("s1", "acme", ServiceLevel.RELAXED, (0.0,), "SELECT 1")
        )
        two = fleet.add(
            SessionSpec("s2", "acme", ServiceLevel.RELAXED, (1.0,), "SELECT 1")
        )
        assert one is two
        assert fleet.num_sessions == 2
        assert one.tenants == ["acme"]

    def test_fleet_drives_sessions_and_counts_rejections(self):
        from repro.sim import Simulator

        class StubServer:
            def __init__(self):
                self.calls = []

            def submit(self, sql, level, result_limit=None, tenant=None,
                       on_finish=None):
                self.calls.append((sql, level, tenant))
                if tenant == "blocked":
                    raise QueryRejectedError("quota")
                record = ServerQuery(
                    query_id=f"q{len(self.calls)}",
                    sql=sql,
                    level=level,
                    submitted_at=0.0,
                    tenant=tenant,
                    requested_level=level,
                )
                return record

        sim = Simulator(seed=1)
        server = StubServer()
        fleet = SessionFleet(sim, server, num_shards=2)
        fleet.add(SessionSpec("s1", "ok", ServiceLevel.RELAXED, (0.0, 1.0), "SELECT 1"))
        fleet.add(SessionSpec("s2", "blocked", ServiceLevel.RELAXED, (0.5,), "SELECT 1"))
        scheduled = fleet.start()
        assert scheduled == 3
        sim.run_until(10)
        totals = fleet.totals()
        assert totals == {"submitted": 2, "rejected": 1, "downgraded": 0}
        assert len(server.calls) == 3
        with pytest.raises(RuntimeError):
            fleet.add(SessionSpec("s3", "late", ServiceLevel.RELAXED, (), "SELECT 1"))


def _observed_env(server_kwargs=None, budgets=None):
    from repro.core import QueryServer
    from repro.obs import Instrumentation
    from repro.sim import Simulator
    from repro.storage.catalog import Catalog
    from repro.storage.object_store import ObjectStore
    from repro.turbo import Coordinator, TurboConfig
    from repro.workloads import TpchGenerator, load_dataset

    sim = Simulator(seed=11)
    store = ObjectStore()
    catalog = Catalog()
    load_dataset(store, catalog, "tpch", TpchGenerator(scale=0.05).tables())
    config = TurboConfig.fast()
    obs = Instrumentation.create(clock=lambda: sim.now, budgets=budgets)
    coordinator = Coordinator(sim, config, catalog, store, "tpch", obs=obs)
    server = QueryServer(
        sim, coordinator, config, **(server_kwargs or {})
    )
    return sim, server


class TestServerIntegration:
    def test_queue_views_are_derived_not_lists(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        assert not hasattr(server, "_relaxed_queue")
        assert not hasattr(server, "_best_effort_queue")
        for _ in range(12):
            server.submit(HEAVY, ServiceLevel.RELAXED)
        held = server.submit(HEAVY, ServiceLevel.RELAXED)
        assert held.dispatched_at is None
        assert server.queued_relaxed >= 1
        assert server.held_queries(ServiceLevel.RELAXED)[0] is not None
        snapshot = server.scheduler_snapshot()
        assert snapshot["queue_depths"]["relaxed"] == server.queued_relaxed
        assert snapshot["admission"]["admitted"] == 13

    def test_immediate_never_queues_behind_backlog(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        for _ in range(20):
            server.submit(HEAVY, ServiceLevel.RELAXED)
        assert server.queued_relaxed > 0  # saturated backlog
        probe = server.submit(HEAVY, ServiceLevel.IMMEDIATE)
        assert probe.dispatched_at == sim.now

    def test_two_tenant_backlog_drains_fairly(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        for i in range(10):
            server.submit(HEAVY, ServiceLevel.RELAXED, tenant="a")
        for i in range(10):
            server.submit(HEAVY, ServiceLevel.RELAXED, tenant="b")
        sim.run_until(3600)
        snapshot = server.scheduler_snapshot()
        dispatched = snapshot["dispatched_by_tenant"]
        if dispatched:  # only hold-queue dispatches count
            assert snapshot["fairness"]["jain_dispatched"] >= 0.9

    def test_quota_rejection_is_clean(self):
        from repro.obs.reconcile import reconcile_server

        sim, server = _observed_env(
            {"admission": AdmissionPolicy(tenant_quota=2)}
        )
        first = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        second = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        with pytest.raises(QueryRejectedError):
            server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        # Another tenant is unaffected by acme's quota.
        other = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="zen")
        sim.run_until(3600)
        assert first.status is QueryStatus.FINISHED
        assert second.status is QueryStatus.FINISHED
        assert other.status is QueryStatus.FINISHED
        # The rejected query left no record, billed nothing, reconciles.
        assert len(server.queries) == 3
        report = reconcile_server(server)
        assert report.ok, report.render()
        rejected = server.scheduler_snapshot()["admission"]["rejected"]
        assert rejected == {"tenant_quota": 1}
        metric = server.obs.metrics.get("pixels_admission_rejections_total")
        assert metric.value(reason="tenant_quota") == 1

    def test_quota_releases_on_completion(self):
        sim, server = _observed_env(
            {"admission": AdmissionPolicy(tenant_quota=1)}
        )
        first = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        sim.run_until(3600)
        assert first.status is QueryStatus.FINISHED
        # The finished query released its quota slot.
        second = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        assert second is not None

    def test_downgraded_query_bills_at_best_effort_rate(self):
        from repro.obs.reconcile import reconcile_server

        sim, server = _observed_env(
            {"admission": AdmissionPolicy(downgrade_queue_depth=1)}
        )
        reference = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="bg")
        backlog = []
        for _ in range(14):
            backlog.append(
                server.submit(HEAVY, ServiceLevel.RELAXED, tenant="bg")
            )
        assert server.queued_relaxed >= 1
        victim = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        assert victim.downgraded
        assert victim.level is ServiceLevel.BEST_EFFORT
        assert victim.requested_level is ServiceLevel.RELAXED
        assert victim.admission.reason == "queue_pressure"
        sim.run_until(7200)
        assert victim.status is QueryStatus.FINISHED
        assert reference.status is QueryStatus.FINISHED
        # Identical scan billed at the best-effort rate: half of relaxed.
        assert victim.price == pytest.approx(reference.price * 0.5)
        report = reconcile_server(server)
        assert report.ok, report.render()
        downgraded = server.scheduler_snapshot()["admission"]["downgraded"]
        assert downgraded["queue_pressure"] >= 1
        metric = server.obs.metrics.get("pixels_admission_downgrades_total")
        assert metric.value(reason="queue_pressure") == downgraded["queue_pressure"]

    def test_over_budget_tenant_downgrades_first(self):
        sim, server = _observed_env(
            {"admission": AdmissionPolicy(
                downgrade_queue_depth=12, over_budget_fraction=0.125
            )},
            budgets={"acme": 1e-9},
        )
        warmup = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        sim.run_until(3600)
        assert warmup.status is QueryStatus.FINISHED
        assert "acme" in server.obs.spend.over_budget()
        for _ in range(13):
            server.submit(HEAVY, ServiceLevel.RELAXED, tenant="bg")
        # Backlog sits between acme's reduced threshold (1) and the
        # general threshold (12).
        assert 1 <= server.queued_relaxed < 12
        over = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        under = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="bg")
        assert over.downgraded and over.admission.reason == "over_budget"
        assert not under.downgraded

    def test_scheduling_decisions_reach_journal_and_spans(self):
        sim, server = _observed_env(
            {"admission": AdmissionPolicy(downgrade_queue_depth=1)}
        )
        for _ in range(15):
            server.submit(HEAVY, ServiceLevel.RELAXED, tenant="bg")
        victim = server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        assert victim.downgraded
        journal = server.obs.journal
        records = [
            r for r in journal.records() if r["query_id"] == victim.query_id
        ]
        kinds = [r["event"] for r in records]
        assert "downgrade" in kinds
        queue_records = [r for r in records if r["event"] == "queue"]
        assert queue_records and "share" in queue_records[0]
        assert "finish_tag" in queue_records[0]

    def test_tenant_queue_depth_gauge(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        for _ in range(13):
            server.submit(HEAVY, ServiceLevel.RELAXED, tenant="acme")
        held_before = server.queued_relaxed
        assert held_before >= 1
        registry = server.obs.metrics
        registry.collect()
        gauge = registry.get("pixels_scheduler_queue_depth")
        if gauge is not None and hasattr(gauge, "value"):
            assert gauge.value(tenant="acme", level="relaxed") == held_before
            sim.run_until(3600)
            registry.collect()
            # Drained tenants read back as zero, not a stale depth.
            assert gauge.value(tenant="acme", level="relaxed") == 0
