"""Tests for the vectorized pipeline executor.

Covers the properties the batch-at-a-time rewrite has to guarantee:

* LIMIT early-exit actually stops row-group fetches (strictly fewer
  storage GETs and billed bytes than the full scan);
* results are bit-identical for any batch size, including under the
  Turbo CF split with the incremental (streamed) coordinator merge;
* streaming pipelines keep peak materialized bytes bounded by the batch
  size rather than the table size;
* EXPLAIN ANALYZE output is byte-reproducible (virtual, deterministic
  operator timing);
* the TopN fusion produces exactly the rows of Sort + Limit.
"""

import pytest

from repro.engine.executor import QueryExecutor
from repro.engine.optimizer import Optimizer
from repro.engine.plan import TopN, walk_plan
from repro.engine.planner import Planner
from repro.engine.source import InMemorySource, ObjectStoreSource
from repro.obs import render_analyzed_plan
from repro.storage.catalog import Catalog, ColumnMeta
from repro.storage.object_store import ObjectStore
from repro.storage.table import TableData, TableWriter
from repro.storage.types import DataType
from repro.turbo.plan_split import split_plan
from tests.conftest import (
    CUSTOMER_ROWS,
    CUSTOMER_SCHEMA,
    ORDERS_ROWS,
    ORDERS_SCHEMA,
    run_query,
)

BIG_SCHEMA = [
    ("k", DataType.BIGINT),
    ("v", DataType.DOUBLE),
    ("s", DataType.VARCHAR),
]

BIG_ROWS = [(i, float(i % 10), f"row-{i % 5}") for i in range(64)]


@pytest.fixture
def big_store():
    """64 rows spread over 4 files x 4 row groups each, so early exit has
    plenty of fetches to skip."""
    store = ObjectStore()
    store.create_bucket("warehouse")
    catalog = Catalog()
    catalog.create_schema("big")
    catalog.create_table(
        "big",
        "t",
        [
            ColumnMeta("k", DataType.BIGINT),
            ColumnMeta("v", DataType.DOUBLE),
            ColumnMeta("s", DataType.VARCHAR),
        ],
        bucket="warehouse",
        prefix="big/t",
    )
    TableWriter(
        store, "warehouse", "big/t", rows_per_file=16, rows_per_group=4
    ).write(TableData.from_rows(BIG_SCHEMA, BIG_ROWS))
    return store, catalog


def big_engine(big_store, batch_size=4096):
    store, catalog = big_store
    return (
        Planner(catalog, "big"),
        Optimizer(),
        QueryExecutor(ObjectStoreSource(store), batch_size=batch_size),
    )


class TestLimitEarlyExit:
    def test_limit_issues_fewer_gets_than_full_scan(self, big_store):
        full = run_query(big_engine(big_store), "SELECT k FROM t")
        limited = run_query(big_engine(big_store), "SELECT k FROM t LIMIT 3")
        assert limited.rows() == full.rows()[:3]
        # The acceptance criterion: strictly fewer storage GETs.
        assert limited.stats.get_requests < full.stats.get_requests
        assert limited.stats.bytes_scanned < full.stats.bytes_scanned
        assert limited.stats.rows_scanned < full.stats.rows_scanned

    def test_limit_stops_after_first_row_group(self, big_store):
        # LIMIT 3 fits in the first 4-row group: exactly one file's footer
        # and one group's single projected column chunk are fetched.
        limited = run_query(big_engine(big_store), "SELECT k FROM t LIMIT 3")
        assert limited.stats.rows_scanned == 4
        # Footer locate + footer body + one column chunk — nothing else.
        assert limited.stats.get_requests == 3

    def test_limit_with_offset_fetches_only_what_it_needs(self, big_store):
        full = run_query(big_engine(big_store), "SELECT k FROM t")
        limited = run_query(
            big_engine(big_store), "SELECT k FROM t LIMIT 4 OFFSET 6"
        )
        assert limited.rows() == full.rows()[6:10]
        # Rows 6..9 live in groups 2 and 3 of file 0: the scan must stop
        # inside the first file.
        assert limited.stats.rows_scanned == 12
        assert limited.stats.get_requests < full.stats.get_requests

    def test_early_exit_combines_with_zone_map_skipping(self, big_store):
        limited = run_query(
            big_engine(big_store),
            "SELECT k FROM t WHERE k >= 20 LIMIT 2",
        )
        assert limited.rows() == [(20,), (21,)]
        # Zone maps prune groups below k=20 (files are range-partitioned
        # by construction), and the limit stops the scan right after the
        # first surviving group.
        assert limited.stats.row_groups_skipped > 0
        full = run_query(big_engine(big_store), "SELECT k FROM t WHERE k >= 20")
        assert limited.stats.get_requests < full.stats.get_requests

    def test_full_drain_matches_whole_scan_accounting(self, big_store):
        """Summing granule deltas reproduces the one-shot scan's totals."""
        store, catalog = big_store
        streamed = run_query(big_engine(big_store), "SELECT k, v, s FROM t")
        whole = QueryExecutor(ObjectStoreSource(store)).execute(
            Optimizer().optimize(
                Planner(catalog, "big").plan_sql("SELECT k, v, s FROM t")
            )
        )
        assert streamed.stats.bytes_scanned == whole.stats.bytes_scanned
        assert streamed.stats.get_requests == whole.stats.get_requests
        assert streamed.rows() == whole.rows()


QUERIES = [
    "SELECT o_orderkey, o_totalprice FROM orders",
    "SELECT o_custkey, count(*) AS n, sum(o_totalprice) AS t FROM orders "
    "GROUP BY o_custkey ORDER BY o_custkey",
    "SELECT c_name, sum(o_totalprice) AS t FROM customer c "
    "JOIN orders o ON c.c_custkey = o.o_custkey GROUP BY c_name ORDER BY t DESC",
    "SELECT o_orderkey FROM orders WHERE o_totalprice > 150 ORDER BY o_orderkey",
    "SELECT DISTINCT o_orderstatus FROM orders ORDER BY 1",
    "SELECT o_orderkey FROM orders ORDER BY o_totalprice DESC LIMIT 3",
    "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 2 OFFSET 3",
    "SELECT o_custkey FROM orders UNION ALL SELECT c_custkey FROM customer",
]


class TestBatchSizeInvariance:
    """Results must be bit-identical for any batch size >= 1."""

    @pytest.mark.parametrize("sql", QUERIES)
    def test_in_memory_engine(self, mini_catalog, mini_tables, sql):
        results = []
        for batch_size in (1, 7, 4096):
            engine = (
                Planner(mini_catalog, "mini"),
                Optimizer(),
                QueryExecutor(InMemorySource(mini_tables), batch_size=batch_size),
            )
            results.append(run_query(engine, sql))
        assert results[0].rows() == results[1].rows() == results[2].rows()
        assert (
            results[0].column_names
            == results[1].column_names
            == results[2].column_names
        )

    @pytest.mark.parametrize("sql", QUERIES)
    def test_object_store_engine(self, mini_object_store, sql):
        store, catalog = mini_object_store
        results = []
        for batch_size in (1, 7, 4096):
            engine = (
                Planner(catalog, "mini"),
                Optimizer(),
                QueryExecutor(ObjectStoreSource(store), batch_size=batch_size),
            )
            results.append(run_query(engine, sql))
        assert results[0].rows() == results[1].rows() == results[2].rows()

    def test_rejects_nonpositive_batch_size(self, mini_tables):
        with pytest.raises(ValueError):
            QueryExecutor(InMemorySource(mini_tables), batch_size=0)


class TestStreamingMemory:
    def test_streaming_pipeline_peak_is_batch_bounded(self, big_store):
        store, catalog = big_store
        executor = QueryExecutor(ObjectStoreSource(store), batch_size=8)
        plan = Optimizer().optimize(
            Planner(catalog, "big").plan_sql("SELECT k, v FROM t WHERE v >= 0.0")
        )
        result = executor.execute(plan, analyze=True)
        assert result.num_rows == 64
        full_bytes = 64 * 16  # two 8-byte columns
        batch_bytes = 8 * 16

        def walk(profile):
            yield profile
            for child in profile.children:
                yield from walk(child)

        for profile in walk(result.profile):
            assert 0 < profile.peak_bytes <= batch_bytes
            assert profile.peak_bytes < full_bytes
            assert profile.batches >= 64 // 8

    def test_blocking_operator_reports_materialized_peak(self, big_store):
        store, catalog = big_store
        executor = QueryExecutor(ObjectStoreSource(store), batch_size=8)
        plan = Optimizer().optimize(
            Planner(catalog, "big").plan_sql("SELECT k FROM t ORDER BY k DESC")
        )
        result = executor.execute(plan, analyze=True)
        # The sort materializes all 64 keys; its peak reflects that.
        sort_profile = result.profile
        while sort_profile.name != "Sort":
            sort_profile = sort_profile.children[0]
        assert sort_profile.peak_bytes >= 64 * 8


class TestExplainAnalyzeDeterminism:
    def test_rendered_profile_is_byte_reproducible(self, big_store):
        store, catalog = big_store
        texts = []
        for _ in range(2):
            executor = QueryExecutor(ObjectStoreSource(store))
            plan = Optimizer().optimize(
                Planner(catalog, "big").plan_sql(
                    "SELECT s, count(*) AS n FROM t WHERE k < 40 "
                    "GROUP BY s ORDER BY n DESC LIMIT 2"
                )
            )
            result = executor.execute(plan, analyze=True)
            texts.append(render_analyzed_plan(plan, result.profile, result.stats))
        assert texts[0] == texts[1]
        assert "time=" in texts[0]
        assert "batches=" in texts[0]

    def test_annotation_fields_present(self, mini_store_engine):
        planner, optimizer, executor = mini_store_engine
        plan = optimizer.optimize(
            planner.plan_sql("SELECT o_orderkey FROM orders WHERE o_orderkey > 2")
        )
        result = executor.execute(plan, analyze=True)
        text = render_analyzed_plan(plan, result.profile, result.stats)
        first_line = text.split("\n")[0]
        assert "[rows=" in first_line
        assert "rows_in=" in first_line
        assert "peak=" in first_line


class TestTopNFusion:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT o_orderkey FROM orders ORDER BY o_custkey LIMIT 3",
            "SELECT o_orderkey FROM orders ORDER BY o_totalprice DESC LIMIT 2",
            # NULL o_totalprice exercises NULLS LAST at the boundary.
            "SELECT o_orderkey FROM orders ORDER BY o_totalprice LIMIT 6",
            "SELECT o_orderkey FROM orders "
            "ORDER BY o_orderstatus, o_orderkey DESC LIMIT 4",
            "SELECT o_orderkey FROM orders ORDER BY o_custkey LIMIT 2 OFFSET 2",
            # Ties on o_orderdate: stability must match the full sort.
            "SELECT o_orderkey FROM orders ORDER BY o_orderdate LIMIT 3",
        ],
    )
    def test_fused_matches_unfused(self, mini_engine, sql):
        planner, optimizer, executor = mini_engine
        unfused = executor.execute(planner.plan_sql(sql))  # Sort + Limit
        fused_plan = optimizer.optimize(planner.plan_sql(sql))
        assert any(isinstance(n, TopN) for n in walk_plan(fused_plan))
        assert executor.execute(fused_plan).rows() == unfused.rows()

    def test_limit_larger_than_input_keeps_all_rows(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 100",
        )
        assert [r[0] for r in result.rows()] == [1, 2, 3, 4, 5, 6]

    def test_unlimited_sort_not_fused(self, mini_engine):
        planner, optimizer, _ = mini_engine
        plan = optimizer.optimize(
            planner.plan_sql("SELECT o_orderkey FROM orders ORDER BY o_orderkey")
        )
        assert not any(isinstance(n, TopN) for n in walk_plan(plan))


class TestIncrementalCoordinatorMerge:
    """The CF split executed with a streamed (incremental) merge must be
    indistinguishable from direct execution, at any batch size."""

    SPLIT_QUERIES = [
        "SELECT count(*) FROM orders",
        "SELECT o_orderstatus, count(*) AS n FROM orders "
        "GROUP BY o_orderstatus ORDER BY o_orderstatus",
        "SELECT c_name, sum(o_totalprice) AS t FROM customer c "
        "JOIN orders o ON c.c_custkey = o.o_custkey "
        "GROUP BY c_name ORDER BY t DESC LIMIT 2",
        "SELECT o_orderkey FROM orders WHERE o_totalprice > 150 "
        "ORDER BY o_orderkey",
    ]

    @pytest.mark.parametrize("sql", SPLIT_QUERIES)
    @pytest.mark.parametrize("batch_size", [1, 7, 4096])
    def test_streamed_split_matches_direct(
        self, mini_object_store, sql, batch_size
    ):
        store, catalog = mini_object_store
        engine = (
            Planner(catalog, "mini"),
            Optimizer(),
            QueryExecutor(ObjectStoreSource(store), batch_size=batch_size),
        )
        planner, optimizer, executor = engine
        direct = run_query(engine, sql)
        split = split_plan(optimizer.optimize(planner.plan_sql(sql)))
        sub_exec = executor.execute_stream(split.sub)
        split.attach_stream(sub_exec.batches())
        via_cf = executor.execute(split.top)
        assert via_cf.rows() == direct.rows()
        assert via_cf.column_names == direct.column_names
        # The stream's stats cover the sub-plan work actually performed.
        assert sub_exec.stats.rows_produced == sub_exec.stats.rows_produced
        assert sub_exec.batches_emitted >= 1
        assert sub_exec.stats.bytes_scanned > 0

    def test_coordinator_cf_path_streams_and_matches_vm(self, turbo_env):
        sim, _, _, _, coordinator, _ = turbo_env
        heavy = (
            "SELECT l_returnflag, count(*) AS n FROM lineitem "
            "GROUP BY l_returnflag ORDER BY l_returnflag"
        )
        vm_execution = coordinator.submit(heavy, cf_enabled=False)
        sim.run_until(120)
        blockers = [
            coordinator.submit(heavy, cf_enabled=False) for _ in range(4)
        ]
        cf_execution = coordinator.submit(heavy, cf_enabled=True)
        sim.run_until(400)
        from repro.turbo.coordinator import ExecutionVenue

        assert cf_execution.venue is ExecutionVenue.CF
        assert cf_execution.result.rows() == vm_execution.result.rows()
        assert cf_execution.result.stats.bytes_scanned > 0
        assert all(b.succeeded for b in blockers)

    def test_abandoned_stream_closes_cleanly(self, mini_object_store):
        store, catalog = mini_object_store
        executor = QueryExecutor(ObjectStoreSource(store), batch_size=1)
        plan = Optimizer().optimize(
            Planner(catalog, "mini").plan_sql("SELECT o_orderkey FROM orders")
        )
        streaming = executor.execute_stream(plan)
        gen = streaming.batches()
        first = next(gen)
        assert first.num_rows == 1
        gen.close()  # abandon: the pipeline must close without error
        # Only the work done before abandonment is accounted (one row
        # group of two rows, not the whole six-row table).
        assert streaming.stats.rows_scanned == 2
        assert streaming.stats.rows_produced == 1
