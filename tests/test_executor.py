"""End-to-end engine tests: SQL in, rows out, over the mini dataset.

Every query here runs both in-memory and (in TestAgainstObjectStore)
through the columnar format + object store, checking the two paths agree.
"""

import pytest

from tests.conftest import run_query


class TestProjectionAndFilter:
    def test_select_star(self, mini_engine):
        result = run_query(mini_engine, "SELECT * FROM customer ORDER BY c_custkey")
        assert result.column_names == ["c_custkey", "c_name", "c_nationkey"]
        assert result.num_rows == 3

    def test_projection(self, mini_engine):
        result = run_query(
            mini_engine, "SELECT c_name FROM customer ORDER BY c_name"
        )
        assert result.rows() == [("alice",), ("bob",), ("carol",)]

    def test_where_comparison(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_orderkey FROM orders WHERE o_totalprice > 250 ORDER BY 1",
        )
        assert result.rows() == [(3,), (5,), (6,)]

    def test_where_null_excluded(self, mini_engine):
        result = run_query(
            mini_engine, "SELECT count(*) FROM orders WHERE o_totalprice < 1e9"
        )
        assert result.rows() == [(5,)]  # NULL price row excluded

    def test_is_null(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_orderkey FROM orders WHERE o_totalprice IS NULL",
        )
        assert result.rows() == [(4,)]

    def test_between_dates(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT count(*) FROM orders WHERE o_orderdate "
            "BETWEEN DATE '1995-01-01' AND DATE '1995-12-31'",
        )
        assert result.rows() == [(4,)]

    def test_in_and_like(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT count(*) FROM orders WHERE o_orderstatus IN ('O', 'P')",
        )
        assert result.rows() == [(4,)]
        result = run_query(
            mini_engine,
            "SELECT c_name FROM customer WHERE c_name LIKE '%o%' ORDER BY c_name",
        )
        assert result.rows() == [("bob",), ("carol",)]

    def test_computed_column(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_orderkey, o_totalprice * 1.1 AS taxed FROM orders "
            "WHERE o_orderkey = 1",
        )
        assert result.column_names == ["o_orderkey", "taxed"]
        assert result.rows()[0][1] == pytest.approx(110.0)


class TestJoins:
    def test_inner_join(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT c_name, o_orderkey FROM customer c "
            "JOIN orders o ON c.c_custkey = o.o_custkey "
            "ORDER BY o_orderkey",
        )
        assert result.rows() == [
            ("alice", 1), ("alice", 2), ("bob", 3), ("bob", 4), ("carol", 5),
        ]

    def test_comma_join_with_where(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT count(*) FROM customer c, orders o "
            "WHERE c.c_custkey = o.o_custkey",
        )
        assert result.rows() == [(5,)]

    def test_left_join_preserves_unmatched(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_orderkey, c_name FROM orders o "
            "LEFT JOIN customer c ON o.o_custkey = c.c_custkey "
            "ORDER BY o_orderkey",
        )
        assert result.rows()[-1] == (6, None)

    def test_join_with_non_equi_residual(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT count(*) FROM customer c JOIN orders o "
            "ON c.c_custkey = o.o_custkey AND o.o_totalprice > 150",
        )
        assert result.rows() == [(3,)]

    def test_three_way_join(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT count(*) FROM orders o "
            "JOIN customer c ON o.o_custkey = c.c_custkey "
            "JOIN customer c2 ON c.c_custkey = c2.c_custkey",
        )
        assert result.rows() == [(5,)]

    def test_cross_join(self, mini_engine):
        result = run_query(
            mini_engine, "SELECT count(*) FROM customer a, customer b"
        )
        assert result.rows() == [(9,)]

    def test_null_keys_never_match(self, mini_engine):
        # o_totalprice has a NULL; join on it against itself.
        result = run_query(
            mini_engine,
            "SELECT count(*) FROM orders a JOIN orders b "
            "ON a.o_totalprice = b.o_totalprice",
        )
        assert result.rows() == [(5,)]  # 5 non-null prices match themselves


class TestAggregation:
    def test_global_aggregates(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT count(*), sum(o_totalprice), avg(o_totalprice), "
            "min(o_totalprice), max(o_totalprice) FROM orders",
        )
        row = result.rows()[0]
        assert row[0] == 6
        assert row[1] == pytest.approx(1700.0)
        assert row[2] == pytest.approx(340.0)  # NULL excluded from avg
        assert row[3] == 100.0
        assert row[4] == 600.0

    def test_count_column_skips_nulls(self, mini_engine):
        result = run_query(mini_engine, "SELECT count(o_totalprice) FROM orders")
        assert result.rows() == [(5,)]

    def test_group_by(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_orderstatus, count(*) AS n FROM orders "
            "GROUP BY o_orderstatus ORDER BY o_orderstatus",
        )
        assert result.rows() == [("F", 2), ("O", 3), ("P", 1)]

    def test_group_by_with_having(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_orderstatus, count(*) AS n FROM orders "
            "GROUP BY o_orderstatus HAVING count(*) > 1 ORDER BY n DESC",
        )
        assert result.rows() == [("O", 3), ("F", 2)]

    def test_count_distinct(self, mini_engine):
        result = run_query(
            mini_engine, "SELECT count(DISTINCT o_custkey) FROM orders"
        )
        assert result.rows() == [(4,)]

    def test_group_by_expression(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT year(o_orderdate) AS y, count(*) FROM orders "
            "GROUP BY year(o_orderdate) ORDER BY y",
        )
        assert result.rows() == [(1995, 4), (1996, 1), (1997, 1)]

    def test_group_by_null_key_groups_together(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_totalprice, count(*) FROM orders "
            "GROUP BY o_totalprice ORDER BY o_totalprice",
        )
        # 5 distinct prices + one NULL group, NULLs last.
        assert result.num_rows == 6
        assert result.rows()[-1] == (None, 1)

    def test_aggregate_join(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT c_name, sum(o_totalprice) AS total FROM customer c "
            "JOIN orders o ON c.c_custkey = o.o_custkey "
            "GROUP BY c_name ORDER BY total DESC",
        )
        assert result.rows() == [
            ("carol", 500.0), ("alice", 300.0), ("bob", 300.0),
        ]

    def test_empty_group_result(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_orderstatus, count(*) FROM orders WHERE o_orderkey > 99 "
            "GROUP BY o_orderstatus",
        )
        assert result.num_rows == 0

    def test_order_by_aggregate_not_in_select(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_orderstatus FROM orders GROUP BY o_orderstatus "
            "ORDER BY count(*) DESC",
        )
        assert result.rows() == [("O",), ("F",), ("P",)]
        assert result.column_names == ["o_orderstatus"]


class TestSortDistinctLimit:
    def test_order_by_desc_nulls_last(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_totalprice FROM orders ORDER BY o_totalprice DESC",
        )
        values = [row[0] for row in result.rows()]
        assert values == [600.0, 500.0, 300.0, 200.0, 100.0, None]

    def test_order_by_asc_nulls_last(self, mini_engine):
        result = run_query(
            mini_engine, "SELECT o_totalprice FROM orders ORDER BY o_totalprice"
        )
        assert [row[0] for row in result.rows()][-1] is None

    def test_multi_key_sort(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_orderstatus, o_orderkey FROM orders "
            "ORDER BY o_orderstatus, o_orderkey DESC",
        )
        assert result.rows() == [
            ("F", 4), ("F", 2), ("O", 5), ("O", 3), ("O", 1), ("P", 6),
        ]

    def test_order_by_alias(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_totalprice * 2 AS doubled FROM orders "
            "WHERE o_totalprice IS NOT NULL ORDER BY doubled LIMIT 1",
        )
        assert result.rows() == [(200.0,)]

    def test_order_by_position(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_orderkey, o_totalprice FROM orders ORDER BY 2 DESC LIMIT 1",
        )
        assert result.rows() == [(6, 600.0)]

    def test_order_by_hidden_expression(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_orderkey FROM orders ORDER BY o_custkey DESC, o_orderkey",
        )
        assert result.column_names == ["o_orderkey"]
        assert result.rows()[0] == (6,)

    def test_distinct(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT DISTINCT o_orderstatus FROM orders ORDER BY o_orderstatus",
        )
        assert result.rows() == [("F",), ("O",), ("P",)]

    def test_limit_offset(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 2 OFFSET 3",
        )
        assert result.rows() == [(4,), (5,)]

    def test_limit_beyond_rows(self, mini_engine):
        result = run_query(
            mini_engine, "SELECT o_orderkey FROM orders LIMIT 100"
        )
        assert result.num_rows == 6

    def test_stable_sort_preserves_input_order(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_orderkey FROM orders ORDER BY o_orderdate",
        )
        # Four orders share 1995-01-01; stability keeps key order 1,3,5,6.
        assert [row[0] for row in result.rows()][:4] == [1, 3, 5, 6]


class TestAgainstObjectStore:
    QUERIES = [
        "SELECT count(*) FROM orders",
        "SELECT o_orderkey FROM orders WHERE o_totalprice > 250 ORDER BY 1",
        "SELECT c_name, sum(o_totalprice) AS t FROM customer c "
        "JOIN orders o ON c.c_custkey = o.o_custkey GROUP BY c_name ORDER BY t",
        "SELECT o_orderstatus, count(*) FROM orders GROUP BY o_orderstatus "
        "ORDER BY o_orderstatus",
        "SELECT DISTINCT o_custkey FROM orders ORDER BY o_custkey",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_store_matches_memory(self, mini_engine, mini_store_engine, sql):
        assert run_query(mini_store_engine, sql).rows() == run_query(
            mini_engine, sql
        ).rows()

    def test_bytes_scanned_positive_and_projected(self, mini_store_engine):
        wide = run_query(mini_store_engine, "SELECT * FROM orders")
        narrow = run_query(mini_store_engine, "SELECT o_orderkey FROM orders")
        assert narrow.stats.bytes_scanned > 0
        assert narrow.stats.bytes_scanned < wide.stats.bytes_scanned

    def test_zone_map_pruning_reduces_bytes(self, mini_store_engine):
        selective = run_query(
            mini_store_engine,
            "SELECT o_orderkey FROM orders WHERE o_orderkey >= 6",
        )
        full = run_query(mini_store_engine, "SELECT o_orderkey FROM orders")
        assert selective.rows() == [(6,)]
        assert selective.stats.bytes_scanned < full.stats.bytes_scanned


class TestQueryStatsMerge:
    def test_merge_sums_every_counter(self):
        from repro.engine.executor import QueryStats

        total = QueryStats()
        fragments = [
            QueryStats(
                bytes_scanned=100 * i,
                scan_latency_s=0.1 * i,
                rows_scanned=10 * i,
                rows_produced=i,
                operators=i,
            )
            for i in range(1, 4)
        ]
        for fragment in fragments:
            total.merge(fragment)
        assert total.bytes_scanned == 600
        assert total.scan_latency_s == pytest.approx(0.6)
        assert total.rows_scanned == 60
        # Sibling fragments produce disjoint output slices: rows sum,
        # they are not overwritten by the last fragment merged.
        assert total.rows_produced == 6
        assert total.operators == 6

    def test_merge_is_order_independent(self):
        from repro.engine.executor import QueryStats

        a = QueryStats(rows_produced=5, bytes_scanned=1)
        b = QueryStats(rows_produced=7, bytes_scanned=2)
        forward = QueryStats()
        forward.merge(a)
        forward.merge(b)
        backward = QueryStats()
        backward.merge(b)
        backward.merge(a)
        assert forward == backward
