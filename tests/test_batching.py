"""Tests for shared-scan batch optimization (paper §5's opportunity)."""

import pytest

from repro.core import QueryServer, QueryStatus, ServiceLevel
from repro.engine.optimizer import Optimizer
from repro.engine.planner import Planner
from repro.engine.source import ObjectStoreSource
from repro.engine.executor import QueryExecutor
from repro.sim import Simulator
from repro.turbo import Coordinator, TurboConfig
from repro.turbo.batching import execute_shared_batch, union_columns

# Overlapping column sets (all touch l_extendedprice) — the shape of a
# reporting batch, where scan sharing actually saves bytes.
SQLS = [
    "SELECT l_returnflag, sum(l_extendedprice) FROM lineitem "
    "GROUP BY l_returnflag",
    "SELECT sum(l_extendedprice) FROM lineitem WHERE l_discount > 0.05",
    "SELECT l_shipmode, sum(l_extendedprice) FROM lineitem "
    "GROUP BY l_shipmode",
    "SELECT count(*) FROM orders WHERE o_totalprice > 1000",
]


@pytest.fixture
def planned(mini_object_store):
    store, catalog = mini_object_store
    # The mini dataset has no lineitem; use TPC-H instead.
    from repro.workloads import TpchGenerator, load_dataset
    from repro.storage.catalog import Catalog
    from repro.storage.object_store import ObjectStore

    store = ObjectStore()
    catalog = Catalog()
    load_dataset(store, catalog, "tpch", TpchGenerator(scale=0.05).tables())
    planner = Planner(catalog, "tpch")
    optimizer = Optimizer()
    plans = [optimizer.optimize(planner.plan_sql(sql)) for sql in SQLS]
    return store, catalog, plans


class TestSharedScanExecution:
    def test_results_identical_to_individual_execution(self, planned):
        store, catalog, plans = planned
        source = ObjectStoreSource(store)
        individual = [QueryExecutor(source).execute(plan).rows() for plan in plans]
        # Re-plan (executors may cache nothing, but plans hold no state).
        planner = Planner(catalog, "tpch")
        optimizer = Optimizer()
        fresh = [optimizer.optimize(planner.plan_sql(sql)) for sql in SQLS]
        batch = execute_shared_batch(fresh, store, source)
        for got, expected in zip(batch.results, individual):
            assert got.rows() == expected

    def test_shared_tables_fetched_once(self, planned):
        store, catalog, plans = planned
        before = store.metrics.snapshot()
        batch = execute_shared_batch(plans, store, ObjectStoreSource(store))
        delta = store.metrics.delta(before)
        # lineitem shared by three queries: one fetch; orders has a single
        # reader: untouched by sharing, scanned directly.
        assert batch.shared_stats.tables_shared == 1
        assert batch.shared_stats.shared_bytes_scanned > 0
        assert delta.bytes_read < 3 * batch.shared_stats.shared_bytes_scanned

    def test_union_columns(self, planned):
        _, _, plans = planned
        needed = union_columns(plans)
        lineitem = needed[("tpch", "lineitem")]
        assert {
            "l_returnflag", "l_extendedprice", "l_discount", "l_shipmode",
        } <= lineitem

    def test_savings_reported(self, planned):
        store, catalog, plans = planned
        batch = execute_shared_batch(plans, store, ObjectStoreSource(store))
        # Three queries overlap on l_extendedprice: real byte savings.
        assert batch.shared_stats.unshared_bytes_scanned > (
            batch.shared_stats.shared_bytes_scanned
        )
        assert batch.shared_stats.bytes_saved > 0

    def test_single_plan_batch_falls_back(self, planned):
        store, catalog, plans = planned
        batch = execute_shared_batch(plans[:1], store, ObjectStoreSource(store))
        assert batch.shared_stats.tables_shared == 0
        assert batch.results[0].num_rows > 0


class TestCoordinatorBatch:
    def test_batch_occupies_single_slot(self, planned):
        store, catalog, _ = planned
        sim = Simulator()
        config = TurboConfig.fast()
        coordinator = Coordinator(sim, config, catalog, store, "tpch")
        executions = coordinator.submit_shared_batch(SQLS)
        assert coordinator.vm_cluster.running_tasks == 1
        sim.run_until(600)
        assert all(e.succeeded for e in executions)
        rows = executions[0].result.rows()
        assert len(rows) == 3  # three return flags

    def test_bad_member_fails_alone(self, planned):
        store, catalog, _ = planned
        sim = Simulator()
        config = TurboConfig.fast()
        coordinator = Coordinator(sim, config, catalog, store, "tpch")
        executions = coordinator.submit_shared_batch(
            [SQLS[0], "SELECT broken FROM lineitem"]
        )
        sim.run_until(600)
        assert executions[0].succeeded
        assert executions[1].error is not None

    def test_provider_cost_split(self, planned):
        store, catalog, _ = planned
        sim = Simulator()
        config = TurboConfig.fast()
        coordinator = Coordinator(sim, config, catalog, store, "tpch")
        executions = coordinator.submit_shared_batch(SQLS[:3])
        sim.run_until(600)
        costs = {round(e.provider_cost, 12) for e in executions}
        assert len(costs) == 1  # split evenly
        assert costs.pop() > 0


class TestServerBatchMode:
    def _stack(self, batch_best_effort):
        from repro.workloads import TpchGenerator, load_dataset
        from repro.storage.catalog import Catalog
        from repro.storage.object_store import ObjectStore

        sim = Simulator()
        store = ObjectStore()
        catalog = Catalog()
        load_dataset(store, catalog, "tpch", TpchGenerator(scale=0.05).tables())
        config = TurboConfig.fast()
        coordinator = Coordinator(sim, config, catalog, store, "tpch")
        server = QueryServer(
            sim, coordinator, config, batch_best_effort=batch_best_effort
        )
        return sim, coordinator, server

    def _run_backlog(self, batch_best_effort):
        sim, coordinator, server = self._stack(batch_best_effort)
        # Occupy the cluster so best-effort queries queue up...
        blockers = [
            server.submit(SQLS[0], ServiceLevel.RELAXED) for _ in range(3)
        ]
        backlog = [server.submit(sql, ServiceLevel.BEST_EFFORT) for sql in SQLS]
        sim.run_until(1200)
        return coordinator, backlog

    def test_backlog_completes_in_batch_mode(self):
        coordinator, backlog = self._run_backlog(batch_best_effort=True)
        assert all(r.status is QueryStatus.FINISHED for r in backlog)
        assert coordinator.trace.values("batch.bytes_saved")

    def test_batch_mode_reads_fewer_bytes(self):
        unbatched_coord, unbatched = self._run_backlog(batch_best_effort=False)
        batched_coord, batched = self._run_backlog(batch_best_effort=True)
        assert all(r.status is QueryStatus.FINISHED for r in unbatched)
        assert all(r.status is QueryStatus.FINISHED for r in batched)
        # Same answers both ways.
        for a, b in zip(unbatched, batched):
            assert a.result_rows() == b.result_rows()

    def test_batch_mode_off_by_default(self):
        sim, coordinator, server = self._stack(False)
        assert server._batch_best_effort is False
