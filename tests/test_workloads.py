"""Tests for workload generators and arrival processes."""

import numpy as np
import pytest

from repro.storage.catalog import Catalog
from repro.storage.object_store import ObjectStore
from repro.workloads import (
    LOGS_QUERIES,
    LogsGenerator,
    TPCH_QUERIES,
    TpchGenerator,
    bursty_arrivals,
    diurnal_arrivals,
    load_dataset,
    spike_arrivals,
    steady_arrivals,
)


class TestTpchGenerator:
    def test_eight_tables(self):
        tables = TpchGenerator(scale=0.01).tables()
        assert [t.name for t in tables] == [
            "region", "nation", "supplier", "customer",
            "part", "partsupp", "orders", "lineitem",
        ]

    def test_cardinality_ratios(self):
        generator = TpchGenerator(scale=0.1)
        tables = {t.name: t for t in generator.tables()}
        assert tables["region"].data.num_rows == 5
        assert tables["nation"].data.num_rows == 25
        assert tables["orders"].data.num_rows == 10 * tables["customer"].data.num_rows
        lineitems = tables["lineitem"].data.num_rows
        orders = tables["orders"].data.num_rows
        assert orders < lineitems < 8 * orders

    def test_deterministic(self):
        a = TpchGenerator(scale=0.01, seed=5).tables()
        b = TpchGenerator(scale=0.01, seed=5).tables()
        assert a[-1].data.to_rows() == b[-1].data.to_rows()

    def test_seed_changes_data(self):
        a = TpchGenerator(scale=0.01, seed=1).tables()
        b = TpchGenerator(scale=0.01, seed=2).tables()
        assert a[-1].data.to_rows() != b[-1].data.to_rows()

    def test_referential_integrity(self):
        tables = {t.name: t for t in TpchGenerator(scale=0.02).tables()}
        order_keys = set(tables["orders"].data.column("o_orderkey").to_values())
        for key in tables["lineitem"].data.column("l_orderkey").to_values():
            assert key in order_keys
        customer_keys = set(tables["customer"].data.column("c_custkey").to_values())
        for key in tables["orders"].data.column("o_custkey").to_values():
            assert key in customer_keys

    def test_dates_in_tpch_range(self):
        tables = {t.name: t for t in TpchGenerator(scale=0.02).tables()}
        from repro.storage.types import days_to_date

        dates = tables["orders"].data.column("o_orderdate").to_values()
        assert min(days_to_date(d) for d in dates) >= "1992-01-01"
        assert max(days_to_date(d) for d in dates) <= "1998-12-01"

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            TpchGenerator(scale=0)


class TestLogsGenerator:
    def test_row_count_and_columns(self):
        table = LogsGenerator(num_rows=500).table()
        assert table.data.num_rows == 500
        assert "latency_ms" in table.data.column_names

    def test_timestamps_sorted(self):
        values = LogsGenerator(num_rows=300).table().data.column("ts").to_values()
        assert values == sorted(values)

    def test_deterministic(self):
        a = LogsGenerator(num_rows=100, seed=3).table().data.to_rows()
        b = LogsGenerator(num_rows=100, seed=3).table().data.to_rows()
        assert a == b

    def test_invalid_rows(self):
        with pytest.raises(ValueError):
            LogsGenerator(num_rows=0)


class TestQueriesRun:
    """Every shipped query template must execute on its dataset."""

    @pytest.fixture(scope="class")
    def runtimes(self):
        from repro.engine.executor import QueryExecutor
        from repro.engine.optimizer import Optimizer
        from repro.engine.planner import Planner
        from repro.engine.source import ObjectStoreSource

        store = ObjectStore()
        catalog = Catalog()
        load_dataset(store, catalog, "tpch", TpchGenerator(scale=0.02).tables())
        load_dataset(store, catalog, "weblogs", [LogsGenerator(1000).table()])
        executor = QueryExecutor(ObjectStoreSource(store))
        optimizer = Optimizer()

        def runner(schema):
            planner = Planner(catalog, schema)
            return lambda sql: executor.execute(
                optimizer.optimize(planner.plan_sql(sql))
            )

        return runner("tpch"), runner("weblogs")

    @pytest.mark.parametrize("name", sorted(TPCH_QUERIES))
    def test_tpch_query(self, runtimes, name):
        run_tpch, _ = runtimes
        result = run_tpch(TPCH_QUERIES[name])
        assert result.stats.bytes_scanned > 0

    @pytest.mark.parametrize("name", sorted(LOGS_QUERIES))
    def test_logs_query(self, runtimes, name):
        _, run_logs = runtimes
        result = run_logs(LOGS_QUERIES[name])
        assert result.num_rows > 0


class TestLoader:
    def test_statistics_recorded(self):
        store = ObjectStore()
        catalog = Catalog()
        load_dataset(store, catalog, "tpch", TpchGenerator(scale=0.01).tables())
        orders = catalog.table("tpch", "orders")
        assert orders.row_count > 0
        assert orders.size_bytes > 0
        assert orders.bucket == "warehouse"

    def test_foreign_keys_registered(self):
        store = ObjectStore()
        catalog = Catalog()
        load_dataset(store, catalog, "tpch", TpchGenerator(scale=0.01).tables())
        lineitem = catalog.table("tpch", "lineitem")
        refs = {fk.ref_table for fk in lineitem.foreign_keys}
        assert refs == {"orders", "part", "supplier"}


class TestArrivals:
    @pytest.fixture
    def rng(self):
        return np.random.default_rng(1)

    def test_steady_rate(self, rng):
        times = steady_arrivals(rng, duration_s=1000, rate_per_s=0.5)
        assert 400 < len(times) < 600
        assert times == sorted(times)
        assert all(0 <= t < 1000 for t in times)

    def test_steady_zero_rate(self, rng):
        assert steady_arrivals(rng, 100, 0) == []

    def test_bursty_has_dense_windows(self, rng):
        times = bursty_arrivals(
            rng, duration_s=600, base_rate_per_s=0.02,
            burst_rate_per_s=2.0, burst_every_s=200, burst_length_s=20,
        )
        in_burst = [t for t in times if 200 <= t < 220]
        out_of_burst = [t for t in times if 100 <= t < 120]
        assert len(in_burst) > 4 * max(len(out_of_burst), 1)

    def test_spike_concentrated(self, rng):
        times = spike_arrivals(
            rng, duration_s=300, base_rate_per_s=0.01,
            spike_at_s=100, spike_queries=50, spike_spread_s=2.0,
        )
        spike_window = [t for t in times if 100 <= t <= 102]
        assert len(spike_window) >= 50

    def test_diurnal_peak_vs_trough(self, rng):
        times = diurnal_arrivals(
            rng, duration_s=86400, peak_rate_per_s=0.2,
            period_s=86400, trough_fraction=0.05,
        )
        # Peak is mid-period; trough at the edges.
        peak = [t for t in times if 38000 <= t < 48000]
        trough = [t for t in times if t < 10000]
        assert len(peak) > 3 * max(len(trough), 1)
