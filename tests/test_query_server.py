"""Tests for the Query Server: service-level semantics (paper §3.2)."""

import pytest

from repro.core import QueryStatus, ServiceLevel
from repro.errors import InvalidServiceLevelError, NoSuchQueryError, QueryRejectedError
from repro.turbo.coordinator import ExecutionVenue

SIMPLE = "SELECT count(*) FROM orders"
HEAVY = "SELECT l_returnflag, count(*) FROM lineitem GROUP BY l_returnflag"


class TestServiceLevelEnum:
    def test_cf_enablement(self):
        assert ServiceLevel.IMMEDIATE.cf_enabled
        assert not ServiceLevel.RELAXED.cf_enabled
        assert not ServiceLevel.BEST_EFFORT.cf_enabled

    def test_price_fractions(self):
        assert ServiceLevel.IMMEDIATE.price_fraction == 1.0
        assert ServiceLevel.RELAXED.price_fraction == 0.2
        assert ServiceLevel.BEST_EFFORT.price_fraction == 0.1

    @pytest.mark.parametrize(
        "spelling,expected",
        [
            ("immediate", ServiceLevel.IMMEDIATE),
            ("Relaxed", ServiceLevel.RELAXED),
            ("best-of-effort", ServiceLevel.BEST_EFFORT),
            ("BEST EFFORT", ServiceLevel.BEST_EFFORT),
            ("best_effort", ServiceLevel.BEST_EFFORT),
        ],
    )
    def test_parsing(self, spelling, expected):
        assert ServiceLevel.from_string(spelling) is expected

    def test_parsing_unknown(self):
        with pytest.raises(InvalidServiceLevelError):
            ServiceLevel.from_string("platinum")

    def test_distinct_display_colors(self):
        colors = {level.display_color for level in ServiceLevel}
        assert len(colors) == 3

    def test_status_terminality(self):
        assert QueryStatus.FINISHED.is_terminal
        assert QueryStatus.FAILED.is_terminal
        assert not QueryStatus.PENDING.is_terminal
        assert not QueryStatus.RUNNING.is_terminal


class TestImmediateLevel:
    def test_executes_immediately_even_under_load(self, turbo_env):
        sim, _, _, _, coordinator, server = turbo_env
        for _ in range(8):
            server.submit(HEAVY, ServiceLevel.RELAXED)
        record = server.submit(HEAVY, ServiceLevel.IMMEDIATE)
        sim.run_until(0.001)
        assert record.status in (QueryStatus.RUNNING, QueryStatus.FINISHED)
        sim.run_until(300)
        assert record.status is QueryStatus.FINISHED
        assert record.pending_time_s == 0.0

    def test_uses_cf_under_load(self, turbo_env):
        sim, _, _, _, coordinator, server = turbo_env
        for _ in range(8):
            server.submit(HEAVY, ServiceLevel.RELAXED)
        record = server.submit(HEAVY, ServiceLevel.IMMEDIATE)
        sim.run_until(300)
        assert record.execution.venue is ExecutionVenue.CF

    def test_runs_on_vm_when_idle(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        record = server.submit(SIMPLE, ServiceLevel.IMMEDIATE)
        sim.run_until(60)
        assert record.execution.venue is ExecutionVenue.VM


class TestRelaxedLevel:
    def test_never_uses_cf(self, turbo_env):
        sim, _, _, _, coordinator, server = turbo_env
        for _ in range(12):
            server.submit(HEAVY, ServiceLevel.RELAXED)
        sim.run_until(600)
        assert coordinator.cf_service.invocations == []

    def test_immediate_dispatch_when_below_high_watermark(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        record = server.submit(SIMPLE, ServiceLevel.RELAXED)
        assert record.dispatched_at == sim.now
        sim.run_until(60)
        assert record.status is QueryStatus.FINISHED

    def test_held_when_above_high_watermark(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        for _ in range(12):  # push per-worker concurrency over 5
            server.submit(HEAVY, ServiceLevel.RELAXED)
        held = server.submit(HEAVY, ServiceLevel.RELAXED)
        assert held.dispatched_at is None
        assert server.queued_relaxed >= 1

    def test_grace_period_bounds_server_queueing(self, turbo_env):
        sim, _, _, config, _, server = turbo_env
        for _ in range(12):
            server.submit(HEAVY, ServiceLevel.RELAXED)
        held = server.submit(HEAVY, ServiceLevel.RELAXED)
        sim.run_until(config.grace_period_s + config.scheduler_interval_s + 1)
        assert held.dispatched_at is not None
        assert (
            held.dispatched_at - held.submitted_at
            <= config.grace_period_s + config.scheduler_interval_s
        )

    def test_all_relaxed_eventually_finish(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        records = [server.submit(HEAVY, ServiceLevel.RELAXED) for _ in range(15)]
        sim.run_until(900)
        assert all(r.status is QueryStatus.FINISHED for r in records)


class TestBestEffortLevel:
    def test_dispatched_only_below_low_watermark(self, turbo_env):
        sim, _, _, _, coordinator, server = turbo_env
        # Load the cluster just above the low watermark.
        blockers = [server.submit(HEAVY, ServiceLevel.RELAXED) for _ in range(3)]
        best = server.submit(HEAVY, ServiceLevel.BEST_EFFORT)
        assert best.dispatched_at is None
        sim.run_until(600)  # blockers finish; cluster idles
        assert best.status is QueryStatus.FINISHED

    def test_runs_immediately_when_idle(self, turbo_env):
        """§3.2: even a best-of-effort query executes immediately if the
        VM cluster is available."""
        sim, _, _, _, _, server = turbo_env
        record = server.submit(SIMPLE, ServiceLevel.BEST_EFFORT)
        assert record.dispatched_at == sim.now
        sim.run_until(60)
        assert record.status is QueryStatus.FINISHED

    def test_never_uses_cf(self, turbo_env):
        sim, _, _, _, coordinator, server = turbo_env
        for _ in range(10):
            server.submit(HEAVY, ServiceLevel.BEST_EFFORT)
        sim.run_until(900)
        assert coordinator.cf_service.invocations == []


class TestBillingAndStatus:
    def test_price_uses_level_rate(self, turbo_env):
        sim, _, _, _, coordinator, server = turbo_env
        immediate = server.submit(HEAVY, ServiceLevel.IMMEDIATE)
        sim.run_until(200)
        relaxed = server.submit(HEAVY, ServiceLevel.RELAXED)
        sim.run_until(400)
        best = server.submit(HEAVY, ServiceLevel.BEST_EFFORT)
        sim.run_until(600)
        assert immediate.price > 0
        assert relaxed.price == pytest.approx(immediate.price * 0.2)
        assert best.price == pytest.approx(immediate.price * 0.1)

    def test_price_quote_matches_paper(self, turbo_env):
        _, _, _, _, _, server = turbo_env
        assert server.price_quote(ServiceLevel.IMMEDIATE) == 5.0
        assert server.price_quote(ServiceLevel.RELAXED) == 1.0
        assert server.price_quote(ServiceLevel.BEST_EFFORT) == 0.5

    def test_result_limit_truncates(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        record = server.submit(
            "SELECT o_orderkey FROM orders ORDER BY o_orderkey",
            ServiceLevel.IMMEDIATE,
            result_limit=5,
        )
        sim.run_until(120)
        assert len(record.result_rows()) == 5

    def test_failed_query_reports_error(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        record = server.submit("SELECT nope FROM orders", ServiceLevel.IMMEDIATE)
        sim.run_until(10)
        assert record.status is QueryStatus.FAILED
        assert "nope" in record.error

    def test_status_counts(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        server.submit(SIMPLE, ServiceLevel.IMMEDIATE)
        server.submit("SELECT broken FROM orders", ServiceLevel.IMMEDIATE)
        sim.run_until(120)
        counts = server.status_counts()
        assert counts[QueryStatus.FINISHED] == 1
        assert counts[QueryStatus.FAILED] == 1

    def test_total_billed_sums_finished(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        server.submit(HEAVY, ServiceLevel.IMMEDIATE)
        server.submit(HEAVY, ServiceLevel.RELAXED)
        sim.run_until(300)
        assert server.total_billed() > 0

    def test_query_lookup(self, turbo_env):
        _, _, _, _, _, server = turbo_env
        record = server.submit(SIMPLE, ServiceLevel.IMMEDIATE, query_id="mine")
        assert server.query("mine") is record
        with pytest.raises(NoSuchQueryError):
            server.query("ghost")

    def test_on_finish_callback(self, turbo_env):
        sim, _, _, _, _, server = turbo_env
        finished = []
        server.submit(
            SIMPLE, ServiceLevel.IMMEDIATE, on_finish=lambda r: finished.append(r)
        )
        sim.run_until(60)
        assert len(finished) == 1

    def test_queue_capacity_rejection(self, turbo_env):
        sim, _, _, config, coordinator, server = turbo_env
        server._max_queue_length = 8
        with pytest.raises(QueryRejectedError):
            # 6 dispatch straight to the VM queue (below high watermark),
            # then 8 fill the relaxed hold queue, the next is rejected.
            for _ in range(20):
                server.submit(HEAVY, ServiceLevel.RELAXED)
        assert server.queued_relaxed == 8
