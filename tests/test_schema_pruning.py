"""Unit tests for NL2SQL schema pruning."""

from repro.nl2sql.benchmark import make_wide_schema
from repro.nl2sql.schema_pruning import SchemaPruner, stem, tokenize
from tests.conftest import build_catalog


def mini_schema():
    return build_catalog().schema("mini")


class TestTokenization:
    def test_tokenize_splits_identifiers(self):
        assert tokenize("o_totalprice") == ["o", "totalprice"]
        assert tokenize("total price!") == ["total", "price"]

    def test_stem(self):
        assert stem("orders") == "order"
        assert stem("countries") == "country"
        assert stem("status") == "status"  # too short to strip
        assert stem("prices") == "price"


class TestPruning:
    def test_relevant_table_kept(self):
        pruned = SchemaPruner().prune(mini_schema(), "how many orders are there")
        assert "orders" in pruned.table_names

    def test_irrelevant_table_dropped(self):
        pruned = SchemaPruner(max_tables=1).prune(
            mini_schema(), "what is the total price of orders"
        )
        assert pruned.table_names == ["orders"]

    def test_synonyms_match(self):
        pruned = SchemaPruner().prune(
            mini_schema(), "how much did each client spend on purchases"
        )
        # client→customer, purchases→orders via the synonym table.
        assert set(pruned.table_names) >= {"customer", "orders"}

    def test_comment_vocabulary_matches(self):
        pruned = SchemaPruner().prune(mini_schema(), "total price per customer")
        columns = {sc.column.name for sc in pruned.columns}
        assert "o_totalprice" in columns

    def test_fk_key_columns_survive(self):
        pruned = SchemaPruner().prune(
            mini_schema(), "total price for each customer name"
        )
        columns = {sc.column.name for sc in pruned.columns}
        assert "o_custkey" in columns
        assert "c_custkey" in columns

    def test_fallback_keeps_best_table(self):
        pruned = SchemaPruner().prune(mini_schema(), "zzz qqq xxx")
        assert len(pruned.tables) >= 1

    def test_serialize_shape(self):
        pruned = SchemaPruner().prune(mini_schema(), "orders total price")
        text = pruned.serialize()
        assert "orders(" in text
        assert "o_totalprice double" in text


class TestWideSchemaStress:
    """§3.3: pruning must handle tables with thousands of columns."""

    def test_thousand_column_table_prunes_to_budget(self):
        schema = make_wide_schema(1200)
        pruner = SchemaPruner(max_columns_per_table=12)
        pruned = pruner.prune(schema, "what is the average sensor temperature")
        assert len(pruned.columns) <= 12
        names = {sc.column.name for sc in pruned.columns}
        assert "sensor_temperature" in names

    def test_relevant_metric_found_among_thousands(self):
        schema = make_wide_schema(2000)
        pruned = SchemaPruner().prune(schema, "maximum metric number 1337")
        names = [sc.column.name for sc in pruned.columns]
        assert "metric_1337" in names

    def test_serialized_size_bounded(self):
        schema = make_wide_schema(2000)
        pruned = SchemaPruner(max_columns_per_table=12).prune(
            schema, "average sensor temperature"
        )
        # Without pruning this would serialize ~2000 columns.
        assert len(pruned.serialize()) < 1000
