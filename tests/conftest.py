"""Shared fixtures: a small two-table analytic dataset (in-memory and
object-store backed) used by engine and integration tests."""

import pytest

from repro.engine.executor import QueryExecutor
from repro.engine.optimizer import Optimizer
from repro.engine.planner import Planner
from repro.engine.source import InMemorySource, ObjectStoreSource
from repro.storage.catalog import Catalog, ColumnMeta
from repro.storage.object_store import ObjectStore
from repro.storage.table import TableData, TableWriter
from repro.storage.types import DataType

ORDERS_SCHEMA = [
    ("o_orderkey", DataType.BIGINT),
    ("o_custkey", DataType.BIGINT),
    ("o_totalprice", DataType.DOUBLE),
    ("o_orderstatus", DataType.VARCHAR),
    ("o_orderdate", DataType.DATE),
]

CUSTOMER_SCHEMA = [
    ("c_custkey", DataType.BIGINT),
    ("c_name", DataType.VARCHAR),
    ("c_nationkey", DataType.INT),
]

ORDERS_ROWS = [
    (1, 1, 100.0, "O", 9131),   # 1995-01-01
    (2, 1, 200.0, "F", 9496),   # 1996-01-01
    (3, 2, 300.0, "O", 9131),
    (4, 2, None, "F", 9862),    # 1997-01-01
    (5, 3, 500.0, "O", 9131),
    (6, 9, 600.0, "P", 9131),   # customer 9 does not exist
]

CUSTOMER_ROWS = [
    (1, "alice", 10),
    (2, "bob", 10),
    (3, "carol", 20),
]


def build_catalog(bucket="", orders_prefix="", customer_prefix=""):
    catalog = Catalog()
    catalog.create_schema("mini", comment="mini TPC-H-like dataset")
    catalog.create_table(
        "mini",
        "orders",
        [
            ColumnMeta("o_orderkey", DataType.BIGINT, "order id"),
            ColumnMeta("o_custkey", DataType.BIGINT, "customer id"),
            ColumnMeta("o_totalprice", DataType.DOUBLE, "total price"),
            ColumnMeta("o_orderstatus", DataType.VARCHAR, "order status"),
            ColumnMeta("o_orderdate", DataType.DATE, "order date"),
        ],
        bucket=bucket,
        prefix=orders_prefix,
    )
    catalog.create_table(
        "mini",
        "customer",
        [
            ColumnMeta("c_custkey", DataType.BIGINT, "customer id"),
            ColumnMeta("c_name", DataType.VARCHAR, "customer name"),
            ColumnMeta("c_nationkey", DataType.INT, "nation id"),
        ],
        bucket=bucket,
        prefix=customer_prefix,
    )
    catalog.add_foreign_key("mini", "orders", "o_custkey", "customer", "c_custkey")
    catalog.update_statistics("mini", "orders", len(ORDERS_ROWS), 1000)
    catalog.update_statistics("mini", "customer", len(CUSTOMER_ROWS), 300)
    return catalog


@pytest.fixture
def mini_catalog():
    return build_catalog()


@pytest.fixture
def mini_tables():
    return {
        ("mini", "orders"): TableData.from_rows(ORDERS_SCHEMA, ORDERS_ROWS),
        ("mini", "customer"): TableData.from_rows(CUSTOMER_SCHEMA, CUSTOMER_ROWS),
    }


@pytest.fixture
def mini_source(mini_tables):
    return InMemorySource(mini_tables)


@pytest.fixture
def mini_engine(mini_catalog, mini_source):
    """(planner, optimizer, executor) over the in-memory mini dataset."""
    return (
        Planner(mini_catalog, "mini"),
        Optimizer(),
        QueryExecutor(mini_source),
    )


def run_query(engine, sql):
    planner, optimizer, executor = engine
    return executor.execute(optimizer.optimize(planner.plan_sql(sql)))


@pytest.fixture
def turbo_env():
    """A complete small Turbo stack: sim + loaded TPC-H + coordinator +
    query server, with the fast test config (short lags, same ratios)."""
    from repro.core import QueryServer
    from repro.sim import Simulator
    from repro.turbo import Coordinator, TurboConfig
    from repro.workloads import TpchGenerator, load_dataset

    sim = Simulator(seed=11)
    store = ObjectStore()
    catalog = Catalog()
    load_dataset(store, catalog, "tpch", TpchGenerator(scale=0.05).tables())
    config = TurboConfig.fast()
    coordinator = Coordinator(sim, config, catalog, store, "tpch")
    server = QueryServer(sim, coordinator, config)
    return sim, store, catalog, config, coordinator, server


@pytest.fixture
def mini_object_store():
    """The same dataset written through the columnar format into an
    object store, with a matching catalog."""
    store = ObjectStore()
    store.create_bucket("warehouse")
    catalog = build_catalog(
        bucket="warehouse",
        orders_prefix="mini/orders",
        customer_prefix="mini/customer",
    )
    TableWriter(store, "warehouse", "mini/orders", rows_per_group=2).write(
        TableData.from_rows(ORDERS_SCHEMA, ORDERS_ROWS)
    )
    TableWriter(store, "warehouse", "mini/customer").write(
        TableData.from_rows(CUSTOMER_SCHEMA, CUSTOMER_ROWS)
    )
    return store, catalog


@pytest.fixture
def mini_store_engine(mini_object_store):
    store, catalog = mini_object_store
    return (
        Planner(catalog, "mini"),
        Optimizer(),
        QueryExecutor(ObjectStoreSource(store)),
    )
