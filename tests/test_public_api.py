"""Integration tests for the PixelsDB public façade."""

import pytest

from repro import (
    PixelsDB,
    QueryStatus,
    ServiceLevel,
    TurboConfig,
    UserStore,
    __version__,
)
from repro.errors import TranslationError


@pytest.fixture(scope="module")
def db():
    database = PixelsDB(config=TurboConfig.fast(), seed=1)
    database.load_tpch("tpch", scale=0.02)
    database.load_logs("weblogs", num_rows=1000)
    return database


class TestFacade:
    def test_version(self):
        assert __version__

    def test_ask_then_submit_then_result(self, db):
        sql = db.ask("tpch", "How many orders are there?")
        assert sql == "SELECT count(*) FROM orders"
        query = db.submit("tpch", sql, ServiceLevel.IMMEDIATE)
        db.run_to_completion()
        assert query.status is QueryStatus.FINISHED
        assert query.result_rows()[0][0] > 0

    def test_multiple_schemas(self, db):
        logs_query = db.submit(
            "weblogs", "SELECT count(*) FROM web_logs", ServiceLevel.RELAXED
        )
        db.run_to_completion()
        assert logs_query.result_rows()[0][0] == 1000

    def test_pricing_differs_by_level(self, db):
        sql = "SELECT l_returnflag, count(*) FROM lineitem GROUP BY l_returnflag"
        immediate = db.submit("tpch", sql, ServiceLevel.IMMEDIATE)
        db.run_to_completion()
        best = db.submit("tpch", sql, ServiceLevel.BEST_EFFORT)
        db.run_to_completion()
        assert best.price == pytest.approx(immediate.price * 0.1)

    def test_coordinator_reused_per_schema(self, db):
        assert db.coordinator("tpch") is db.coordinator("tpch")
        assert db.coordinator("tpch") is not db.coordinator("weblogs")

    def test_ask_unknown_question_still_sql_or_error(self, db):
        try:
            sql = db.ask("tpch", "hmm")
            assert sql.startswith("SELECT")
        except TranslationError:
            pass

    def test_rover_integration(self, db):
        users = UserStore()
        users.register("demo", "demo", {"tpch"})
        rover = db.rover(users, "tpch")
        token = rover.login("demo", "demo")
        rover.select_database(token, "tpch")
        block = rover.ask(token, "How many customers are there?")
        result = rover.submit_query(token, block.block_id, "relaxed")
        db.run_to_completion()
        assert result.status is QueryStatus.FINISHED

    def test_simulated_clock(self, db):
        before = db.now
        db.run(30.0)
        assert db.now == before + 30.0
