"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Simulator
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_pop_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(3.0, lambda: fired.append(3))
        queue.push(1.0, lambda: fired.append(1))
        queue.push(2.0, lambda: fired.append(2))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == [1, 2, 3]

    def test_ties_break_in_scheduling_order(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(1.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("c"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["a", "b", "c"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        keep = queue.push(1.0, lambda: None)
        drop = queue.push(0.5, lambda: None)
        queue.cancel(drop)
        assert len(queue) == 1
        assert queue.pop() is keep
        assert queue.pop() is None

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        drop = queue.push(0.5, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(drop)
        assert queue.peek_time() == 2.0

    def test_empty_queue(self):
        queue = EventQueue()
        assert queue.pop() is None
        assert queue.peek_time() is None
        assert len(queue) == 0


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_and_run(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.schedule(1.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0, 5.0]
        assert sim.now == 5.0

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        times = []
        sim.schedule_at(7.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [7.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run_until(5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_run_until_is_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run_until(5.0)
        assert fired == [5]

    def test_run_until_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(ValueError):
            sim.run_until(5.0)

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if sim.now < 3.0:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_cancel_scheduled_event(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_step_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is True
        assert sim.step() is False

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(RuntimeError, match="feedback loop"):
            sim.run(max_events=100)

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except RuntimeError as exc:
                errors.append(str(exc))

        sim.schedule(1.0, reenter)
        sim.run()
        assert errors and "reentrant" in errors[0]

    def test_pending_events_counts_live_only(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        sim.cancel(event)
        assert sim.pending_events == 1
