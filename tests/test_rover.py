"""Tests for the Pixels-Rover backend: every §4 interaction."""

import pytest

from repro.core import QueryStatus, ServiceLevel
from repro.errors import (
    AuthenticationError,
    AuthorizationError,
    NoSuchQueryError,
    RoverError,
)
from repro.nl2sql import CodesService
from repro.rover import RoverServer, UserStore


@pytest.fixture
def rover(turbo_env):
    sim, store, catalog, config, coordinator, server = turbo_env
    users = UserStore()
    users.register("ana", "s3cret", {"tpch"})
    users.register("guest", "guest", set())
    rover_server = RoverServer(users, catalog, CodesService(), server)
    return sim, rover_server


@pytest.fixture
def session(rover):
    sim, server = rover
    token = server.login("ana", "s3cret")
    server.select_database(token, "tpch")
    return sim, server, token


class TestAuth:
    def test_login_logout(self, rover):
        _, server = rover
        token = server.login("ana", "s3cret")
        assert server.list_databases(token) == ["tpch"]
        server.logout(token)
        with pytest.raises(AuthenticationError):
            server.list_databases(token)

    def test_wrong_password(self, rover):
        _, server = rover
        with pytest.raises(AuthenticationError):
            server.login("ana", "wrong")

    def test_unknown_user(self, rover):
        _, server = rover
        with pytest.raises(AuthenticationError):
            server.login("nobody", "x")

    def test_unauthorized_database_hidden_and_blocked(self, rover):
        _, server = rover
        token = server.login("guest", "guest")
        assert server.list_databases(token) == []
        with pytest.raises(AuthorizationError):
            server.select_database(token, "tpch")
        with pytest.raises(AuthorizationError):
            server.schema_tree(token, "tpch")

    def test_duplicate_registration(self):
        users = UserStore()
        users.register("a", "pw", set())
        with pytest.raises(AuthenticationError):
            users.register("a", "pw2", set())

    def test_grant_revoke(self, rover):
        _, server = rover
        server._users.grant("guest", "tpch")
        token = server.login("guest", "guest")
        assert server.list_databases(token) == ["tpch"]
        server._users.revoke("guest", "tpch")
        with pytest.raises(AuthorizationError):
            server.select_database(token, "tpch")


class TestSchemaBrowser:
    def test_tree_shape(self, session):
        _, server, token = session
        tree = server.schema_tree(token, "tpch")
        table_names = {table["name"] for table in tree["tables"]}
        assert {"orders", "lineitem", "customer"} <= table_names
        orders = next(t for t in tree["tables"] if t["name"] == "orders")
        first = orders["columns"][0]
        assert set(first) == {"name", "type", "comment"}  # hover shows type


class TestTranslator:
    def test_ask_produces_block(self, session):
        _, server, token = session
        block = server.ask(token, "How many orders are there?")
        assert block.sql == "SELECT count(*) FROM orders"
        assert block.translated_sql == block.sql
        assert not block.editing

    def test_ask_requires_selected_database(self, rover):
        _, server = rover
        token = server.login("ana", "s3cret")
        with pytest.raises(RoverError, match="select a database"):
            server.ask(token, "how many orders")

    def test_edit_confirm(self, session):
        _, server, token = session
        block = server.ask(token, "How many orders are there?")
        server.begin_edit(token, block.block_id)
        server.update_draft(token, block.block_id, "SELECT count(*) FROM customer")
        server.confirm_edit(token, block.block_id)
        assert block.sql == "SELECT count(*) FROM customer"
        assert block.translated_sql == "SELECT count(*) FROM orders"

    def test_edit_cancel_resets(self, session):
        _, server, token = session
        block = server.ask(token, "How many orders are there?")
        server.begin_edit(token, block.block_id)
        server.update_draft(token, block.block_id, "garbage")
        server.cancel_edit(token, block.block_id)
        assert block.sql == "SELECT count(*) FROM orders"
        assert not block.editing

    def test_edit_outside_mode_rejected(self, session):
        _, server, token = session
        block = server.ask(token, "How many orders are there?")
        with pytest.raises(ValueError):
            server.confirm_edit(token, block.block_id)

    def test_unknown_block(self, session):
        _, server, token = session
        with pytest.raises(NoSuchQueryError):
            server.block(token, "block-999")


class TestSubmission:
    def test_form_lists_levels_and_prices(self, session):
        _, server, token = session
        block = server.ask(token, "How many orders are there?")
        form = server.submission_form(token, block.block_id)
        levels = {entry["level"]: entry["price_per_tb"] for entry in form["service_levels"]}
        assert levels == {"immediate": 5.0, "relaxed": 1.0, "best_effort": 0.5}
        cf = {e["level"]: e["cf_acceleration"] for e in form["service_levels"]}
        assert cf["immediate"] and not cf["relaxed"]

    def test_submit_and_finish(self, session):
        sim, server, token = session
        block = server.ask(token, "How many orders are there?")
        result = server.submit_query(token, block.block_id, ServiceLevel.IMMEDIATE)
        sim.run_until(120)
        assert result.status is QueryStatus.FINISHED
        expanded = server.expand_result(token, result.result_id)
        assert expanded["rows"][0][0] > 0
        assert expanded["monetary_cost"] >= 0
        assert expanded["pending_time_s"] == 0.0

    def test_submit_accepts_level_strings(self, session):
        sim, server, token = session
        block = server.ask(token, "How many customers are there?")
        result = server.submit_query(token, block.block_id, "best-of-effort")
        assert result.level is ServiceLevel.BEST_EFFORT

    def test_result_limit_applied(self, session):
        sim, server, token = session
        block = server.ask(token, "How many orders are there?")
        server.begin_edit(token, block.block_id)
        server.update_draft(
            token, block.block_id, "SELECT o_orderkey FROM orders"
        )
        server.confirm_edit(token, block.block_id)
        result = server.submit_query(
            token, block.block_id, ServiceLevel.IMMEDIATE, result_limit=7
        )
        sim.run_until(120)
        assert len(server.expand_result(token, result.result_id)["rows"]) == 7

    def test_failed_query_shows_error(self, session):
        sim, server, token = session
        block = server.ask(token, "How many orders are there?")
        server.begin_edit(token, block.block_id)
        server.update_draft(token, block.block_id, "SELECT broken FROM orders")
        server.confirm_edit(token, block.block_id)
        result = server.submit_query(token, block.block_id, ServiceLevel.IMMEDIATE)
        sim.run_until(30)
        assert result.status is QueryStatus.FAILED
        assert "broken" in server.expand_result(token, result.result_id)["error"]


class TestResultArea:
    def test_blocks_ordered_by_submission_time(self, session):
        sim, server, token = session
        block = server.ask(token, "How many orders are there?")
        first = server.submit_query(token, block.block_id, ServiceLevel.IMMEDIATE)
        sim.run_until(10)
        second = server.submit_query(token, block.block_id, ServiceLevel.RELAXED)
        ordered = server.result_blocks(token)
        assert [b.result_id for b in ordered] == [first.result_id, second.result_id]

    def test_level_colors(self, session):
        sim, server, token = session
        block = server.ask(token, "How many orders are there?")
        colors = set()
        for level in ServiceLevel:
            result = server.submit_query(token, block.block_id, level)
            colors.add(result.color)
        assert len(colors) == 3  # §4.3: distinct background per level

    def test_block_result_linkage(self, session):
        sim, server, token = session
        block = server.ask(token, "How many orders are there?")
        result = server.submit_query(token, block.block_id, ServiceLevel.IMMEDIATE)
        assert server.origin_of(token, result.result_id) is block
        assert server.results_of(token, block.block_id) == [result]

    def test_statuses_progress(self, session):
        sim, server, token = session
        block = server.ask(token, "How many orders are there?")
        result = server.submit_query(token, block.block_id, ServiceLevel.IMMEDIATE)
        assert result.status in (QueryStatus.PENDING, QueryStatus.RUNNING)
        sim.run_until(120)
        assert result.status is QueryStatus.FINISHED

    def test_unknown_result_block(self, session):
        _, server, token = session
        with pytest.raises(NoSuchQueryError):
            server.expand_result(token, "result-nope")


class TestSchedulerEndpoint:
    def test_scheduler_state_exposed(self, session):
        import json

        sim, server, token = session
        block = server.ask(token, "How many orders are there?")
        server.submit_query(token, block.block_id, ServiceLevel.RELAXED)
        payload = server.scheduler(token)
        snapshot = json.loads(payload)
        assert set(snapshot) >= {"queues", "admission", "shares", "fairness"}
        assert snapshot["admission"]["admitted"] == 1
        # Byte-stable like the ledger/spend endpoints.
        assert payload == server.scheduler(token)
        assert payload.endswith("\n")

    def test_scheduler_requires_session(self, rover):
        _, server = rover
        with pytest.raises(AuthenticationError):
            server.scheduler("bad-token")
