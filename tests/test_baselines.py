"""Tests for baseline engines and the workload runner."""

import pytest

from repro.baselines import (
    PureCfCoordinator,
    PureVmCoordinator,
    SingleLevelServer,
    run_workload,
)
from repro.baselines.runner import Submission
from repro.core import QueryServer, QueryStatus, ServiceLevel
from repro.sim import Simulator
from repro.storage.catalog import Catalog
from repro.storage.object_store import ObjectStore
from repro.turbo import TurboConfig
from repro.turbo.coordinator import ExecutionVenue
from repro.workloads import TpchGenerator, load_dataset

HEAVY = "SELECT l_returnflag, count(*) FROM lineitem GROUP BY l_returnflag"


@pytest.fixture(scope="module")
def dataset():
    store = ObjectStore()
    catalog = Catalog()
    load_dataset(store, catalog, "tpch", TpchGenerator(scale=0.05).tables())
    return store, catalog


class TestPureCf:
    def test_everything_runs_on_cf(self, dataset):
        store, catalog = dataset
        result = run_workload(
            [Submission(1.0, HEAVY, ServiceLevel.IMMEDIATE) for _ in range(4)],
            store, catalog, "tpch", TurboConfig.fast(),
            coordinator_cls=PureCfCoordinator,
        )
        assert all(
            q.execution.venue is ExecutionVenue.CF for q in result.queries
        )
        assert result.coordinator.cf_service.invocations


class TestPureVm:
    def test_never_uses_cf(self, dataset):
        store, catalog = dataset
        result = run_workload(
            [Submission(1.0, HEAVY, ServiceLevel.IMMEDIATE) for _ in range(4)],
            store, catalog, "tpch", TurboConfig.fast(),
            coordinator_cls=PureVmCoordinator,
        )
        assert all(
            q.execution.venue is ExecutionVenue.VM for q in result.queries
        )
        assert result.coordinator.cf_service.invocations == []

    def test_fixed_size_never_scales(self, dataset):
        store, catalog = dataset
        result = run_workload(
            [Submission(1.0, HEAVY, ServiceLevel.IMMEDIATE) for _ in range(12)],
            store, catalog, "tpch", TurboConfig.fast(),
            coordinator_cls=PureVmCoordinator,
            coordinator_kwargs={"fixed_size": True},
        )
        assert result.coordinator.vm_cluster.scale_out_events == 0
        assert result.coordinator.vm_cluster.num_workers == 1


class TestSingleLevel:
    def test_everything_billed_at_immediate_rate(self, dataset):
        store, catalog = dataset
        sim = Simulator()
        config = TurboConfig.fast()
        from repro.turbo import Coordinator

        coordinator = Coordinator(sim, config, catalog, store, "tpch")
        server = SingleLevelServer(QueryServer(sim, coordinator, config))
        records = [server.submit(HEAVY) for _ in range(3)]
        sim.run_until(600)
        assert all(r.level is ServiceLevel.IMMEDIATE for r in records)
        assert all(r.status is QueryStatus.FINISHED for r in records)
        # Billing now aggregates in integer nanodollars: the total is
        # exactly the sum of the per-query integer bills, and the dollar
        # view matches the float prices to billing granularity (1 nano$).
        assert server.total_billed_nanodollars() == sum(
            round(r.price * 1e9) for r in records
        )
        assert server.total_billed() == pytest.approx(
            sum(r.price for r in records), abs=1e-9 * len(records)
        )


class TestRunner:
    def test_runs_to_quiescence(self, dataset):
        store, catalog = dataset
        result = run_workload(
            [
                Submission(0.0, HEAVY, ServiceLevel.IMMEDIATE),
                Submission(5.0, HEAVY, ServiceLevel.RELAXED),
                Submission(10.0, HEAVY, ServiceLevel.BEST_EFFORT),
            ],
            store, catalog, "tpch", TurboConfig.fast(),
        )
        assert len(result.finished()) == 3

    def test_horizon_stops_early(self, dataset):
        store, catalog = dataset
        result = run_workload(
            [Submission(1.0, HEAVY, ServiceLevel.IMMEDIATE)],
            store, catalog, "tpch", TurboConfig.fast(),
            horizon_s=1.5,
        )
        assert result.sim.now == 1.5

    def test_level_summaries(self, dataset):
        store, catalog = dataset
        result = run_workload(
            [
                Submission(0.0, HEAVY, ServiceLevel.IMMEDIATE),
                Submission(0.0, HEAVY, ServiceLevel.RELAXED),
            ],
            store, catalog, "tpch", TurboConfig.fast(),
        )
        assert len(result.of_level(ServiceLevel.IMMEDIATE)) == 1
        assert result.billed() == pytest.approx(
            result.billed(ServiceLevel.IMMEDIATE)
            + result.billed(ServiceLevel.RELAXED)
        )
        assert result.mean_pending(ServiceLevel.IMMEDIATE) == 0.0

    def test_billed_per_tb_matches_rate(self, dataset):
        store, catalog = dataset
        result = run_workload(
            [Submission(0.0, HEAVY, ServiceLevel.RELAXED)],
            store, catalog, "tpch", TurboConfig.fast(),
        )
        assert result.billed_per_tb(ServiceLevel.RELAXED) == pytest.approx(1.0)

    def test_provider_cost_positive(self, dataset):
        store, catalog = dataset
        result = run_workload(
            [Submission(0.0, HEAVY, ServiceLevel.IMMEDIATE)],
            store, catalog, "tpch", TurboConfig.fast(),
        )
        assert result.provider_cost() > 0
