"""Unit tests for the SLO tracker (repro.obs.slo)."""

import math

import pytest

from repro.obs.slo import (
    VIOLATION_EPSILON_S,
    NoopSloTracker,
    SloObjective,
    SloTracker,
    default_objectives,
)


def _record(
    tracker: SloTracker,
    *,
    level: str = "relaxed",
    finished_at: float = 10.0,
    deadline_s: float | None = 30.0,
    actual_s: float = 0.0,
    query_id: str = "q1",
    billed: float = 0.0,
):
    return tracker.record(
        query_id=query_id,
        level=level,
        submitted_at=finished_at - actual_s,
        finished_at=finished_at,
        deadline_s=deadline_s,
        actual_s=actual_s,
        billed=billed,
    )


class TestObjective:
    def test_budget_fraction_is_complement_of_target(self):
        assert SloObjective("relaxed", target=0.99).budget_fraction == pytest.approx(
            0.01
        )

    def test_rejects_bad_target_and_window(self):
        with pytest.raises(ValueError):
            SloObjective("x", target=0.0)
        with pytest.raises(ValueError):
            SloObjective("x", target=1.5)
        with pytest.raises(ValueError):
            SloObjective("x", budget_window_s=0.0)

    def test_default_objectives_cover_all_levels(self):
        assert [o.level for o in default_objectives()] == [
            "immediate", "relaxed", "best_effort",
        ]


class TestRecord:
    def test_met_deadline_has_positive_slack(self):
        record = _record(SloTracker(), deadline_s=30.0, actual_s=10.0)
        assert record.slack_s == pytest.approx(20.0)
        assert not record.violated

    def test_missed_deadline_has_negative_slack(self):
        record = _record(SloTracker(), deadline_s=30.0, actual_s=45.0)
        assert record.slack_s == pytest.approx(-15.0)
        assert record.violated

    def test_epsilon_guard_absorbs_float_noise(self):
        # Exactly on the deadline, or within the guard band, is a pass.
        on_time = _record(
            SloTracker(), deadline_s=30.0, actual_s=30.0 + VIOLATION_EPSILON_S / 2
        )
        assert not on_time.violated
        late = _record(
            SloTracker(), deadline_s=30.0, actual_s=30.0 + 3 * VIOLATION_EPSILON_S
        )
        assert late.violated

    def test_no_deadline_never_violates(self):
        record = _record(SloTracker(), deadline_s=None, actual_s=9999.0)
        assert record.slack_s is None
        assert not record.violated

    def test_unknown_level_is_auto_registered(self):
        tracker = SloTracker(objectives=[])
        _record(tracker, level="gold")
        assert tracker.levels() == ["gold"]
        assert tracker.compliance("gold") == 1.0


class TestCompliance:
    def test_lifetime_compliance_counts_only_deadlined_queries(self):
        tracker = SloTracker()
        _record(tracker, query_id="a", actual_s=0.0)
        _record(tracker, query_id="b", actual_s=99.0)  # violation
        _record(tracker, query_id="c", deadline_s=None, actual_s=99.0)
        assert tracker.compliance("relaxed") == pytest.approx(0.5)

    def test_compliance_none_without_deadline_traffic(self):
        tracker = SloTracker()
        _record(tracker, level="best_effort", deadline_s=None)
        assert tracker.compliance("best_effort") is None
        assert tracker.compliance("missing") is None

    def test_rolling_compliance_uses_recent_window_only(self):
        tracker = SloTracker(rolling_window=2)
        _record(tracker, query_id="old", actual_s=99.0)  # violation ages out
        _record(tracker, query_id="n1", actual_s=0.0)
        _record(tracker, query_id="n2", actual_s=0.0)
        assert tracker.compliance("relaxed") == pytest.approx(2 / 3)
        assert tracker.rolling_compliance("relaxed") == 1.0

    def test_records_are_globally_time_ordered(self):
        tracker = SloTracker()
        _record(tracker, level="relaxed", finished_at=20.0, query_id="b")
        _record(tracker, level="immediate", finished_at=10.0, query_id="a",
                deadline_s=0.0)
        assert [r.query_id for r in tracker.records()] == ["a", "b"]


class TestErrorBudget:
    def _tracker(self) -> SloTracker:
        # 90% target, 100 s windows → budget = 10% of queries per window.
        return SloTracker(
            objectives=[
                SloObjective("relaxed", target=0.9, budget_window_s=100.0)
            ]
        )

    def test_budget_exhaustion_at_exact_rate(self):
        tracker = self._tracker()
        for index in range(9):
            _record(tracker, finished_at=10.0 + index, query_id=f"ok{index}")
        budget = tracker.budget("relaxed")
        assert budget["consumed_fraction"] == 0.0
        assert not budget["exhausted"]
        _record(tracker, finished_at=50.0, actual_s=99.0, query_id="bad")
        budget = tracker.budget("relaxed")
        # 1 violation in 10 → 10% violation rate = the whole 10% budget.
        assert budget["consumed_fraction"] == pytest.approx(1.0)
        assert budget["exhausted"]

    def test_budget_resets_at_window_boundary(self):
        tracker = self._tracker()
        _record(tracker, finished_at=50.0, actual_s=99.0, query_id="bad")
        assert tracker.budget("relaxed")["exhausted"]
        # First record of the next fixed window rolls and resets.
        _record(tracker, finished_at=150.0, query_id="ok")
        budget = tracker.budget("relaxed")
        assert budget["window_index"] == 1
        assert budget["window_start_s"] == 100.0
        assert budget["consumed_fraction"] == 0.0
        assert not budget["exhausted"]
        history = tracker.budget_history("relaxed")
        assert len(history) == 1
        assert history[0]["exhausted"]

    def test_skipped_empty_windows_are_not_kept(self):
        tracker = self._tracker()
        _record(tracker, finished_at=50.0, query_id="a")
        _record(tracker, finished_at=950.0, query_id="b")
        assert tracker.budget("relaxed")["window_index"] == 9
        assert [w["window_index"] for w in tracker.budget_history("relaxed")] == [0]

    def test_perfect_target_burns_infinitely_on_any_violation(self):
        tracker = SloTracker(objectives=[SloObjective("relaxed", target=1.0)])
        _record(tracker, finished_at=5.0, actual_s=99.0)
        assert tracker.budget("relaxed")["consumed_fraction"] == math.inf
        assert tracker.burn_rate("relaxed", 60.0, 10.0) == math.inf


class TestBurnRate:
    def _tracker(self) -> SloTracker:
        return SloTracker(objectives=[SloObjective("relaxed", target=0.99)])

    def test_burn_rate_is_violation_rate_over_budget(self):
        tracker = self._tracker()
        for index in range(8):
            _record(tracker, finished_at=100.0 + index, query_id=f"ok{index}")
        _record(tracker, finished_at=110.0, actual_s=99.0, query_id="v1")
        _record(tracker, finished_at=111.0, actual_s=99.0, query_id="v2")
        # 2/10 violations against a 1% budget → burning 20× sustainable.
        assert tracker.burn_rate("relaxed", 60.0, 120.0) == pytest.approx(20.0)

    def test_window_is_half_open_left(self):
        tracker = self._tracker()
        _record(tracker, finished_at=60.0, actual_s=99.0, query_id="edge")
        # finished_at == now - window_s falls OUTSIDE (start, end].
        assert tracker.burn_rate("relaxed", 60.0, 120.0) == 0.0
        # One tick later it is inside.
        assert tracker.burn_rate("relaxed", 60.001, 120.0) > 0.0

    def test_window_includes_right_edge(self):
        tracker = self._tracker()
        _record(tracker, finished_at=120.0, actual_s=99.0, query_id="edge")
        assert tracker.burn_rate("relaxed", 60.0, 120.0) == pytest.approx(100.0)

    def test_empty_window_burns_nothing(self):
        tracker = self._tracker()
        assert tracker.burn_rate("relaxed", 60.0, 120.0) == 0.0
        assert tracker.burn_rate("missing", 60.0, 120.0) == 0.0


class TestExport:
    def test_snapshot_shape_and_billing(self):
        tracker = SloTracker()
        _record(tracker, billed=1.25, query_id="a")
        _record(tracker, billed=0.75, actual_s=99.0, query_id="b")
        level = tracker.snapshot()["levels"]["relaxed"]
        assert level["queries"] == 2
        assert level["violations"] == 1
        assert level["billed"] == pytest.approx(2.0)
        assert level["objective"]["target"] == 0.99

    def test_export_json_is_deterministic(self):
        def build() -> str:
            tracker = SloTracker()
            _record(tracker, query_id="a")
            _record(tracker, query_id="b", actual_s=50.0)
            return tracker.export_json()

        assert build() == build()

    def test_noop_tracker_swallows_everything(self):
        tracker = NoopSloTracker()
        assert not tracker.enabled
        assert _record(tracker) is None
        assert tracker.snapshot() == {"levels": {}}
