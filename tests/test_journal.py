"""Tests for the query journal and its tail-based capture policy
(repro.obs.journal).

The journal is an append-only JSONL event log where every record joins
the tracer (trace/span ids) and the statement store (fingerprint); the
capture policy decides at completion time which queries get the full
profile evidence attached.
"""

import json

from repro.obs.journal import CapturePolicy, NoopQueryJournal, QueryJournal


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestEvents:
    def test_record_carries_correlation_ids(self):
        clock = FakeClock()
        journal = QueryJournal(clock)
        clock.now = 12.5
        record = journal.event(
            "submit", "q-1", span_id=7, fingerprint="abc", level="relaxed",
            deadline_s=300.0,
        )
        assert record == {
            "ts": 12.5,
            "event": "submit",
            "query_id": "q-1",
            "trace_id": "q-1",
            "span_id": 7,
            "fingerprint": "abc",
            "level": "relaxed",
            "deadline_s": 300.0,
        }

    def test_trace_id_defaults_to_query_id(self):
        journal = QueryJournal()
        assert journal.event("submit", "q-9")["trace_id"] == "q-9"
        assert (
            journal.event("submit", "q-9", trace_id="t-1")["trace_id"] == "t-1"
        )

    def test_export_jsonl_round_trips(self):
        journal = QueryJournal()
        journal.event("submit", "q-1")
        journal.event("finish", "q-1", billed_dollars=0.001)
        lines = journal.export_jsonl().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["event"] for line in lines] == [
            "submit", "finish",
        ]

    def test_empty_export_is_empty_string(self):
        assert QueryJournal().export_jsonl() == ""


class TestCapturePolicy:
    def test_deadline_violation_triggers(self):
        journal = QueryJournal(policy=CapturePolicy(slowest_n=0))
        assert journal.capture_reasons(
            time_s=1.0, billed=0.1, slack_s=-2.0, error=False
        ) == ["deadline_violation"]
        assert journal.capture_reasons(
            time_s=1.0, billed=0.1, slack_s=2.0, error=False
        ) == []

    def test_error_triggers(self):
        journal = QueryJournal(policy=CapturePolicy(slowest_n=0))
        assert journal.capture_reasons(
            time_s=None, billed=None, slack_s=None, error=True
        ) == ["error"]

    def test_dollar_threshold(self):
        journal = QueryJournal(
            policy=CapturePolicy(dollar_threshold=0.01, slowest_n=0)
        )
        assert journal.capture_reasons(
            time_s=1.0, billed=0.02, slack_s=None, error=False
        ) == ["dollar_threshold"]
        assert journal.capture_reasons(
            time_s=1.0, billed=0.001, slack_s=None, error=False
        ) == []

    def test_slowest_ring_admits_only_the_tail(self):
        journal = QueryJournal(policy=CapturePolicy(slowest_n=2))
        # First N always qualify.
        assert journal.capture_reasons(
            time_s=1.0, billed=None, slack_s=None, error=False
        ) == ["slowest_2"]
        assert journal.capture_reasons(
            time_s=5.0, billed=None, slack_s=None, error=False
        ) == ["slowest_2"]
        # Faster than the ring floor: no capture.
        assert journal.capture_reasons(
            time_s=0.5, billed=None, slack_s=None, error=False
        ) == []
        # Slower than the floor: joins, evicting the old floor.
        assert journal.capture_reasons(
            time_s=3.0, billed=None, slack_s=None, error=False
        ) == ["slowest_2"]

    def test_disabled_clauses_never_trigger(self):
        journal = QueryJournal(
            policy=CapturePolicy(
                capture_violations=False, capture_errors=False, slowest_n=0
            )
        )
        assert journal.capture_reasons(
            time_s=9.9, billed=9.9, slack_s=-9.9, error=True
        ) == []


class TestCapture:
    def test_capture_without_profile(self):
        journal = QueryJournal()
        record = journal.capture("q-1", ["error"], None, level="immediate")
        assert record["event"] == "capture"
        assert record["reasons"] == ["error"]
        assert "profile" not in record
        assert journal.captures() == [record]

    def test_max_captures_drops_with_breadcrumb(self):
        journal = QueryJournal(policy=CapturePolicy(max_captures=1))
        assert journal.capture("q-1", ["error"], None) is not None
        assert journal.capture("q-2", ["error"], None) is None
        assert journal.dropped_captures == 1
        events = [r["event"] for r in journal.records()]
        assert events == ["capture", "capture_dropped"]

    def test_capture_attaches_profile_evidence(self, turbo_env):
        from repro.core import QueryServer, ServiceLevel
        from repro.obs import Instrumentation
        from repro.turbo import Coordinator

        sim, store, catalog, config, _, _ = turbo_env
        obs = Instrumentation.create(clock=lambda: sim.now)
        coordinator = Coordinator(sim, config, catalog, store, "tpch", obs=obs)
        server = QueryServer(sim, coordinator, config)
        record = server.submit("SELECT count(*) FROM orders",
                               ServiceLevel.IMMEDIATE)
        sim.run_until(120)
        profile = server.query_profile(record.query_id)
        journal = obs.journal
        capture = journal.capture(
            record.query_id, ["slowest_8"], profile, level="immediate"
        )
        assert capture["profile"]["name"] == "query"
        assert capture["profile"]["children"]
        assert capture["flamegraph_svg"].startswith("<svg")
        assert capture["billed_nanodollars"] == profile.billed_nanodollars
        # The capture is a journal record too: it exports with the rest.
        assert '"event": "capture"' in journal.export_jsonl()


class TestNoop:
    def test_noop_swallows_everything(self):
        noop = NoopQueryJournal()
        assert not noop.enabled
        assert noop.event("submit", "q-1") == {}
        assert noop.capture_reasons(
            time_s=1.0, billed=1.0, slack_s=-1.0, error=True
        ) == []
        assert noop.capture("q-1", ["error"], None) is None
        assert noop.export_jsonl() == ""
