"""Unit tests for the accounted object store."""

import pytest

from repro.errors import NoSuchBucketError, NoSuchObjectError
from repro.storage.object_store import ObjectStore, StorageMetrics, StorageProfile


@pytest.fixture
def store():
    s = ObjectStore()
    s.create_bucket("b")
    return s


class TestBuckets:
    def test_create_and_exists(self, store):
        assert store.bucket_exists("b")
        assert not store.bucket_exists("other")

    def test_create_is_idempotent(self, store):
        store.put("b", "k", b"data")
        store.create_bucket("b")  # must not wipe contents
        assert store.get("b", "k").data == b"data"

    def test_missing_bucket_raises(self, store):
        with pytest.raises(NoSuchBucketError):
            store.get("nope", "k")
        with pytest.raises(NoSuchBucketError):
            store.put("nope", "k", b"")


class TestObjects:
    def test_put_get_roundtrip(self, store):
        store.put("b", "k", b"hello")
        assert store.get("b", "k").data == b"hello"

    def test_get_missing_raises(self, store):
        with pytest.raises(NoSuchObjectError):
            store.get("b", "nope")

    def test_range_get(self, store):
        store.put("b", "k", b"0123456789")
        assert store.get("b", "k", start=2, length=3).data == b"234"

    def test_range_get_clamps_to_size(self, store):
        store.put("b", "k", b"0123")
        assert store.get("b", "k", start=2, length=100).data == b"23"

    def test_head(self, store):
        store.put("b", "k", b"abc")
        assert store.head("b", "k") == 3
        with pytest.raises(NoSuchObjectError):
            store.head("b", "nope")

    def test_exists(self, store):
        assert not store.exists("b", "k")
        store.put("b", "k", b"")
        assert store.exists("b", "k")
        assert not store.exists("nobucket", "k")

    def test_overwrite(self, store):
        store.put("b", "k", b"v1")
        store.put("b", "k", b"v2")
        assert store.get("b", "k").data == b"v2"

    def test_delete_idempotent(self, store):
        store.put("b", "k", b"x")
        store.delete("b", "k")
        assert not store.exists("b", "k")
        store.delete("b", "k")  # no raise

    def test_list_keys_prefix_sorted(self, store):
        store.put("b", "t/part-1", b"")
        store.put("b", "t/part-0", b"")
        store.put("b", "other", b"")
        assert store.list_keys("b", "t/") == ["t/part-0", "t/part-1"]

    def test_total_bytes(self, store):
        store.put("b", "t/a", b"12345")
        store.put("b", "t/b", b"123")
        store.put("b", "u/c", b"1")
        assert store.total_bytes("b", "t/") == 8


class TestAccounting:
    def test_bytes_and_requests_counted(self, store):
        store.put("b", "k", b"x" * 100)
        store.get("b", "k")
        store.get("b", "k", start=0, length=10)
        metrics = store.metrics
        assert metrics.put_requests == 1
        assert metrics.get_requests == 2
        assert metrics.bytes_written == 100
        assert metrics.bytes_read == 110

    def test_latency_model(self):
        profile = StorageProfile(
            first_byte_latency_s=0.01, read_bandwidth_bytes_per_s=100.0
        )
        assert profile.get_latency(50) == pytest.approx(0.51)

    def test_get_result_latency_matches_profile(self, store):
        store.put("b", "k", b"x" * 1000)
        result = store.get("b", "k")
        assert result.latency_s == pytest.approx(store.profile.get_latency(1000))

    def test_snapshot_delta(self, store):
        store.put("b", "k", b"x" * 10)
        before = store.metrics.snapshot()
        store.get("b", "k")
        delta = store.metrics.delta(before)
        assert delta.get_requests == 1
        assert delta.bytes_read == 10
        assert delta.put_requests == 0

    def test_request_cost(self):
        metrics = StorageMetrics(get_requests=1000, put_requests=1000)
        profile = StorageProfile()
        assert metrics.request_cost(profile) == pytest.approx(
            profile.get_price_per_1000 + profile.put_price_per_1000
        )

    def test_merge(self):
        a = StorageMetrics(get_requests=1, bytes_read=10)
        b = StorageMetrics(get_requests=2, bytes_read=5, read_time_s=1.0)
        a.merge(b)
        assert a.get_requests == 3
        assert a.bytes_read == 15
        assert a.read_time_s == 1.0

    def test_list_requests_counted(self, store):
        store.list_keys("b")
        assert store.metrics.list_requests == 1

    def test_delete_requests_counted(self, store):
        store.delete("b", "k")
        assert store.metrics.delete_requests == 1
