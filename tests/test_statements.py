"""Tests for the statement-statistics store (repro.obs.statements).

Invariants under test: per-entry resource nanodollars sum exactly to
the entry's billed total (the profiler's largest-remainder split), the
top-K orderings are total and deterministic, and the JSON export is
byte-stable.
"""

import json

import pytest

from repro.engine.executor import QueryStats
from repro.obs.fingerprint import Fingerprint
from repro.obs.profiler import NANOS_PER_DOLLAR
from repro.obs.statements import NoopStatementStore, StatementStore
from repro.turbo.cost import CostAttribution


FP = Fingerprint("abc123def456", "SELECT a FROM t WHERE b = ?", True)
OTHER = Fingerprint("fff000fff000", "SELECT count(*) FROM t", True)


def attribution(billed, bandwidth=0.0, compute=0.0, requests=0.0):
    fixed = billed - bandwidth - compute - requests
    return CostAttribution(
        billed=billed,
        venue="vm",
        bandwidth_dollars=bandwidth,
        compute_dollars=compute,
        request_dollars=requests,
        fixed_dollars=fixed,
    )


def stats(bytes_scanned=1000, gets=4, footer=1, chunk=3, hits=2, misses=2):
    return QueryStats(
        bytes_scanned=bytes_scanned,
        rows_scanned=100,
        rows_produced=10,
        get_requests=gets,
        footer_gets=footer,
        chunk_gets=chunk,
        cache_hits=hits,
        cache_misses=misses,
    )


class TestRecording:
    def test_aggregates_by_fingerprint_and_level(self):
        store = StatementStore()
        for _ in range(3):
            store.record(FP, "immediate", time_s=1.0, billed=0.001,
                         attribution=attribution(0.001), stats=stats())
        store.record(FP, "relaxed", time_s=2.0, billed=0.0005,
                     attribution=attribution(0.0005), stats=stats())
        entries = store.entries()
        assert [(e.fingerprint, e.level, e.calls) for e in entries] == [
            ("abc123def456", "immediate", 3),
            ("abc123def456", "relaxed", 1),
        ]
        immediate = store.entry(FP.id, "immediate")
        assert immediate.time_s == pytest.approx(3.0)
        assert immediate.rows_produced == 30
        assert immediate.footer_gets == 3
        assert immediate.chunk_gets == 9
        assert immediate.cache_hit_ratio == pytest.approx(0.5)

    def test_resource_nanodollars_sum_to_billed(self):
        store = StatementStore()
        # A split with remainders that cannot divide evenly.
        entry = store.record(
            FP, "immediate", time_s=1.0, billed=0.0000001,
            attribution=attribution(
                0.0000001, bandwidth=0.00000003, compute=0.00000003,
                requests=0.00000003,
            ),
            stats=stats(),
        )
        total = (
            entry.bandwidth_nanodollars
            + entry.compute_nanodollars
            + entry.request_nanodollars
            + entry.fixed_nanodollars
        )
        assert total == entry.nanodollars
        assert entry.nanodollars == round(0.0000001 * NANOS_PER_DOLLAR)

    def test_missing_attribution_parks_in_fixed(self):
        store = StatementStore()
        entry = store.record(FP, "immediate", billed=0.002, attribution=None)
        assert entry.fixed_nanodollars == entry.nanodollars
        assert entry.bandwidth_nanodollars == 0

    def test_errors_counted_without_stats(self):
        store = StatementStore()
        entry = store.record(FP, "immediate", error=True)
        assert entry.calls == 1
        assert entry.errors == 1
        assert entry.bytes_scanned == 0
        assert entry.cache_hit_ratio is None


class TestTopK:
    def _store(self):
        store = StatementStore()
        store.record(FP, "immediate", time_s=5.0, billed=0.001,
                     attribution=attribution(0.001), stats=stats())
        for _ in range(4):
            store.record(OTHER, "relaxed", time_s=0.5, billed=0.0001,
                         attribution=attribution(0.0001), stats=stats())
        return store

    def test_top_by_each_dimension(self):
        store = self._store()
        assert store.top(1, by="dollars")[0].fingerprint == FP.id
        assert store.top(1, by="time")[0].fingerprint == FP.id
        assert store.top(1, by="calls")[0].fingerprint == OTHER.id

    def test_unknown_dimension_rejected(self):
        with pytest.raises(ValueError, match="unknown dimension"):
            self._store().top(1, by="vibes")

    def test_ties_break_deterministically(self):
        store = StatementStore()
        store.record(OTHER, "relaxed", time_s=1.0, billed=0.001)
        store.record(FP, "immediate", time_s=1.0, billed=0.001)
        tops = store.top(2, by="dollars")
        assert [e.fingerprint for e in tops] == [FP.id, OTHER.id]

    def test_render_top_lists_entries(self):
        text = self._store().render_top(5, by="dollars")
        assert "TOP STATEMENTS BY BILLED $" in text
        assert FP.id in text
        assert OTHER.id in text

    def test_render_top_empty_store(self):
        assert "(no statements recorded)" in StatementStore().render_top(5)


class TestExport:
    def test_export_is_byte_stable(self):
        first = self._populated().export_json()
        second = self._populated().export_json()
        assert first == second
        assert first.endswith("\n")

    def _populated(self):
        store = StatementStore()
        store.record(FP, "immediate", time_s=1.5, pending_s=0.5, billed=0.001,
                     attribution=attribution(0.001, bandwidth=0.0004),
                     stats=stats(), plan_shape="d00dfeedbeef")
        return store

    def test_snapshot_shape(self):
        snapshot = self._populated().snapshot()
        assert len(snapshot) == 1
        row = snapshot[0]
        assert row["plan_shape"] == "d00dfeedbeef"
        assert row["time"]["total_s"] == 1.5
        assert row["time"]["p50_s"] is not None
        assert row["nanodollars"]["billed"] == 1_000_000
        assert row["io"]["footer_gets"] == 1
        parsed = json.loads(self._populated().export_json())
        assert parsed["statements"] == snapshot


class TestNoop:
    def test_noop_swallows_everything(self):
        noop = NoopStatementStore()
        assert not noop.enabled
        assert noop.record(FP, "immediate", billed=1.0) is None
        assert noop.entries() == []
        assert noop.render_top() == ""
        assert noop.export_json() == ""
