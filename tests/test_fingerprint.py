"""Tests for statement fingerprints and plan-shape hashes
(repro.obs.fingerprint).

The contract: two queries differing only in their constants share a
fingerprint; structurally different queries never do; unparseable input
still fingerprints via the lexical fallback — every submission gets an
identity, so the statement store never loses a call.
"""

from repro.engine.optimizer import Optimizer
from repro.obs.fingerprint import (
    FINGERPRINT_DIGITS,
    fingerprint,
    plan_shape,
    plan_shape_hash,
)


class TestFingerprint:
    def test_literals_stripped(self):
        fp = fingerprint(
            "SELECT o_custkey FROM orders "
            "WHERE o_totalprice > 500.0 AND o_orderstatus = 'O' LIMIT 10"
        )
        assert fp.parsed
        assert "500" not in fp.normalized
        assert "'O'" not in fp.normalized
        assert "10" not in fp.normalized
        assert "?" in fp.normalized

    def test_same_shape_same_id(self):
        first = fingerprint(
            "SELECT o_custkey FROM orders WHERE o_totalprice > 100 LIMIT 5"
        )
        second = fingerprint(
            "SELECT o_custkey FROM orders WHERE o_totalprice > 9999 LIMIT 80"
        )
        assert first.id == second.id
        assert first.normalized == second.normalized

    def test_whitespace_and_case_of_keywords_insensitive(self):
        first = fingerprint("select   o_custkey from orders where o_custkey = 1")
        second = fingerprint("SELECT o_custkey FROM orders WHERE o_custkey = 2")
        assert first.id == second.id

    def test_different_structure_different_id(self):
        a = fingerprint("SELECT o_custkey FROM orders")
        b = fingerprint("SELECT o_custkey FROM orders WHERE o_custkey = 1")
        c = fingerprint("SELECT count(*) FROM orders")
        assert len({a.id, b.id, c.id}) == 3

    def test_id_length_and_stability(self):
        fp = fingerprint("SELECT o_custkey FROM orders")
        again = fingerprint("SELECT o_custkey FROM orders")
        assert len(fp.id) == FINGERPRINT_DIGITS
        assert fp == again

    def test_unparseable_falls_back_to_lexical(self):
        fp = fingerprint("how many orders were placed in 1995?")
        assert not fp.parsed
        assert "1995" not in fp.normalized
        assert fp.id  # still got an identity

    def test_lexical_fallback_strips_strings_before_numbers(self):
        first = fingerprint("!! bogus 'abc 123' 42")
        second = fingerprint("!! bogus 'zzz 999' 7")
        assert not first.parsed
        assert first.id == second.id

    def test_never_raises_on_garbage(self):
        for text in ("", "   ", ";;;", "SELECT FROM WHERE"):
            fp = fingerprint(text)
            assert isinstance(fp.id, str)


class TestPlanShape:
    def _plan(self, mini_engine, sql):
        planner, _, _ = mini_engine
        return Optimizer().optimize(planner.plan_sql(sql))

    def test_shape_names_operators_and_tables(self, mini_engine):
        shape = plan_shape(
            self._plan(mini_engine, "SELECT count(*) FROM orders")
        )
        assert "Aggregate" in shape
        assert "mini.orders" in shape

    def test_literal_changes_share_a_shape(self, mini_engine):
        first = plan_shape_hash(
            self._plan(
                mini_engine,
                "SELECT o_custkey FROM orders WHERE o_totalprice > 100",
            )
        )
        second = plan_shape_hash(
            self._plan(
                mini_engine,
                "SELECT o_custkey FROM orders WHERE o_totalprice > 500",
            )
        )
        assert first == second
        assert len(first) == FINGERPRINT_DIGITS

    def test_different_plans_different_shape(self, mini_engine):
        scan = plan_shape_hash(
            self._plan(mini_engine, "SELECT o_custkey FROM orders")
        )
        agg = plan_shape_hash(
            self._plan(mini_engine, "SELECT count(*) FROM orders")
        )
        assert scan != agg
