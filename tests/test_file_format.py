"""Unit tests for the Pixels file format (writer/reader/footer)."""

import pytest

from repro.errors import CorruptFileError, NoSuchColumnError
from repro.storage.file_format import FORMAT_VERSION, FileFooter, PixelsReader, PixelsWriter
from repro.storage.object_store import ObjectStore
from repro.storage.types import ColumnVector, DataType

SCHEMA = [("id", DataType.BIGINT), ("name", DataType.VARCHAR), ("price", DataType.DOUBLE)]


@pytest.fixture
def store():
    s = ObjectStore()
    s.create_bucket("b")
    return s


def write_sample(store, key="t/part-0.pxl", groups=2, rows=4):
    writer = PixelsWriter(store, "b", key, SCHEMA)
    for g in range(groups):
        base = g * rows
        writer.write_row_group(
            {
                "id": ColumnVector.from_values(
                    DataType.BIGINT, [base + i for i in range(rows)]
                ),
                "name": ColumnVector.from_values(
                    DataType.VARCHAR, [f"n{base + i}" for i in range(rows)]
                ),
                "price": ColumnVector.from_values(
                    DataType.DOUBLE, [float(base + i) * 1.5 for i in range(rows)]
                ),
            }
        )
    writer.close()
    return key


class TestWriter:
    def test_requires_schema(self, store):
        with pytest.raises(ValueError):
            PixelsWriter(store, "b", "k", [])

    def test_rejects_wrong_columns(self, store):
        writer = PixelsWriter(store, "b", "k", SCHEMA)
        with pytest.raises(ValueError, match="row group columns"):
            writer.write_row_group(
                {"id": ColumnVector.from_values(DataType.BIGINT, [1])}
            )

    def test_rejects_ragged_group(self, store):
        writer = PixelsWriter(store, "b", "k", SCHEMA)
        with pytest.raises(ValueError, match="ragged"):
            writer.write_row_group(
                {
                    "id": ColumnVector.from_values(DataType.BIGINT, [1, 2]),
                    "name": ColumnVector.from_values(DataType.VARCHAR, ["a"]),
                    "price": ColumnVector.from_values(DataType.DOUBLE, [1.0, 2.0]),
                }
            )

    def test_rejects_wrong_dtype(self, store):
        writer = PixelsWriter(store, "b", "k", SCHEMA)
        with pytest.raises(ValueError, match="expected"):
            writer.write_row_group(
                {
                    "id": ColumnVector.from_values(DataType.INT, [1]),
                    "name": ColumnVector.from_values(DataType.VARCHAR, ["a"]),
                    "price": ColumnVector.from_values(DataType.DOUBLE, [1.0]),
                }
            )

    def test_double_close_rejected(self, store):
        writer = PixelsWriter(store, "b", "k", SCHEMA)
        writer.close()
        with pytest.raises(ValueError):
            writer.close()

    def test_write_after_close_rejected(self, store):
        writer = PixelsWriter(store, "b", "k", SCHEMA)
        writer.close()
        with pytest.raises(ValueError):
            writer.write_row_group({})


class TestReader:
    def test_full_roundtrip(self, store):
        key = write_sample(store)
        reader = PixelsReader(store, "b", key)
        assert reader.num_rows == 8
        data = reader.read()
        assert data["id"].to_values() == list(range(8))
        assert data["name"].to_values() == [f"n{i}" for i in range(8)]
        assert data["price"].to_values() == [i * 1.5 for i in range(8)]

    def test_schema_exposed(self, store):
        key = write_sample(store)
        reader = PixelsReader(store, "b", key)
        assert reader.schema == SCHEMA
        assert reader.column_type("price") is DataType.DOUBLE
        with pytest.raises(NoSuchColumnError):
            reader.column_type("nope")

    def test_projection_reads_fewer_bytes(self, store):
        key = write_sample(store, groups=4, rows=100)
        before = store.metrics.snapshot()
        PixelsReader(store, "b", key).read(columns=["id"])
        only_id = store.metrics.delta(before).bytes_read
        before = store.metrics.snapshot()
        PixelsReader(store, "b", key).read()
        all_columns = store.metrics.delta(before).bytes_read
        assert only_id < all_columns

    def test_projection_unknown_column(self, store):
        key = write_sample(store)
        with pytest.raises(NoSuchColumnError):
            PixelsReader(store, "b", key).read(columns=["ghost"])

    def test_zone_map_pruning_skips_groups(self, store):
        key = write_sample(store, groups=4, rows=10)  # ids 0..39, 10 per group
        reader = PixelsReader(store, "b", key)
        data = reader.read(columns=["id"], ranges={"id": (35, None)})
        # Only the last group (ids 30..39) can contain ids >= 35.
        assert data["id"].to_values() == list(range(30, 40))

    def test_pruning_reads_fewer_bytes(self, store):
        key = write_sample(store, groups=8, rows=50)
        before = store.metrics.snapshot()
        PixelsReader(store, "b", key).read(columns=["id"], ranges={"id": (390, None)})
        pruned = store.metrics.delta(before).bytes_read
        before = store.metrics.snapshot()
        PixelsReader(store, "b", key).read(columns=["id"])
        full = store.metrics.delta(before).bytes_read
        assert pruned < full

    def test_all_groups_pruned_returns_empty(self, store):
        key = write_sample(store)
        data = PixelsReader(store, "b", key).read(
            columns=["id"], ranges={"id": (1000, None)}
        )
        assert len(data["id"]) == 0

    def test_range_on_unstated_column_is_ignored(self, store):
        key = write_sample(store)
        data = PixelsReader(store, "b", key).read(
            columns=["id"], ranges={"ghost": (0, 1)}
        )
        assert len(data["id"]) == 8


class TestIterGroupsCacheAccounting:
    """Metrics-delta accounting of ``iter_groups`` under buffer-pool hits.

    The billing basis is *logical* bytes: a warm re-scan served entirely
    from the pool must account the full logical byte count while issuing
    zero GETs and reading zero physical bytes."""

    def warm_reader(self, store, groups=4, rows=64):
        from repro.storage.cache import BufferPool

        key = write_sample(store, groups=groups, rows=rows)
        pool = BufferPool(store)
        reader = PixelsReader(store, "b", key, cache=pool)
        for _ in reader.iter_groups():  # fill the pool (cold pass)
            pass
        return reader

    def test_warm_iteration_is_logical_bytes_only(self, store):
        reader = self.warm_reader(store)
        before = store.metrics.snapshot()
        rows = sum(len(group["id"]) for group in reader.iter_groups())
        delta = store.metrics.delta(before)
        assert rows == 4 * 64
        assert delta.get_requests == 0
        assert delta.bytes_read == 0
        assert delta.chunk_cache_hits > 0
        assert delta.logical_bytes_scanned > 0

    def test_warm_logical_bytes_equal_cold_logical_bytes(self, store):
        key = write_sample(store, groups=4, rows=64)
        from repro.storage.cache import BufferPool

        pool = BufferPool(store)
        reader = PixelsReader(store, "b", key, cache=pool)
        before_cold = store.metrics.snapshot()
        for _ in reader.iter_groups(["id", "price"]):
            pass
        cold = store.metrics.delta(before_cold)
        before_warm = store.metrics.snapshot()
        for _ in reader.iter_groups(["id", "price"]):
            pass
        warm = store.metrics.delta(before_warm)
        assert cold.get_requests > 0
        assert warm.get_requests == 0
        assert warm.logical_bytes_scanned == cold.logical_bytes_scanned
        assert warm.bytes_read == 0
        # Request-class accounting: the reader was constructed before the
        # cold snapshot, so every cold GET here is a chunk read.
        assert cold.chunk_get_requests == cold.get_requests
        assert warm.chunk_get_requests == 0

    def test_footer_gets_are_classed(self, store):
        key = write_sample(store)
        before = store.metrics.snapshot()
        PixelsReader(store, "b", key)
        delta = store.metrics.delta(before)
        assert delta.footer_get_requests == 2  # tail probe + footer blob
        assert delta.footer_get_requests == delta.get_requests
        assert delta.chunk_get_requests == 0

    def test_abandoned_warm_iterator_accounts_partially(self, store):
        reader = self.warm_reader(store)
        before = store.metrics.snapshot()
        iterator = reader.iter_groups(["id"])
        next(iterator)  # pull exactly one group, then abandon
        partial = store.metrics.delta(before)
        for _ in iterator:
            pass
        full = store.metrics.delta(before)
        assert 0 < partial.logical_bytes_scanned < full.logical_bytes_scanned
        assert partial.chunk_cache_hits == 1


class TestCorruption:
    def test_truncated_file(self, store):
        store.put("b", "bad", b"PI")
        with pytest.raises(CorruptFileError):
            PixelsReader(store, "b", "bad")

    def test_bad_trailing_magic(self, store):
        key = write_sample(store)
        blob = store.get("b", key).data
        store.put("b", "bad", blob[:-4] + b"XXXX")
        with pytest.raises(CorruptFileError, match="magic"):
            PixelsReader(store, "b", "bad")

    def test_garbage_footer(self, store):
        key = write_sample(store)
        blob = bytearray(store.get("b", key).data)
        # Corrupt bytes inside the footer region.
        blob[-30:-10] = b"\xff" * 20
        store.put("b", "bad", bytes(blob))
        with pytest.raises(CorruptFileError):
            PixelsReader(store, "b", "bad")

    def test_footer_version_check(self):
        footer = FileFooter(0, [("a", DataType.INT)], [])
        blob = footer.to_bytes().replace(
            f'"version":{FORMAT_VERSION}'.encode(), b'"version":99'
        )
        with pytest.raises(CorruptFileError, match="version"):
            FileFooter.from_bytes(blob)


class TestPropertyRoundtripThroughFiles:
    """Whole-table round trips through the file format, hypothesis-driven."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    ROWS = st.lists(
        st.tuples(
            st.one_of(st.integers(-(2**40), 2**40), st.none()),
            st.one_of(st.text(max_size=12), st.none()),
            st.one_of(
                st.floats(allow_nan=False, allow_infinity=False, width=32),
                st.none(),
            ),
            st.one_of(st.booleans(), st.none()),
            st.one_of(st.integers(-10000, 20000), st.none()),  # DATE days
        ),
        max_size=80,
    )

    @settings(max_examples=40, deadline=None)
    @given(rows=ROWS)
    def test_any_table_roundtrips(self, rows):
        from repro.storage.table import TableData, TableReader, TableWriter

        schema = [
            ("big", DataType.BIGINT),
            ("text", DataType.VARCHAR),
            ("real", DataType.DOUBLE),
            ("flag", DataType.BOOLEAN),
            ("day", DataType.DATE),
        ]
        store = ObjectStore()
        store.create_bucket("b")
        table = TableData.from_rows(schema, rows)
        TableWriter(store, "b", "t", rows_per_group=16).write(table)
        result = TableReader(store, "b", "t").scan()
        assert result.data.to_rows() == table.to_rows()

    @settings(max_examples=30, deadline=None)
    @given(
        rows=ROWS,
        low=st.integers(-(2**40), 2**40),
    )
    def test_pruned_scan_is_exact_superset_of_matches(self, rows, low):
        """Zone-map pruning may keep extra rows (groups are coarse) but
        must never lose a matching one."""
        from repro.storage.table import TableData, TableReader, TableWriter

        schema = [("big", DataType.BIGINT), ("text", DataType.VARCHAR)]
        store = ObjectStore()
        store.create_bucket("b")
        table = TableData.from_rows(schema, [(r[0], r[1]) for r in rows])
        TableWriter(store, "b", "t", rows_per_group=8).write(table)
        result = TableReader(store, "b", "t").scan(ranges={"big": (low, None)})
        kept = result.data.column("big").to_values()
        expected = [v for v, _ in [(r[0], r[1]) for r in rows] if v is not None and v >= low]
        for value in expected:
            assert value in kept
