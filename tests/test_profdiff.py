"""Tests for profile diffs and regression root-causing
(repro.obs.profdiff).

A diff must name the operator and the dominant resource behind every
delta, order deltas deterministically, and round-trip attribution trees
through their journal-capture dict form losslessly.
"""

import json

from repro.obs.profdiff import (
    OperatorDelta,
    diff_operator_tables,
    diff_profiles,
    export_diff_json,
    flatten_profile,
    profile_from_dict,
    profile_to_dict,
    render_diff,
)
from repro.obs.profiler import ProfileNode


def tree(scan_time=1.0, scan_bytes=1000, scan_gets=4, scan_nanos=500):
    scan = ProfileNode(
        name="Scan", kind="operator", self_time_s=scan_time,
        bytes_scanned=scan_bytes, get_requests=scan_gets,
        self_nanodollars=scan_nanos,
    )
    agg = ProfileNode(
        name="Aggregate", kind="operator", self_time_s=0.2,
        self_nanodollars=100, children=[scan],
    )
    return ProfileNode(
        name="query", kind="span", self_time_s=0.0, self_nanodollars=25,
        children=[agg],
    )


class TestRoundTrip:
    def test_dict_round_trip(self):
        root = tree()
        restored = profile_from_dict(profile_to_dict(root))
        assert flatten_profile(restored) == flatten_profile(root)

    def test_flatten_paths_join_frames(self):
        flat = flatten_profile(tree())
        assert "query;Aggregate;Scan" in flat
        assert flat["query;Aggregate;Scan"]["bytes_scanned"] == 1000


class TestDiffProfiles:
    def test_identical_trees_no_deltas(self):
        assert diff_profiles(tree(), tree()) == []

    def test_bandwidth_regression_named(self):
        deltas = diff_profiles(
            tree(), tree(scan_bytes=5000, scan_nanos=2000)
        )
        assert deltas
        top = deltas[0]
        assert top.path.endswith("Scan")
        assert top.resource == "bandwidth"
        assert top.regressed
        assert top.nanodollar_delta == 1500

    def test_request_regression_named(self):
        deltas = diff_profiles(tree(), tree(scan_gets=400))
        assert deltas[0].resource == "requests"

    def test_compute_regression_named(self):
        deltas = diff_profiles(tree(), tree(scan_time=10.0))
        assert deltas[0].resource == "compute"

    def test_pricing_only_change(self):
        deltas = diff_profiles(tree(), tree(scan_nanos=900))
        assert deltas[0].resource == "pricing"

    def test_ordering_by_dollar_magnitude(self):
        base = tree()
        fresh = tree(scan_nanos=600)  # +100 on Scan
        fresh.children[0].self_nanodollars += 1000  # +1000 on Aggregate
        deltas = diff_profiles(base, fresh)
        assert [d.path.rsplit(";", 1)[-1] for d in deltas] == [
            "Aggregate", "Scan",
        ]

    def test_operator_only_on_one_side(self):
        fresh = tree()
        fresh.children[0].children.append(
            ProfileNode(name="Filter", kind="operator", self_time_s=0.5,
                        self_nanodollars=50)
        )
        deltas = diff_profiles(tree(), fresh)
        assert any(d.path.endswith("Filter") for d in deltas)

    def test_accepts_dict_inputs(self):
        deltas = diff_profiles(
            profile_to_dict(tree()), profile_to_dict(tree(scan_bytes=2000))
        )
        assert deltas and deltas[0].resource == "bandwidth"


class TestDiffOperatorTables:
    def _section(self, scan_bytes=1000, scan_nanos=500):
        return {
            "operators": {
                "Scan": {
                    "time_s": 1.0,
                    "nanodollars": scan_nanos,
                    "bytes_scanned": scan_bytes,
                    "get_requests": 4,
                },
                "Aggregate": {
                    "time_s": 0.2,
                    "nanodollars": 100,
                    "bytes_scanned": 0,
                    "get_requests": 0,
                },
            }
        }

    def test_bench_record_sections_diff(self):
        deltas = diff_operator_tables(
            self._section(), self._section(scan_bytes=9000, scan_nanos=4500)
        )
        assert len(deltas) == 1
        assert deltas[0].path == "Scan"
        assert deltas[0].resource == "bandwidth"

    def test_empty_sections(self):
        assert diff_operator_tables({}, {}) == []


class TestRendering:
    def test_render_names_operator_and_resource(self):
        deltas = diff_profiles(tree(), tree(scan_bytes=5000, scan_nanos=2000))
        text = render_diff(deltas, prefix="c5: ")
        assert "c5: Scan regressed in bandwidth" in text
        assert "attributed +0.000001500 $" in text

    def test_render_improvement(self):
        deltas = diff_profiles(tree(scan_time=10.0), tree(scan_time=1.0))
        assert "improved in compute" in render_diff(deltas)

    def test_render_empty(self):
        assert "(no per-operator deltas)" in render_diff([])

    def test_render_zero_base_axis_reads_new(self):
        deltas = diff_profiles(
            tree(scan_gets=0), tree(scan_gets=3, scan_nanos=600)
        )
        assert "GETs 0 -> 3 (new)" in render_diff(deltas)

    def test_export_json_byte_stable(self):
        deltas = diff_profiles(tree(), tree(scan_bytes=5000))
        first = export_diff_json(deltas)
        second = export_diff_json(deltas)
        assert first == second
        parsed = json.loads(first)
        assert parsed[0]["resource"] == "bandwidth"
        assert parsed[0]["bytes_scanned"] == {"base": 1000, "fresh": 5000}


class TestDeterministicTieBreak:
    """Equal-magnitude deltas order by leaf operator name, not by the
    full attribution path — so the rendered diff reads operator-first
    and is independent of tree insertion order."""

    def _forked(self, nanos, swap=False):
        zscan = ProfileNode(
            name="ZScan", kind="operator", self_time_s=1.0,
            self_nanodollars=nanos,
        )
        ascan = ProfileNode(
            name="AScan", kind="operator", self_time_s=1.0,
            self_nanodollars=nanos,
        )
        agg = ProfileNode(
            name="Agg", kind="operator", self_time_s=0.1,
            self_nanodollars=10, children=[zscan],
        )
        sort = ProfileNode(
            name="Sort", kind="operator", self_time_s=0.1,
            self_nanodollars=10, children=[ascan],
        )
        children = [sort, agg] if swap else [agg, sort]
        return ProfileNode(
            name="query", kind="span", self_time_s=0.0,
            self_nanodollars=0, children=children,
        )

    def test_equal_deltas_order_by_leaf_operator_name(self):
        # Both scans regress by exactly +500 nanodollars with zero time
        # delta.  Full-path order would put "query;Agg;ZScan" before
        # "query;Sort;AScan"; the leaf-name tie-break puts AScan first.
        deltas = diff_profiles(self._forked(500), self._forked(1000))
        leaves = [d.path.rsplit(";", 1)[-1] for d in deltas]
        assert leaves == sorted(leaves)
        assert leaves[0] == "AScan"
        assert leaves.index("AScan") < leaves.index("ZScan")

    def test_order_independent_of_tree_insertion_order(self):
        straight = diff_profiles(self._forked(500), self._forked(1000))
        swapped = diff_profiles(
            self._forked(500, swap=True), self._forked(1000, swap=True)
        )
        assert straight == swapped
        assert export_diff_json(straight) == export_diff_json(swapped)

    def test_table_ties_order_by_name(self):
        def section(nanos):
            return {
                "operators": {
                    name: {
                        "time_s": 1.0,
                        "nanodollars": nanos,
                        "bytes_scanned": 0,
                        "get_requests": 0,
                    }
                    for name in ("Zeta", "Alpha")
                }
            }

        deltas = diff_operator_tables(section(100), section(300))
        assert [d.path for d in deltas] == ["Alpha", "Zeta"]


class TestOperatorDelta:
    def test_regressed_flag(self):
        up = OperatorDelta(
            path="Scan", resource="bandwidth", time_base_s=1.0,
            time_fresh_s=1.0, nanodollars_base=100, nanodollars_fresh=200,
            bytes_base=0, bytes_fresh=0, gets_base=0, gets_fresh=0,
        )
        down = OperatorDelta(
            path="Scan", resource="bandwidth", time_base_s=1.0,
            time_fresh_s=0.5, nanodollars_base=200, nanodollars_fresh=100,
            bytes_base=0, bytes_fresh=0, gets_base=0, gets_fresh=0,
        )
        assert up.regressed
        assert not down.regressed
        assert up.dollar_delta == 1e-7
