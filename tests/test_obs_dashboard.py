"""Tests for the operator dashboard renderers (repro.obs.dashboard)."""

from repro import PixelsDB, ServiceLevel
from repro.obs.alerts import AlertEvent
from repro.obs.dashboard import (
    DashboardData,
    _sparkline_svg,
    _sparkline_text,
    render_dashboard_html,
    render_dashboard_text,
)


def _demo_session() -> PixelsDB:
    db = PixelsDB(observe=True, seed=7, scrape_interval_s=15.0)
    db.load_tpch("tpch", scale=0.01)
    db.submit("tpch", "SELECT COUNT(*) FROM nation", ServiceLevel.IMMEDIATE)
    db.submit(
        "tpch",
        "SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment",
        ServiceLevel.RELAXED,
    )
    db.submit("tpch", "SELECT COUNT(*) FROM region", ServiceLevel.BEST_EFFORT)
    db.run_to_completion()
    return db


class TestDeterminism:
    def test_same_seed_renders_identical_bytes(self):
        first, second = _demo_session(), _demo_session()
        assert first.dashboard_html() == second.dashboard_html()
        assert first.dashboard_text() == second.dashboard_text()
        assert first.timeseries_jsonl() == second.timeseries_jsonl()
        assert first.slo_json() == second.slo_json()

    def test_render_is_a_pure_function_of_data(self):
        db = _demo_session()
        data = db.dashboard_data()
        assert render_dashboard_html(data) == render_dashboard_html(data)


class TestHtmlContent:
    def test_self_contained_document(self):
        html = _demo_session().dashboard_html()
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html
        assert "<svg" in html  # sparklines are inline
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html

    def test_compliance_table_lists_all_levels(self):
        html = _demo_session().dashboard_html()
        for level in ("immediate", "relaxed", "best_effort"):
            assert f'<td class="l">{level}</td>' in html
        assert "100.00%" in html  # all deadlines met in the tiny session
        assert "billed $" in html

    def test_title_is_escaped(self):
        db = _demo_session()
        html = db.dashboard_html(title="<b>sneaky & unsafe</b>")
        assert "<b>sneaky" not in html
        assert "&lt;b&gt;sneaky &amp; unsafe&lt;/b&gt;" in html

    def test_alert_timeline_rendered_from_events(self):
        data = DashboardData(title="t", generated_at=100.0)
        data.alerts = [
            AlertEvent(30.0, "queue", "firing", 25.0, "depth > 20"),
            AlertEvent(90.0, "queue", "resolved", 0.0, "depth > 20"),
        ]
        data.firing = []
        html = render_dashboard_html(data)
        assert '<td class="l">queue</td>' in html
        assert "firing" in html and "resolved" in html
        assert "depth &gt; 20" in html

    def test_empty_data_still_renders(self):
        data = DashboardData(title="empty", generated_at=0.0)
        html = render_dashboard_html(data)
        assert "no alerts fired" in html
        assert "no scaling decisions recorded" in html
        text = render_dashboard_text(data)
        assert "(none)" in text


class TestTextContent:
    def test_sections_present(self):
        text = _demo_session().dashboard_text()
        for heading in ("service levels", "cluster over time", "alerts",
                        "autoscaler decisions"):
            assert heading in text

    def test_unicode_sparkline_bounds(self):
        samples = [(float(i), float(v)) for i, v in
                   enumerate([0, 1, 2, 3, 4, 5, 6, 7])]
        spark = _sparkline_text(samples)
        assert spark[0] == "▁"
        assert spark[-1] == "█"
        assert len(spark) == 8

    def test_sparkline_downsamples_to_width(self):
        samples = [(float(i), float(i % 9)) for i in range(400)]
        assert len(_sparkline_text(samples, width=40)) == 40

    def test_svg_sparkline_handles_edge_shapes(self):
        assert _sparkline_svg([]) == '<svg class="spark" viewBox="0 0 220 42"></svg>'
        flat = _sparkline_svg([(0.0, 5.0), (10.0, 5.0)])
        assert "polyline" in flat  # constant series stays in-bounds


class TestSchedulerPanel:
    def test_html_scheduler_section(self):
        db = _demo_session()
        html = render_dashboard_html(db.dashboard_data("demo"))
        assert "Scheduler" in html
        assert "admitted" in html
        assert "WFQ dispatches" in html

    def test_text_scheduler_section(self):
        db = _demo_session()
        text = render_dashboard_text(db.dashboard_data("demo"))
        assert "scheduler" in text

    def test_empty_scheduler_omits_panel(self):
        from repro.obs.timeseries import TimeSeriesStore

        data = DashboardData.build(
            title="empty", now=0.0, timeseries=TimeSeriesStore(), slo=None
        )
        assert data.scheduler == {}
        html = render_dashboard_html(data)
        assert "WFQ dispatches" not in html
