"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.engine.sql import ast
from repro.engine.sql.parser import parse_sql


class TestSelectBasics:
    def test_simple_select(self):
        stmt = parse_sql("SELECT a, b FROM t")
        assert len(stmt.items) == 2
        assert stmt.items[0].expr == ast.ColumnRef("a")
        assert isinstance(stmt.from_clause, ast.TableRef)
        assert stmt.from_clause.name == "t"

    def test_select_star(self):
        stmt = parse_sql("SELECT * FROM t")
        assert stmt.items[0].expr == ast.Star()

    def test_select_qualified_star(self):
        stmt = parse_sql("SELECT t.* FROM t")
        assert stmt.items[0].expr == ast.Star(table="t")

    def test_aliases(self):
        stmt = parse_sql("SELECT a AS x, b y FROM t z")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_clause.alias == "z"

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct

    def test_semicolon_ok(self):
        parse_sql("SELECT a FROM t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_sql("SELECT a FROM t garbage more")

    def test_missing_select(self):
        with pytest.raises(ParseError):
            parse_sql("FROM t")

    def test_parse_error_has_position(self):
        with pytest.raises(ParseError) as info:
            parse_sql("SELECT FROM t")
        assert info.value.position is not None


class TestClauses:
    def test_where(self):
        stmt = parse_sql("SELECT a FROM t WHERE a > 5")
        assert isinstance(stmt.where, ast.Binary)
        assert stmt.where.op == ">"

    def test_group_by_having(self):
        stmt = parse_sql(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2"
        )
        assert stmt.group_by == (ast.ColumnRef("a"),)
        assert stmt.having is not None

    def test_order_by_directions(self):
        stmt = parse_sql("SELECT a, b FROM t ORDER BY a DESC, b ASC, a")
        assert [o.ascending for o in stmt.order_by] == [False, True, True]

    def test_limit_offset(self):
        stmt = parse_sql("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert stmt.limit == 10
        assert stmt.offset == 5

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a FROM t LIMIT 1.5")


class TestJoins:
    def test_inner_join(self):
        stmt = parse_sql("SELECT * FROM a JOIN b ON a.x = b.x")
        join = stmt.from_clause
        assert isinstance(join, ast.Join)
        assert join.kind is ast.JoinKind.INNER

    def test_inner_keyword(self):
        stmt = parse_sql("SELECT * FROM a INNER JOIN b ON a.x = b.x")
        assert stmt.from_clause.kind is ast.JoinKind.INNER

    def test_left_join(self):
        stmt = parse_sql("SELECT * FROM a LEFT JOIN b ON a.x = b.x")
        assert stmt.from_clause.kind is ast.JoinKind.LEFT

    def test_left_outer_join(self):
        stmt = parse_sql("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x")
        assert stmt.from_clause.kind is ast.JoinKind.LEFT

    def test_comma_join_becomes_cross(self):
        stmt = parse_sql("SELECT * FROM a, b WHERE a.x = b.x")
        join = stmt.from_clause
        assert isinstance(join, ast.Join)
        assert join.condition == ast.Literal(True)

    def test_join_chain_left_deep(self):
        stmt = parse_sql(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y"
        )
        outer = stmt.from_clause
        assert isinstance(outer.left, ast.Join)
        assert outer.right.name == "c"

    def test_join_requires_on(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT * FROM a JOIN b")


class TestExpressions:
    def expr(self, text):
        return parse_sql(f"SELECT {text} FROM t").items[0].expr

    def test_precedence_arithmetic(self):
        expr = self.expr("1 + 2 * 3")
        assert expr == ast.Binary(
            "+", ast.Literal(1), ast.Binary("*", ast.Literal(2), ast.Literal(3))
        )

    def test_precedence_and_or(self):
        expr = parse_sql("SELECT a FROM t WHERE x OR y AND z").where
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_parentheses(self):
        expr = self.expr("(1 + 2) * 3")
        assert expr.op == "*"

    def test_not(self):
        expr = parse_sql("SELECT a FROM t WHERE NOT x = 1").where
        assert isinstance(expr, ast.Unary)
        assert expr.op == "not"

    def test_unary_minus(self):
        assert self.expr("-a") == ast.Unary("-", ast.ColumnRef("a"))

    def test_unary_plus_dropped(self):
        assert self.expr("+a") == ast.ColumnRef("a")

    def test_between(self):
        expr = self.expr("a BETWEEN 1 AND 10")
        assert expr == ast.Between(ast.ColumnRef("a"), ast.Literal(1), ast.Literal(10))

    def test_not_between(self):
        expr = self.expr("a NOT BETWEEN 1 AND 10")
        assert expr.negated

    def test_in_list(self):
        expr = self.expr("a IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_not_in(self):
        assert self.expr("a NOT IN (1)").negated

    def test_like(self):
        expr = self.expr("a LIKE '%x%'")
        assert isinstance(expr, ast.Like)

    def test_is_null_and_not_null(self):
        assert self.expr("a IS NULL") == ast.IsNull(ast.ColumnRef("a"))
        assert self.expr("a IS NOT NULL").negated

    def test_literals(self):
        assert self.expr("42") == ast.Literal(42)
        assert self.expr("4.5") == ast.Literal(4.5)
        assert self.expr("'hi'") == ast.Literal("hi")
        assert self.expr("TRUE") == ast.Literal(True)
        assert self.expr("NULL") == ast.Literal(None)

    def test_date_literal(self):
        assert self.expr("DATE '1995-01-01'") == ast.Literal(
            "1995-01-01", is_date=True
        )

    def test_interval_days(self):
        assert self.expr("INTERVAL '90' DAY") == ast.Literal(90)

    def test_interval_months_years(self):
        assert self.expr("INTERVAL '3' MONTH") == ast.Literal(90)
        assert self.expr("INTERVAL '1' YEAR") == ast.Literal(365)

    def test_interval_bad_unit(self):
        with pytest.raises(ParseError):
            self.expr("INTERVAL '1' FORTNIGHT")

    def test_case(self):
        expr = self.expr("CASE WHEN a > 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expr, ast.Case)
        assert len(expr.whens) == 1
        assert expr.else_ == ast.Literal("y")

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            self.expr("CASE END")

    def test_cast(self):
        expr = self.expr("CAST(a AS double)")
        assert expr == ast.Cast(ast.ColumnRef("a"), "double")

    def test_count_star(self):
        expr = self.expr("count(*)")
        assert expr == ast.FunctionCall("count", (ast.Star(),))

    def test_count_distinct(self):
        expr = self.expr("count(DISTINCT a)")
        assert expr.distinct

    def test_function_multiple_args(self):
        expr = self.expr("coalesce(a, b, 0)")
        assert len(expr.args) == 3

    def test_qualified_column(self):
        assert self.expr("t.a") == ast.ColumnRef("a", table="t")

    def test_string_concat(self):
        expr = self.expr("a || 'x'")
        assert expr.op == "||"

    def test_not_equal_normalized(self):
        expr = parse_sql("SELECT a FROM t WHERE a != 1").where
        assert expr.op == "<>"


class TestToSqlRoundtrip:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a, b AS x FROM t WHERE (a > 5) ORDER BY b DESC LIMIT 3",
            "SELECT count(*) FROM t GROUP BY a HAVING (count(*) > 1)",
            "SELECT * FROM a JOIN b ON (a.x = b.x)",
            "SELECT CASE WHEN (a = 1) THEN 'x' ELSE 'y' END FROM t",
            "SELECT DISTINCT a FROM t",
        ],
    )
    def test_parse_render_parse_fixpoint(self, sql):
        first = parse_sql(sql)
        rendered = first.to_sql()
        second = parse_sql(rendered)
        assert second.to_sql() == rendered
