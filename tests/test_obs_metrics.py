"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs import MetricsRegistry, NoopMetricsRegistry
from repro.obs.metrics import NOOP_INSTRUMENT


class TestCounter:
    def test_inc_and_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "requests")
        counter.inc()
        counter.inc(2, venue="vm")
        counter.inc(3, venue="vm")
        assert counter.value() == 1
        assert counter.value(venue="vm") == 5
        assert counter.value(venue="cf") == 0

    def test_cannot_decrease(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_set_total_overwrites(self):
        counter = MetricsRegistry().counter("c")
        counter.set_total(41, kind="get")
        counter.set_total(42, kind="get")
        assert counter.value(kind="get") == 42

    def test_label_order_is_irrelevant(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(1, a="x", b="y")
        assert gauge.value(b="y", a="x") == 1


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4


class TestHistogram:
    def test_observe_counts_and_sums(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(100.0)
        assert hist.count() == 3
        assert hist.sum() == 105.5

    def test_render_has_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "latency", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        text = registry.render()
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="10"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_sum 5.5" in text
        assert "lat_seconds_count 2" in text

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_render_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "bees").inc(2, hive="a")
        registry.gauge("a_depth").set(3)
        text = registry.render()
        lines = text.splitlines()
        # Sorted by metric name, HELP/TYPE precede samples.
        assert lines[0] == "# TYPE a_depth gauge"
        assert lines[1] == "a_depth 3"
        assert lines[2] == "# HELP b_total bees"
        assert lines[3] == "# TYPE b_total counter"
        assert lines[4] == 'b_total{hive="a"} 2'
        assert text.endswith("\n")

    def test_collectors_run_at_render(self):
        registry = MetricsRegistry()
        depth = registry.gauge("queue_depth")
        queue = [1, 2, 3]
        registry.add_collector(lambda: depth.set(len(queue)))
        assert "queue_depth 3" in registry.render()
        queue.append(4)
        assert "queue_depth 4" in registry.render()


class TestExpositionEscaping:
    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("q_total")
        counter.inc(1, sql='SELECT "x"\nFROM t\\u')
        text = registry.render()
        assert 'q_total{sql="SELECT \\"x\\"\\nFROM t\\\\u"} 1' in text
        # The exposition stays line-oriented: no raw newline leaked.
        assert all(
            line.startswith(("#", "q_total")) for line in text.splitlines()
        )

    def test_help_text_is_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "first\nsecond \\ third").inc()
        text = registry.render()
        assert "# HELP c_total first\\nsecond \\\\ third" in text

    def test_samples_are_deterministically_ordered(self):
        def build() -> str:
            registry = MetricsRegistry()
            counter = registry.counter("z_total")
            # Insert label sets in shuffled order.
            counter.inc(1, venue="vm", level="relaxed")
            counter.inc(1, level="immediate", venue="cf")
            registry.gauge("a_depth").set(2, level="b")
            registry.gauge("a_depth").set(1, level="a")
            return registry.render()

        text = build()
        assert text == build()
        lines = [line for line in text.splitlines() if not line.startswith("#")]
        assert lines == sorted(lines)

    def test_instruments_listing_is_sorted_and_public(self):
        registry = MetricsRegistry()
        registry.gauge("b")
        registry.counter("a_total")
        registry.histogram("c_seconds", buckets=(1.0,))
        assert [i.name for i in registry.instruments()] == [
            "a_total", "b", "c_seconds",
        ]


class TestNoopRegistry:
    def test_swallows_everything(self):
        registry = NoopMetricsRegistry()
        assert not registry.enabled
        counter = registry.counter("c")
        assert counter is NOOP_INSTRUMENT
        counter.inc(5)
        assert counter.value() == 0
        registry.gauge("g").set(7)
        registry.histogram("h").observe(1.0)
        registry.add_collector(lambda: 1 / 0)  # never runs
        assert registry.render() == ""
