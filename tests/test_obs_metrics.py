"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs import MetricsRegistry, NoopMetricsRegistry
from repro.obs.metrics import NOOP_INSTRUMENT


class TestCounter:
    def test_inc_and_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "requests")
        counter.inc()
        counter.inc(2, venue="vm")
        counter.inc(3, venue="vm")
        assert counter.value() == 1
        assert counter.value(venue="vm") == 5
        assert counter.value(venue="cf") == 0

    def test_cannot_decrease(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_set_total_overwrites(self):
        counter = MetricsRegistry().counter("c")
        counter.set_total(41, kind="get")
        counter.set_total(42, kind="get")
        assert counter.value(kind="get") == 42

    def test_label_order_is_irrelevant(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(1, a="x", b="y")
        assert gauge.value(b="y", a="x") == 1


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4


class TestHistogram:
    def test_observe_counts_and_sums(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(100.0)
        assert hist.count() == 3
        assert hist.sum() == 105.5

    def test_render_has_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "latency", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        text = registry.render()
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="10"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_sum 5.5" in text
        assert "lat_seconds_count 2" in text

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=())


class TestHistogramQuantile:
    def make(self, values, buckets=(1.0, 5.0, 10.0)):
        hist = MetricsRegistry().histogram("lat", buckets=buckets)
        for value in values:
            hist.observe(value)
        return hist

    def test_empty_histogram_returns_none(self):
        assert self.make([]).quantile(0.5) is None

    def test_interpolates_within_bucket(self):
        # 4 observations in (1, 5]: rank 2 of 4 -> midpoint of the bucket.
        hist = self.make([2.0, 3.0, 4.0, 4.5])
        assert hist.quantile(0.5) == pytest.approx(3.0)

    def test_first_bucket_lower_bound_is_zero(self):
        # All mass in the first bucket: interpolation starts at 0, the
        # Prometheus histogram_quantile convention.
        hist = self.make([0.5, 0.5])
        assert 0.0 <= hist.quantile(0.5) <= 1.0

    def test_beyond_last_finite_bucket_clamps(self):
        hist = self.make([100.0, 200.0])
        assert hist.quantile(0.99) == 10.0

    def test_p50_p95_p99_ordering(self):
        hist = self.make([0.5] * 90 + [7.0] * 9 + [100.0])
        p50 = hist.quantile(0.50)
        p95 = hist.quantile(0.95)
        p99 = hist.quantile(0.99)
        assert p50 <= p95 <= p99
        assert p50 <= 1.0
        assert 5.0 <= p95 <= 10.0

    def test_labels_are_independent(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0))
        hist.observe(0.5, level="immediate")
        hist.observe(9.0, level="relaxed")
        assert hist.quantile(0.5, level="immediate") <= 1.0
        assert hist.quantile(0.5, level="relaxed") > 1.0
        assert hist.quantile(0.5, level="best_effort") is None

    def test_rejects_out_of_range_q(self):
        hist = self.make([1.0])
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)

    def test_noop_registry_returns_none(self):
        hist = NoopMetricsRegistry().histogram("lat", buckets=(1.0,))
        assert hist.quantile(0.5) is None


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_render_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "bees").inc(2, hive="a")
        registry.gauge("a_depth").set(3)
        text = registry.render()
        lines = text.splitlines()
        # Sorted by metric name, HELP/TYPE precede samples.
        assert lines[0] == "# TYPE a_depth gauge"
        assert lines[1] == "a_depth 3"
        assert lines[2] == "# HELP b_total bees"
        assert lines[3] == "# TYPE b_total counter"
        assert lines[4] == 'b_total{hive="a"} 2'
        assert text.endswith("\n")

    def test_collectors_run_at_render(self):
        registry = MetricsRegistry()
        depth = registry.gauge("queue_depth")
        queue = [1, 2, 3]
        registry.add_collector(lambda: depth.set(len(queue)))
        assert "queue_depth 3" in registry.render()
        queue.append(4)
        assert "queue_depth 4" in registry.render()


class TestExpositionEscaping:
    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("q_total")
        counter.inc(1, sql='SELECT "x"\nFROM t\\u')
        text = registry.render()
        assert 'q_total{sql="SELECT \\"x\\"\\nFROM t\\\\u"} 1' in text
        # The exposition stays line-oriented: no raw newline leaked.
        assert all(
            line.startswith(("#", "q_total")) for line in text.splitlines()
        )

    def test_help_text_is_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "first\nsecond \\ third").inc()
        text = registry.render()
        assert "# HELP c_total first\\nsecond \\\\ third" in text

    def test_samples_are_deterministically_ordered(self):
        def build() -> str:
            registry = MetricsRegistry()
            counter = registry.counter("z_total")
            # Insert label sets in shuffled order.
            counter.inc(1, venue="vm", level="relaxed")
            counter.inc(1, level="immediate", venue="cf")
            registry.gauge("a_depth").set(2, level="b")
            registry.gauge("a_depth").set(1, level="a")
            return registry.render()

        text = build()
        assert text == build()
        lines = [line for line in text.splitlines() if not line.startswith("#")]
        assert lines == sorted(lines)

    def test_instruments_listing_is_sorted_and_public(self):
        registry = MetricsRegistry()
        registry.gauge("b")
        registry.counter("a_total")
        registry.histogram("c_seconds", buckets=(1.0,))
        assert [i.name for i in registry.instruments()] == [
            "a_total", "b", "c_seconds",
        ]


class TestNoopRegistry:
    def test_swallows_everything(self):
        registry = NoopMetricsRegistry()
        assert not registry.enabled
        counter = registry.counter("c")
        assert counter is NOOP_INSTRUMENT
        counter.inc(5)
        assert counter.value() == 0
        registry.gauge("g").set(7)
        registry.histogram("h").observe(1.0)
        registry.add_collector(lambda: 1 / 0)  # never runs
        assert registry.render() == ""


class TestHistogramQuantileEdgeCases:
    """Regression pins for the five documented edge semantics."""

    def make(self, values, buckets=(1.0, 5.0, 10.0)):
        hist = MetricsRegistry().histogram("lat", buckets=buckets)
        for value in values:
            hist.observe(value)
        return hist

    def test_never_observed_label_set_returns_none(self):
        hist = self.make([1.0])
        assert hist.quantile(0.5, level="ghost") is None

    def test_q_zero_lands_in_first_occupied_bucket(self):
        # First occupied bucket is (1, 5]: q=0 returns its lower edge,
        # never 0 (the first bucket is empty).
        hist = self.make([2.0, 3.0, 9.0])
        assert hist.quantile(0.0) == pytest.approx(1.0)

    def test_q_zero_all_mass_in_first_bucket(self):
        hist = self.make([0.5, 0.7])
        assert hist.quantile(0.0) == pytest.approx(0.0)

    def test_q_one_returns_last_occupied_finite_bucket_bound(self):
        hist = self.make([0.5, 2.0])
        assert hist.quantile(1.0) == pytest.approx(5.0)

    def test_q_one_with_overflow_clamps_to_largest_finite_bound(self):
        hist = self.make([0.5, 100.0])
        assert hist.quantile(1.0) == pytest.approx(10.0)

    def test_single_bucket_all_overflow(self):
        # Every observation beyond the only finite bucket: any q clamps
        # to that bound instead of interpolating past it.
        hist = self.make([7.0, 8.0], buckets=(1.0,))
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(1.0)

    def test_single_bucket_all_inside(self):
        hist = self.make([0.2, 0.4], buckets=(1.0,))
        assert hist.quantile(1.0) == pytest.approx(1.0)
        assert hist.quantile(0.0) == pytest.approx(0.0)

    def test_empty_middle_bucket_skipped(self):
        # Mass in (0,1] and (5,10] only; ranks falling past the empty
        # (1,5] bucket interpolate inside (5,10], never divide by zero.
        hist = self.make([0.5, 0.6, 7.0, 8.0])
        assert 5.0 <= hist.quantile(0.9) <= 10.0

    def test_negative_observations_use_bucket_lower_edge(self):
        # A histogram whose first bucket bound is negative must not
        # interpolate from 0 (which would lie above the bound).
        hist = self.make([-3.0, -2.0], buckets=(-1.0, 1.0))
        q = hist.quantile(0.5)
        assert q <= -1.0


class TestCardinalityGuard:
    def test_new_series_beyond_cap_dropped(self):
        registry = MetricsRegistry(max_label_sets=2)
        counter = registry.counter("pixels_requests_total")
        counter.inc(level="a")
        counter.inc(level="b")
        counter.inc(level="c")  # over the cap: dropped
        assert counter.value(level="a") == 1
        assert counter.value(level="c") == 0
        dropped = registry.get("pixels_metrics_dropped_series_total")
        assert dropped is not None
        assert dropped.value(metric="pixels_requests_total") == 1

    def test_existing_series_always_updatable(self):
        registry = MetricsRegistry(max_label_sets=1)
        gauge = registry.gauge("pixels_depth")
        gauge.set(1, level="a")
        gauge.set(5, level="a")  # update, not a new series
        gauge.inc(level="a")
        assert gauge.value(level="a") == 6
        gauge.set(9, level="b")  # new series over the cap
        assert gauge.value(level="b") == 0

    def test_histogram_guarded(self):
        registry = MetricsRegistry(max_label_sets=1)
        hist = registry.histogram("pixels_lat", buckets=(1.0,))
        hist.observe(0.5, level="a")
        hist.observe(0.5, level="b")
        assert hist.count(level="a") == 1
        assert hist.count(level="b") == 0
        dropped = registry.get("pixels_metrics_dropped_series_total")
        assert dropped.value(metric="pixels_lat") == 1

    def test_drop_counter_absent_until_first_drop(self):
        registry = MetricsRegistry(max_label_sets=4)
        registry.counter("ok_total").inc(level="a")
        assert registry.get("pixels_metrics_dropped_series_total") is None
        assert "dropped_series" not in registry.render()

    def test_drop_counter_itself_uncapped(self):
        registry = MetricsRegistry(max_label_sets=1)
        for index in range(3):
            instrument = registry.counter(f"m{index}_total")
            instrument.inc(level="a")
            instrument.inc(level="b")  # each drops once
        dropped = registry.get("pixels_metrics_dropped_series_total")
        assert sum(v for _, _, v in dropped.samples()) == 3

    def test_unlimited_when_cap_disabled(self):
        registry = MetricsRegistry(max_label_sets=None)
        counter = registry.counter("wide_total")
        for index in range(600):
            counter.inc(fingerprint=f"fp{index}")
        assert len(counter.samples()) == 600

    def test_default_cap_applied_by_registry(self):
        registry = MetricsRegistry()
        counter = registry.counter("default_total")
        from repro.obs.metrics import DEFAULT_MAX_LABEL_SETS

        assert counter.max_series == DEFAULT_MAX_LABEL_SETS

    def test_standalone_instruments_stay_uncapped(self):
        from repro.obs.metrics import Histogram

        hist = Histogram("loose", buckets=(1.0,))
        for index in range(300):
            hist.observe(0.5, series=str(index))
        assert hist.count(series="299") == 1
