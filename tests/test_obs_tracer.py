"""Unit tests for the span tracer (repro.obs.tracer)."""

import json

from repro.obs import NOOP_SPAN, ROOT, NoopTracer, Tracer


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestSpanLifecycle:
    def test_start_and_finish_stamp_the_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        span = tracer.start("q1", "execute", venue="vm")
        clock.now = 2.5
        span.finish("ok", bytes_scanned=10)
        assert span.start == 0.0
        assert span.end == 2.5
        assert span.duration_s == 2.5
        assert span.status == "ok"
        assert span.attributes == {"venue": "vm", "bytes_scanned": 10}

    def test_finish_is_idempotent(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        span = tracer.start("q1", "a")
        clock.now = 1.0
        span.finish("error", error="boom")
        clock.now = 5.0
        span.finish("ok")  # no-op: already closed
        assert span.end == 1.0
        assert span.status == "error"

    def test_set_chains_attributes(self):
        tracer = Tracer()
        span = tracer.start("q1", "a").set(x=1).set(y=2)
        assert span.attributes == {"x": 1, "y": 2}


class TestParenting:
    def test_implicit_parent_is_innermost_open_span(self):
        tracer = Tracer()
        outer = tracer.start("q1", "outer")
        inner = tracer.start("q1", "inner")
        leaf = tracer.start("q1", "leaf")
        assert inner.parent_id == outer.span_id
        assert leaf.parent_id == inner.span_id

    def test_finishing_pops_the_stack(self):
        tracer = Tracer()
        outer = tracer.start("q1", "outer")
        tracer.start("q1", "first").finish()
        second = tracer.start("q1", "second")
        assert second.parent_id == outer.span_id

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        a = tracer.start("q1", "a")
        tracer.start("q1", "b")
        child_of_a = tracer.start("q1", "c", parent=a)
        assert child_of_a.parent_id == a.span_id

    def test_root_sentinel_forces_a_root(self):
        tracer = Tracer()
        tracer.start("q1", "open")
        forced = tracer.start("q1", "root2", parent=ROOT)
        assert forced.parent_id is None

    def test_traces_are_independent(self):
        tracer = Tracer()
        tracer.start("q1", "a")
        other = tracer.start("q2", "b")
        assert other.parent_id is None


class TestEndOpen:
    def test_closes_innermost_first_and_counts(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        tracer.start("q1", "outer")
        tracer.start("q1", "inner")
        clock.now = 3.0
        assert tracer.end_open("q1", "cancelled", error="stop") == 2
        statuses = [s.status for s in tracer.spans("q1")]
        assert statuses == ["cancelled", "cancelled"]
        assert all(s.end == 3.0 for s in tracer.spans("q1"))
        assert tracer.open_spans("q1") == []

    def test_composes_with_explicit_finish(self):
        tracer = Tracer()
        span = tracer.start("q1", "a")
        span.finish("ok")
        assert tracer.end_open("q1", "error") == 0
        assert span.status == "ok"


class TestExport:
    def test_timeline_nests_children(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        root = tracer.start("q1", "query")
        tracer.start("q1", "plan").finish()
        clock.now = 1.0
        root.finish()
        timeline = tracer.timeline("q1")
        assert timeline["trace_id"] == "q1"
        assert [s["name"] for s in timeline["spans"]] == ["query"]
        assert [c["name"] for c in timeline["spans"][0]["children"]] == ["plan"]

    def test_export_json_is_deterministic(self):
        def run():
            clock = FakeClock()
            tracer = Tracer(clock)
            root = tracer.start("q1", "query", level="relaxed")
            clock.now = 0.5
            tracer.start("q1", "scan", bytes=7).finish()
            clock.now = 2.0
            root.finish()
            return tracer.export_json("q1")

        assert run() == run()
        json.loads(run())  # valid JSON

    def test_export_all_sorts_by_trace_id(self):
        tracer = Tracer()
        tracer.start("q2", "b").finish()
        tracer.start("q1", "a").finish()
        doc = json.loads(tracer.export_all_json())
        assert [t["trace_id"] for t in doc] == ["q1", "q2"]


class TestNoopTracer:
    def test_records_nothing(self):
        tracer = NoopTracer()
        assert not tracer.enabled
        span = tracer.start("q1", "a", x=1)
        assert span is NOOP_SPAN
        span.set(y=2)
        span.finish("error")
        assert span.attributes == {}
        assert tracer.trace_ids() == []
        assert tracer.end_open("q1") == 0
        assert json.loads(tracer.export_all_json()) == []
