"""Tests for the extended SQL surface: simple CASE, EXTRACT, UNION ALL,
and [NOT] IN (SELECT ...) subqueries planned as semi/anti joins."""

import pytest

from repro.errors import BindError, ParseError
from repro.engine.plan import HashJoin, JoinType, UnionAllPlan, walk_plan
from repro.engine.planner import Planner
from repro.engine.sql import ast
from repro.engine.sql.parser import parse_sql
from tests.conftest import run_query


@pytest.fixture
def planner(mini_catalog):
    return Planner(mini_catalog, "mini")


class TestSimpleCase:
    def test_desugars_to_searched_case(self):
        stmt = parse_sql("SELECT CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' END FROM t")
        case = stmt.items[0].expr
        assert isinstance(case, ast.Case)
        assert case.whens[0][0] == ast.Binary(
            "=", ast.ColumnRef("x"), ast.Literal(1)
        )

    def test_executes(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_orderkey, CASE o_orderstatus WHEN 'O' THEN 'open' "
            "WHEN 'F' THEN 'filled' ELSE 'other' END AS s "
            "FROM orders ORDER BY o_orderkey LIMIT 3",
        )
        assert result.rows() == [(1, "open"), (2, "filled"), (3, "open")]


class TestExtract:
    def test_parses_to_function(self):
        stmt = parse_sql("SELECT EXTRACT(YEAR FROM d) FROM t")
        assert stmt.items[0].expr == ast.FunctionCall("year", (ast.ColumnRef("d"),))

    def test_month(self):
        stmt = parse_sql("SELECT extract(month FROM d) FROM t")
        assert stmt.items[0].expr.name == "month"

    def test_unsupported_field(self):
        with pytest.raises(ParseError, match="EXTRACT supports"):
            parse_sql("SELECT EXTRACT(DOW FROM d) FROM t")

    def test_executes(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT EXTRACT(YEAR FROM o_orderdate) AS y, count(*) FROM orders "
            "GROUP BY EXTRACT(YEAR FROM o_orderdate) ORDER BY y",
        )
        assert result.rows() == [(1995, 4), (1996, 1), (1997, 1)]


class TestUnionAll:
    def test_parses_flat(self):
        stmt = parse_sql("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert isinstance(stmt, ast.UnionAll)
        assert len(stmt.branches) == 2

    def test_requires_all(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a FROM t UNION SELECT b FROM u")

    def test_plans_to_union_node(self, planner):
        plan = planner.plan_sql(
            "SELECT o_custkey FROM orders UNION ALL SELECT c_custkey FROM customer"
        )
        assert isinstance(plan, UnionAllPlan)

    def test_executes_bag_semantics(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_custkey FROM orders UNION ALL "
            "SELECT c_custkey FROM customer",
        )
        assert result.num_rows == 9  # 6 + 3, duplicates kept

    def test_first_branch_names_win(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_custkey AS who FROM orders UNION ALL "
            "SELECT c_custkey FROM customer",
        )
        assert result.column_names == ["who"]

    def test_numeric_promotion_across_branches(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT c_nationkey FROM customer UNION ALL "
            "SELECT o_orderkey FROM orders",
        )
        assert result.num_rows == 9

    def test_arity_mismatch_rejected(self, planner):
        with pytest.raises(BindError, match="columns"):
            planner.plan_sql(
                "SELECT o_custkey, o_orderkey FROM orders UNION ALL "
                "SELECT c_custkey FROM customer"
            )

    def test_type_mismatch_rejected(self, planner):
        with pytest.raises(BindError, match="type"):
            planner.plan_sql(
                "SELECT o_custkey FROM orders UNION ALL "
                "SELECT c_name FROM customer"
            )

    def test_trailing_order_by_applies_to_whole_union(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_custkey AS k FROM orders UNION ALL "
            "SELECT c_custkey FROM customer ORDER BY k DESC LIMIT 2",
        )
        assert result.rows() == [(9,), (3,)]

    def test_union_order_by_position(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_custkey FROM orders UNION ALL "
            "SELECT c_custkey FROM customer ORDER BY 1 LIMIT 1",
        )
        assert result.rows() == [(1,)]

    def test_union_order_by_unknown_column_rejected(self, planner):
        with pytest.raises(BindError, match="output column"):
            planner.plan_sql(
                "SELECT o_custkey FROM orders UNION ALL "
                "SELECT c_custkey FROM customer ORDER BY ghost"
            )

    def test_union_to_sql_roundtrip(self):
        sql = (
            "SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY a DESC LIMIT 3"
        )
        rendered = parse_sql(sql).to_sql()
        assert parse_sql(rendered).to_sql() == rendered

    def test_branches_keep_own_clauses(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_orderkey FROM orders WHERE o_orderkey <= 2 UNION ALL "
            "SELECT o_orderkey FROM orders WHERE o_orderkey >= 5",
        )
        assert sorted(row[0] for row in result.rows()) == [1, 2, 5, 6]


class TestInSubquery:
    def test_plans_semi_join(self, planner):
        plan = planner.plan_sql(
            "SELECT c_name FROM customer WHERE c_custkey IN "
            "(SELECT o_custkey FROM orders)"
        )
        join = next(
            n for n in walk_plan(plan)
            if isinstance(n, HashJoin) and n.join_type is JoinType.SEMI
        )
        assert join.left_keys == ["customer.c_custkey"]

    def test_plans_anti_join(self, planner):
        plan = planner.plan_sql(
            "SELECT c_name FROM customer WHERE c_custkey NOT IN "
            "(SELECT o_custkey FROM orders)"
        )
        assert any(
            isinstance(n, HashJoin) and n.join_type is JoinType.ANTI
            for n in walk_plan(plan)
        )

    def test_semi_join_executes(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT c_name FROM customer WHERE c_custkey IN "
            "(SELECT o_custkey FROM orders WHERE o_totalprice > 250) "
            "ORDER BY c_name",
        )
        assert result.rows() == [("bob",), ("carol",)]

    def test_semi_join_no_duplicates(self, mini_engine):
        # alice has two orders; IN must not duplicate her.
        result = run_query(
            mini_engine,
            "SELECT c_name FROM customer WHERE c_custkey IN "
            "(SELECT o_custkey FROM orders) ORDER BY c_name",
        )
        assert result.rows() == [("alice",), ("bob",), ("carol",)]

    def test_not_in_with_matches(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT o_orderkey FROM orders WHERE o_custkey NOT IN "
            "(SELECT c_custkey FROM customer)",
        )
        assert result.rows() == [(6,)]  # order for the ghost customer 9

    def test_not_in_empty_subquery_passes_all(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT count(*) FROM customer WHERE c_custkey NOT IN "
            "(SELECT o_custkey FROM orders WHERE o_orderkey > 999)",
        )
        assert result.rows() == [(3,)]

    def test_not_in_with_null_in_subquery_passes_none(self, mini_engine):
        # o_totalprice contains a NULL: x NOT IN (..., NULL, ...) is never TRUE.
        result = run_query(
            mini_engine,
            "SELECT count(*) FROM orders WHERE o_totalprice NOT IN "
            "(SELECT o_totalprice FROM orders)",
        )
        assert result.rows() == [(0,)]

    def test_combined_with_other_predicates(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT c_name FROM customer WHERE c_custkey IN "
            "(SELECT o_custkey FROM orders) AND c_nationkey = 10 "
            "ORDER BY c_name",
        )
        assert result.rows() == [("alice",), ("bob",)]

    def test_subquery_with_its_own_where_and_distinct(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT count(*) FROM customer WHERE c_custkey IN "
            "(SELECT DISTINCT o_custkey FROM orders WHERE o_orderstatus = 'O')",
        )
        assert result.rows() == [(3,)]

    def test_multi_column_subquery_rejected(self, planner):
        with pytest.raises(BindError, match="exactly one column"):
            planner.plan_sql(
                "SELECT 1 FROM customer WHERE c_custkey IN "
                "(SELECT o_custkey, o_orderkey FROM orders)"
            )

    def test_type_mismatch_rejected(self, planner):
        with pytest.raises(BindError, match="does not"):
            planner.plan_sql(
                "SELECT 1 FROM customer WHERE c_custkey IN "
                "(SELECT o_orderstatus FROM orders)"
            )

    def test_non_column_left_side_rejected(self, planner):
        with pytest.raises(BindError, match="must be a column"):
            planner.plan_sql(
                "SELECT 1 FROM customer WHERE c_custkey + 1 IN "
                "(SELECT o_custkey FROM orders)"
            )

    def test_nested_in_or_rejected(self, planner):
        with pytest.raises(BindError, match="top-level"):
            planner.plan_sql(
                "SELECT 1 FROM customer WHERE c_nationkey = 10 OR "
                "c_custkey IN (SELECT o_custkey FROM orders)"
            )

    def test_in_subquery_inside_union(self, mini_engine):
        result = run_query(
            mini_engine,
            "SELECT c_name FROM customer WHERE c_custkey IN "
            "(SELECT o_custkey FROM orders WHERE o_totalprice > 450) "
            "UNION ALL SELECT c_name FROM customer WHERE c_nationkey = 20",
        )
        assert sorted(row[0] for row in result.rows()) == ["carol", "carol"]
