"""Tests for plan rendering (EXPLAIN) across node types."""

import pytest

from repro.engine.optimizer import Optimizer
from repro.engine.planner import Planner


@pytest.fixture
def planner(mini_catalog):
    return Planner(mini_catalog, "mini")


def explain(planner, sql, optimize=True):
    plan = planner.plan_sql(sql)
    if optimize:
        plan = Optimizer().optimize(plan)
    return plan.explain()


class TestExplain:
    def test_scan_shows_pushed_ranges_and_residual(self, planner):
        text = explain(
            planner, "SELECT o_orderkey FROM orders WHERE o_orderkey > 3"
        )
        assert "Scan mini.orders" in text
        assert "ranges={'o_orderkey': (3, None)}" in text
        assert "residual=" in text

    def test_join_shows_keys_and_type(self, planner):
        text = explain(
            planner,
            "SELECT 1 FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey",
        )
        assert "HashJoin[inner]" in text
        assert "o.o_custkey" in text and "c.c_custkey" in text

    def test_semi_join_rendered(self, planner):
        text = explain(
            planner,
            "SELECT c_name FROM customer WHERE c_custkey IN "
            "(SELECT o_custkey FROM orders)",
        )
        assert "HashJoin[semi]" in text

    def test_aggregate_shows_specs(self, planner):
        text = explain(
            planner,
            "SELECT o_orderstatus, sum(o_totalprice) FROM orders "
            "GROUP BY o_orderstatus",
        )
        assert "Aggregate keys=[key_0]" in text
        assert "sum(aggarg_0)" in text

    def test_sort_limit_distinct_rendered(self, planner):
        # ORDER BY + LIMIT fuses into one TopN node during optimization.
        text = explain(
            planner,
            "SELECT DISTINCT o_custkey FROM orders ORDER BY o_custkey LIMIT 3",
        )
        assert "TopN o_custkey ASC LIMIT 3 OFFSET 0" in text
        assert "Distinct" in text

    def test_sort_without_limit_stays_sort(self, planner):
        text = explain(
            planner, "SELECT o_custkey FROM orders ORDER BY o_custkey DESC"
        )
        assert "Sort o_custkey DESC" in text
        assert "TopN" not in text

    def test_union_rendered(self, planner):
        text = explain(
            planner,
            "SELECT o_custkey FROM orders UNION ALL "
            "SELECT c_custkey FROM customer",
        )
        assert "UnionAll (2 branches)" in text

    def test_indentation_reflects_tree(self, planner):
        text = explain(
            planner, "SELECT o_orderkey FROM orders WHERE o_orderkey > 3"
        )
        lines = text.splitlines()
        assert lines[0].startswith("Project")
        assert lines[1].startswith("  ")  # child indented

    def test_unoptimized_plan_keeps_filter_node(self, planner):
        text = explain(
            planner,
            "SELECT o_orderkey FROM orders WHERE o_orderkey > 3",
            optimize=False,
        )
        assert "Filter" in text


class TestCoordinatorExplain:
    def test_explain_api(self, turbo_env):
        _, _, _, _, coordinator, _ = turbo_env
        text = coordinator.explain(
            "SELECT l_returnflag, count(*) FROM lineitem GROUP BY l_returnflag"
        )
        assert "Scan tpch.lineitem" in text
        assert "Aggregate" in text

    def test_explain_rejects_bad_sql(self, turbo_env):
        from repro.errors import PixelsError

        _, _, _, _, coordinator, _ = turbo_env
        with pytest.raises(PixelsError):
            coordinator.explain("SELEKT")
