"""Unit tests for CF plan splitting (paper §3.1 push-down)."""

import pytest

from repro.engine.executor import QueryExecutor
from repro.engine.optimizer import Optimizer
from repro.engine.plan import (
    Aggregate,
    HashJoin,
    Limit,
    MaterializedView,
    Project,
    Scan,
    Sort,
    TopN,
    walk_plan,
)
from repro.engine.planner import Planner
from repro.turbo.plan_split import split_plan
from tests.conftest import run_query


@pytest.fixture
def planner(mini_catalog):
    return Planner(mini_catalog, "mini")


def plan_for(planner, sql):
    return Optimizer().optimize(planner.plan_sql(sql))


class TestSplitBoundary:
    def test_aggregate_goes_to_subplan(self, planner):
        plan = plan_for(
            planner,
            "SELECT o_orderstatus, count(*) AS n FROM orders "
            "GROUP BY o_orderstatus ORDER BY n DESC LIMIT 2",
        )
        split = split_plan(plan)
        # Expensive core (aggregate + scan) is in the sub-plan...
        assert any(isinstance(n, Aggregate) for n in walk_plan(split.sub))
        assert any(isinstance(n, Scan) for n in walk_plan(split.sub))
        # ...and the top retains only cheap tail operators + the view.
        top_types = {type(n) for n in walk_plan(split.top)}
        assert Scan not in top_types
        assert Aggregate not in top_types
        assert MaterializedView in top_types
        # ORDER BY + LIMIT arrives fused as a TopN cheap-tail node.
        assert TopN in top_types

    def test_join_goes_to_subplan(self, planner):
        plan = plan_for(
            planner,
            "SELECT c_name FROM customer c JOIN orders o "
            "ON c.c_custkey = o.o_custkey LIMIT 3",
        )
        split = split_plan(plan)
        assert any(isinstance(n, HashJoin) for n in walk_plan(split.sub))
        assert not any(isinstance(n, HashJoin) for n in walk_plan(split.top))

    def test_root_expensive_degenerates_to_view(self, planner):
        plan = planner.plan_sql("SELECT o_orderkey FROM orders").children()[0]
        assert isinstance(plan, Scan)
        split = split_plan(plan)
        assert split.top is split.view
        assert split.sub is plan

    def test_view_schema_matches_cut(self, planner):
        plan = plan_for(
            planner,
            "SELECT o_orderstatus, count(*) AS n FROM orders "
            "GROUP BY o_orderstatus ORDER BY n",
        )
        split = split_plan(plan)
        assert split.view.output_schema() == split.sub.output_schema()

    def test_project_stays_on_top(self, planner):
        plan = plan_for(planner, "SELECT o_orderkey FROM orders LIMIT 2")
        split = split_plan(plan)
        assert any(isinstance(n, Project) for n in walk_plan(split.top))


class TestResultEquivalence:
    """§3.1: CF execution 'is transparent to users' — same results."""

    QUERIES = [
        "SELECT count(*) FROM orders",
        "SELECT o_orderstatus, count(*) AS n FROM orders "
        "GROUP BY o_orderstatus ORDER BY o_orderstatus",
        "SELECT c_name, sum(o_totalprice) AS t FROM customer c "
        "JOIN orders o ON c.c_custkey = o.o_custkey "
        "GROUP BY c_name ORDER BY t DESC LIMIT 2",
        "SELECT o_orderkey FROM orders WHERE o_totalprice > 150 "
        "ORDER BY o_orderkey",
        "SELECT DISTINCT o_orderstatus FROM orders ORDER BY 1",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_split_execution_matches_direct(self, mini_engine, sql):
        planner, optimizer, executor = mini_engine
        direct = run_query(mini_engine, sql)
        split = split_plan(optimizer.optimize(planner.plan_sql(sql)))
        sub_result = executor.execute(split.sub)
        split.attach(sub_result.data)
        via_cf = executor.execute(split.top)
        assert via_cf.rows() == direct.rows()
        assert via_cf.column_names == direct.column_names

    def test_unattached_view_raises(self, mini_engine, planner):
        from repro.errors import ExecutionError

        _, optimizer, executor = mini_engine
        split = split_plan(plan_for(planner, "SELECT count(*) FROM orders LIMIT 1"))
        with pytest.raises(ExecutionError, match="no data attached"):
            executor.execute(split.top)


class TestSplitWithExtendedPlans:
    def test_union_root_goes_entirely_to_subplan(self, planner):
        plan = plan_for(
            planner,
            "SELECT o_custkey FROM orders UNION ALL "
            "SELECT c_custkey FROM customer",
        )
        split = split_plan(plan)
        assert split.top is split.view  # nothing cheap to keep on top
        from repro.engine.plan import UnionAllPlan

        assert isinstance(split.sub, UnionAllPlan)

    def test_union_with_limit_keeps_limit_on_top(self, planner):
        plan = plan_for(
            planner,
            "SELECT o_custkey FROM orders UNION ALL "
            "SELECT c_custkey FROM customer ORDER BY 1 LIMIT 2",
        )
        split = split_plan(plan)
        top_types = {type(n) for n in walk_plan(split.top)}
        assert TopN in top_types
        assert Limit not in top_types and Sort not in top_types

    def test_semi_join_pushed_to_subplan_and_equivalent(self, mini_engine):
        planner, optimizer, executor = mini_engine
        sql = (
            "SELECT c_name FROM customer WHERE c_custkey IN "
            "(SELECT o_custkey FROM orders) ORDER BY c_name"
        )
        direct = run_query(mini_engine, sql)
        split = split_plan(optimizer.optimize(planner.plan_sql(sql)))
        sub = executor.execute(split.sub)
        split.attach(sub.data)
        assert executor.execute(split.top).rows() == direct.rows()
