"""Unit tests for the burn-rate/threshold alert engine."""

import json

import pytest

from repro.obs.alerts import (
    AlertEngine,
    BurnRateRule,
    ThresholdRule,
    default_rules,
    labels_of,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloObjective, SloTracker
from repro.obs.timeseries import TimeSeriesStore


def _slo_with_violations(times: list[float], ok_times: list[float] = ()):
    """A relaxed-level tracker with violations/passes at given finish times."""
    tracker = SloTracker(objectives=[SloObjective("relaxed", target=0.99)])
    for index, time in enumerate(times):
        tracker.record(
            query_id=f"v{index}", level="relaxed", submitted_at=time - 99.0,
            finished_at=time, deadline_s=30.0, actual_s=99.0,
        )
    for index, time in enumerate(ok_times):
        tracker.record(
            query_id=f"ok{index}", level="relaxed", submitted_at=time,
            finished_at=time, deadline_s=30.0, actual_s=0.0,
        )
    return tracker


class TestBurnRateRule:
    def test_fires_only_when_both_windows_burn(self):
        rule = BurnRateRule(
            "relaxed_burn", "relaxed", threshold=6.0,
            fast_window_s=300.0, slow_window_s=3600.0,
        )
        registry = MetricsRegistry()
        # Violations only in the recent past: both windows hot at t=1000.
        slo = _slo_with_violations([900.0, 950.0])
        engine = AlertEngine([rule], registry, slo=slo, hold_s=0.0)
        engine.evaluate(1000.0)
        assert engine.firing() == ["relaxed_burn"]

    def test_old_violations_burn_slow_window_only(self):
        rule = BurnRateRule(
            "relaxed_burn", "relaxed", threshold=6.0,
            fast_window_s=300.0, slow_window_s=3600.0,
        )
        # Violations are >300 s old at evaluation time: the slow window
        # still sees them, the fast window does not → no page.
        slo = _slo_with_violations([100.0, 150.0])
        engine = AlertEngine([rule], MetricsRegistry(), slo=slo, hold_s=0.0)
        engine.evaluate(1000.0)
        assert engine.firing() == []

    def test_resolves_when_violations_age_out(self):
        rule = BurnRateRule(
            "relaxed_burn", "relaxed", threshold=6.0,
            fast_window_s=300.0, slow_window_s=600.0,
        )
        slo = _slo_with_violations([100.0])
        engine = AlertEngine([rule], MetricsRegistry(), slo=slo, hold_s=0.0)
        engine.evaluate(200.0)
        assert engine.firing() == ["relaxed_burn"]
        engine.evaluate(800.0)  # violation left both windows
        assert engine.firing() == []
        assert [e.state for e in engine.events] == ["firing", "resolved"]


class TestThresholdRule:
    def test_value_rule_fires_above_threshold(self):
        registry = MetricsRegistry()
        depth = registry.gauge("pixels_vm_queue_depth")
        rule = ThresholdRule("queue", "pixels_vm_queue_depth", threshold=20.0)
        engine = AlertEngine([rule], registry, hold_s=0.0)
        depth.set(20)
        engine.evaluate(10.0)
        assert engine.firing() == []  # strictly greater-than
        depth.set(21)
        engine.evaluate(20.0)
        assert engine.firing() == ["queue"]

    def test_for_s_requires_sustained_breach(self):
        registry = MetricsRegistry()
        depth = registry.gauge("depth")
        rule = ThresholdRule("queue", "depth", threshold=5.0, for_s=60.0)
        engine = AlertEngine([rule], registry, hold_s=0.0)
        depth.set(10)
        engine.evaluate(0.0)
        engine.evaluate(30.0)
        assert engine.firing() == []  # breached but not yet for 60 s
        engine.evaluate(60.0)
        assert engine.firing() == ["queue"]

    def test_for_s_resets_when_breach_clears(self):
        registry = MetricsRegistry()
        depth = registry.gauge("depth")
        rule = ThresholdRule("queue", "depth", threshold=5.0, for_s=60.0)
        engine = AlertEngine([rule], registry, hold_s=0.0)
        depth.set(10)
        engine.evaluate(0.0)
        depth.set(0)
        engine.evaluate(30.0)  # dip resets the accumulation clock
        depth.set(10)
        engine.evaluate(60.0)
        assert engine.firing() == []
        engine.evaluate(120.0)
        assert engine.firing() == ["queue"]

    def test_histogram_mean_rule_uses_windowed_deltas(self):
        registry = MetricsRegistry()
        store = TimeSeriesStore()
        key = labels_of(level="relaxed")
        # Cumulative sum/count samples: mean over (100, 200] is 600/2=300.
        store.append(100.0, "pend_sum", key, 100.0)
        store.append(100.0, "pend_count", key, 10.0)
        store.append(200.0, "pend_sum", key, 700.0)
        store.append(200.0, "pend_count", key, 12.0)
        rule = ThresholdRule(
            "pending_mean", "pend", threshold=250.0, labels=key,
            kind="histogram_mean", window_s=100.0,
        )
        engine = AlertEngine([rule], registry, store=store, hold_s=0.0)
        engine.evaluate(200.0)
        assert engine.firing() == ["pending_mean"]
        assert engine.events[0].value == pytest.approx(300.0)

    def test_missing_metric_never_fires(self):
        rule = ThresholdRule("ghost", "missing_metric", threshold=1.0)
        engine = AlertEngine([rule], MetricsRegistry(), hold_s=0.0)
        engine.evaluate(10.0)
        assert engine.firing() == []


class TestFlapSuppression:
    def test_oscillating_signal_produces_one_pair(self):
        registry = MetricsRegistry()
        depth = registry.gauge("depth")
        rule = ThresholdRule("queue", "depth", threshold=5.0)
        engine = AlertEngine([rule], registry, hold_s=120.0)
        # The signal flips every 30 s scrape for 10 minutes.
        for tick in range(20):
            now = 30.0 * (tick + 1)
            depth.set(10 if tick % 2 == 0 else 0)
            engine.evaluate(now)
        # Without suppression this would be ~20 transitions.
        states = [event.state for event in engine.events]
        assert states[:2] == ["firing", "resolved"]
        assert len(states) <= 6
        # Transitions are spaced at least hold_s apart.
        times = [event.time for event in engine.events]
        assert all(b - a >= 120.0 for a, b in zip(times, times[1:]))

    def test_steady_breach_is_unaffected_by_hold(self):
        registry = MetricsRegistry()
        depth = registry.gauge("depth")
        rule = ThresholdRule("queue", "depth", threshold=5.0)
        engine = AlertEngine([rule], registry, hold_s=120.0)
        depth.set(10)
        for tick in range(10):
            engine.evaluate(30.0 * (tick + 1))
        assert [event.state for event in engine.events] == ["firing"]
        assert engine.firing() == ["queue"]


class TestEngine:
    def test_duplicate_rule_names_rejected(self):
        rules = [
            ThresholdRule("dup", "a", threshold=1.0),
            ThresholdRule("dup", "b", threshold=1.0),
        ]
        with pytest.raises(ValueError):
            AlertEngine(rules, MetricsRegistry())

    def test_export_jsonl_round_trips(self):
        registry = MetricsRegistry()
        depth = registry.gauge("depth")
        engine = AlertEngine(
            [ThresholdRule("queue", "depth", threshold=5.0)], registry,
            hold_s=0.0,
        )
        depth.set(10)
        engine.evaluate(30.0)
        depth.set(0)
        engine.evaluate(60.0)
        lines = engine.export_jsonl().splitlines()
        events = [json.loads(line) for line in lines]
        assert [e["state"] for e in events] == ["firing", "resolved"]
        assert events[0]["time"] == 30.0
        assert events[0]["detail"] == "depth > 5"

    def test_default_rules_shape(self):
        rules = default_rules()
        names = [rule.name for rule in rules]
        assert names == [
            "immediate_burn_rate", "relaxed_burn_rate",
            "vm_queue_depth", "pending_time_mean",
        ]
        # The default set wires up against a live engine without errors.
        engine = AlertEngine(
            rules, MetricsRegistry(), slo=SloTracker(),
            store=TimeSeriesStore(),
        )
        engine.evaluate(30.0)
        assert engine.firing() == []
