"""Unit tests for the plan optimizer passes."""

import pytest

from repro.engine.optimizer import Optimizer, estimate_rows
from repro.engine.plan import Filter, HashJoin, Scan, walk_plan
from repro.engine.planner import Planner
from tests.conftest import run_query


@pytest.fixture
def planner(mini_catalog):
    return Planner(mini_catalog, "mini")


def optimized(planner, sql):
    return Optimizer().optimize(planner.plan_sql(sql))


def scans(plan):
    return [n for n in walk_plan(plan) if isinstance(n, Scan)]


def joins(plan):
    return [n for n in walk_plan(plan) if isinstance(n, HashJoin)]


class TestPredicatePushdown:
    def test_range_pushed_into_scan(self, planner):
        plan = optimized(
            planner, "SELECT o_orderkey FROM orders WHERE o_orderkey > 3"
        )
        (scan,) = scans(plan)
        assert scan.ranges == {"o_orderkey": (3, None)}
        assert scan.residual is not None

    def test_equality_becomes_point_range(self, planner):
        plan = optimized(
            planner, "SELECT o_orderkey FROM orders WHERE o_orderkey = 3"
        )
        (scan,) = scans(plan)
        assert scan.ranges == {"o_orderkey": (3, 3)}

    def test_reversed_comparison_normalized(self, planner):
        plan = optimized(
            planner, "SELECT o_orderkey FROM orders WHERE 3 < o_orderkey"
        )
        (scan,) = scans(plan)
        assert scan.ranges == {"o_orderkey": (3, None)}

    def test_ranges_intersect(self, planner):
        plan = optimized(
            planner,
            "SELECT o_orderkey FROM orders "
            "WHERE o_orderkey > 2 AND o_orderkey <= 5 AND o_orderkey > 1",
        )
        (scan,) = scans(plan)
        assert scan.ranges == {"o_orderkey": (2, 5)}

    def test_between_pushed(self, planner):
        plan = optimized(
            planner,
            "SELECT o_orderkey FROM orders WHERE o_orderkey BETWEEN 2 AND 4",
        )
        (scan,) = scans(plan)
        assert scan.ranges == {"o_orderkey": (2, 4)}

    def test_filter_node_removed_when_fully_absorbed(self, planner):
        plan = optimized(
            planner, "SELECT o_orderkey FROM orders WHERE o_orderkey > 3"
        )
        assert not [n for n in walk_plan(plan) if isinstance(n, Filter)]

    def test_non_range_predicate_stays_residual_only(self, planner):
        plan = optimized(
            planner,
            "SELECT o_orderkey FROM orders WHERE o_orderstatus LIKE 'O%'",
        )
        (scan,) = scans(plan)
        assert scan.ranges == {}
        assert scan.residual is not None

    def test_sided_predicates_pushed_below_join(self, planner):
        plan = optimized(
            planner,
            "SELECT 1 FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey "
            "WHERE o.o_totalprice > 100 AND c.c_nationkey = 10",
        )
        for scan in scans(plan):
            assert scan.residual is not None

    def test_left_join_right_side_not_pushed(self, planner):
        plan = optimized(
            planner,
            "SELECT 1 FROM orders o LEFT JOIN customer c "
            "ON o.o_custkey = c.c_custkey WHERE c.c_nationkey = 10",
        )
        customer_scan = next(
            s for s in scans(plan) if s.table.name == "customer"
        )
        assert customer_scan.residual is None
        # The predicate must survive as a Filter above the join.
        assert [n for n in walk_plan(plan) if isinstance(n, Filter)]


class TestEquiExtraction:
    def test_comma_join_where_becomes_keys(self, planner):
        plan = optimized(
            planner,
            "SELECT 1 FROM orders o, customer c WHERE o.o_custkey = c.c_custkey",
        )
        (join,) = joins(plan)
        assert len(join.left_keys) == 1
        assert set(join.left_keys + join.right_keys) == {
            "o.o_custkey", "c.c_custkey",
        }


class TestBuildSideSwap:
    def test_smaller_table_on_build_side(self, planner):
        # orders (6 rows) JOIN customer (3 rows): build (right) side should
        # be the smaller customer table regardless of FROM order.
        plan = optimized(
            planner,
            "SELECT 1 FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey",
        )
        (join,) = joins(plan)
        right_scan = next(n for n in walk_plan(join.right) if isinstance(n, Scan))
        assert right_scan.table.name == "customer"


class TestProjectionPruning:
    def test_scan_reads_only_needed_columns(self, planner):
        plan = optimized(planner, "SELECT o_orderkey FROM orders")
        (scan,) = scans(plan)
        assert [base for _, base in scan.columns] == ["o_orderkey"]

    def test_residual_columns_kept(self, planner):
        plan = optimized(
            planner,
            "SELECT o_orderkey FROM orders WHERE o_totalprice > 100",
        )
        (scan,) = scans(plan)
        assert {base for _, base in scan.columns} == {
            "o_orderkey", "o_totalprice",
        }

    def test_join_keys_kept(self, planner):
        plan = optimized(
            planner,
            "SELECT c_name FROM customer c JOIN orders o "
            "ON c.c_custkey = o.o_custkey",
        )
        orders_scan = next(s for s in scans(plan) if s.table.name == "orders")
        assert {base for _, base in orders_scan.columns} == {"o_custkey"}

    def test_count_star_keeps_one_column(self, planner):
        plan = optimized(planner, "SELECT count(*) FROM orders")
        (scan,) = scans(plan)
        assert len(scan.columns) == 1


class TestOptimizedPlansStillCorrect:
    """The optimizer must never change results — spot-check a few shapes."""

    QUERIES = [
        "SELECT count(*) FROM orders WHERE o_orderkey > 3 AND o_orderkey < 6",
        "SELECT c_name FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey "
        "WHERE o.o_totalprice >= 300 ORDER BY c_name",
        "SELECT o_orderstatus, count(*) FROM orders WHERE o_orderdate >= "
        "DATE '1995-06-01' GROUP BY o_orderstatus ORDER BY 1",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_same_rows_with_and_without_optimizer(self, mini_engine, sql):
        planner, optimizer, executor = mini_engine
        unoptimized = executor.execute(planner.plan_sql(sql)).rows()
        assert run_query(mini_engine, sql).rows() == unoptimized


class TestEstimates:
    def test_scan_estimate_uses_statistics(self, planner):
        plan = planner.plan_sql("SELECT o_orderkey FROM orders")
        (scan,) = scans(plan)
        assert estimate_rows(scan) == 6.0

    def test_filter_reduces_estimate(self, planner):
        plan = planner.plan_sql(
            "SELECT o_orderkey FROM orders WHERE o_orderkey > 3"
        )
        filter_node = next(n for n in walk_plan(plan) if isinstance(n, Filter))
        assert estimate_rows(filter_node) == 2.0
