"""Tests for the text-to-SQL JSON protocol and pluggability."""

import json

import pytest

from repro.errors import ProtocolError
from repro.nl2sql import CodesService
from repro.nl2sql.protocol import TranslationRequest
from repro.nl2sql.translator import Translation
from repro.nl2sql.schema_pruning import PrunedSchema
from tests.conftest import build_catalog


@pytest.fixture
def payload():
    return {
        "question": "how many orders are there",
        "schema": build_catalog().describe_schema("mini"),
    }


class TestRequestParsing:
    def test_valid_request(self, payload):
        request = TranslationRequest.from_json(payload)
        assert request.question.startswith("how many")
        assert set(request.schema.tables) == {"orders", "customer"}
        orders = request.schema.tables["orders"]
        assert orders.column("o_totalprice").comment == "total price"
        assert orders.foreign_keys[0].ref_table == "customer"

    def test_missing_question(self, payload):
        del payload["question"]
        with pytest.raises(ProtocolError, match="question"):
            TranslationRequest.from_json(payload)

    def test_blank_question(self, payload):
        payload["question"] = "   "
        with pytest.raises(ProtocolError):
            TranslationRequest.from_json(payload)

    def test_missing_schema(self, payload):
        del payload["schema"]
        with pytest.raises(ProtocolError, match="schema"):
            TranslationRequest.from_json(payload)

    def test_malformed_schema(self, payload):
        payload["schema"] = {"tables": [{"oops": True}]}
        with pytest.raises(ProtocolError, match="malformed"):
            TranslationRequest.from_json(payload)

    def test_non_object_request(self):
        with pytest.raises(ProtocolError):
            TranslationRequest.from_json(["not", "a", "dict"])


class TestService:
    def test_round_trip(self, payload):
        response = CodesService().handle(payload)
        assert response["sql"] == "SELECT count(*) FROM orders"
        assert response["confidence"] > 0
        assert "orders(" in response["pruned_schema"]
        assert "error" not in response

    def test_single_turn(self, payload):
        """One request → one SQL; no dialogue state between calls (§3.3)."""
        service = CodesService()
        first = service.handle(payload)
        second = service.handle(payload)
        assert first == second

    def test_untranslatable_returns_error_field(self, payload):
        from repro.errors import TranslationError

        class FailingTranslator:
            def translate(self, schema, question):
                raise TranslationError("cannot parse this question")

        response = CodesService(translator=FailingTranslator()).handle(payload)
        assert response["sql"] == ""
        assert "cannot parse" in response["error"]

    def test_vague_question_still_yields_sql(self, payload):
        """The rule translator degrades to a low-confidence default query
        rather than failing outright (the user can edit the block)."""
        payload["question"] = "orders stuff"
        response = CodesService().handle(payload)
        assert response["sql"].startswith("SELECT")
        assert response["confidence"] < 1.0

    def test_text_framing(self, payload):
        body = json.dumps(payload)
        response = json.loads(CodesService().handle_text(body))
        assert response["sql"] == "SELECT count(*) FROM orders"

    def test_text_framing_rejects_bad_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            CodesService().handle_text("{nope")

    def test_pluggable_translator(self, payload):
        """§2(3): the service is pluggable — swap in another translator."""

        class CannedTranslator:
            def translate(self, schema, question):
                return Translation(
                    sql="SELECT 1 FROM orders",
                    confidence=0.42,
                    pruned_schema=PrunedSchema(),
                )

        response = CodesService(translator=CannedTranslator()).handle(payload)
        assert response["sql"] == "SELECT 1 FROM orders"
        assert response["confidence"] == 0.42
