"""Service levels under a workload spike — the scenario the paper's
architecture exists for.

A steady trickle of queries runs against an auto-scaled VM cluster; then a
spike of 40 queries lands in two seconds, far faster than the cluster's
90-second scale-out lag.  The three service levels diverge exactly as
§3.2 describes:

* immediate queries jump to cloud functions and start instantly (higher
  price);
* relaxed queries wait (bounded by the grace period) while the cluster
  scales out, never touching CF;
* best-of-effort queries trickle out later, when the cluster would
  otherwise be idle.

Run:  python examples/service_levels_under_load.py
"""

import numpy as np

from repro import PixelsDB, ServiceLevel
from repro.turbo.coordinator import ExecutionVenue
from repro.workloads import spike_arrivals

SQL = (
    "SELECT l_returnflag, l_linestatus, sum(l_extendedprice) AS revenue "
    "FROM lineitem GROUP BY l_returnflag, l_linestatus"
)


def main() -> None:
    from repro import TurboConfig

    db = PixelsDB(config=TurboConfig.experiment(), seed=42)
    db.load_tpch("tpch", scale=0.3)
    server = db.query_server("tpch")
    coordinator = db.coordinator("tpch")

    rng = np.random.default_rng(0)
    arrivals = spike_arrivals(
        rng, duration_s=900, base_rate_per_s=0.02,
        spike_at_s=120.0, spike_queries=40, spike_spread_s=2.0,
    )
    levels = [ServiceLevel.IMMEDIATE, ServiceLevel.RELAXED, ServiceLevel.BEST_EFFORT]
    queries = []
    for index, time in enumerate(arrivals):
        level = levels[index % 3]
        db.sim.schedule_at(
            time, lambda lv=level: queries.append(server.submit(SQL, lv))
        )
    db.sim.run_until(7200)

    print(f"{len(queries)} queries submitted; spike of 40 at t=120s\n")
    print(f"{'level':<14}{'n':>4}{'mean pend':>11}{'max pend':>10}"
          f"{'on CF':>7}{'billed $/TB':>13}")
    for level in levels:
        mine = [q for q in queries if q.level is level]
        pending = [q.pending_time_s for q in mine if q.pending_time_s is not None]
        on_cf = sum(
            1 for q in mine
            if q.execution and q.execution.venue is ExecutionVenue.CF
        )
        rate = server.price_quote(level)
        print(
            f"{level.value:<14}{len(mine):>4}"
            f"{np.mean(pending):>10.1f}s{max(pending):>9.1f}s"
            f"{on_cf:>7}{rate:>13.2f}"
        )

    trace = coordinator.trace
    print("\nVM cluster size over time (step samples):")
    last = None
    for point in trace.series("vm.workers"):
        value = int(point.value)
        if value != last:
            print(f"  t={point.time:7.1f}s  workers={value}")
            last = value
    print(
        f"\nscale-out events: {coordinator.vm_cluster.scale_out_events}, "
        f"scale-in events: {coordinator.vm_cluster.scale_in_events}"
    )
    print(
        f"CF invocations: {len(coordinator.cf_service.invocations)} "
        f"(provider cost ${coordinator.cf_service.provider_cost():.4f}); "
        f"VM provider cost ${coordinator.vm_cluster.provider_cost():.4f}"
    )


if __name__ == "__main__":
    main()
