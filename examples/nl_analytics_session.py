"""A full Pixels-Rover session, following the paper's §4 demonstration.

Walks the exact flow of the demo: log in, browse the schema of the
authorized database, type analytic questions into the Translator, edit a
translated query, pick a service level on the submission form (Figure 3),
and watch status-and-result blocks appear in the Query Result area with
the per-level colours of §4.3.

Run:  python examples/nl_analytics_session.py
"""

from repro import PixelsDB, UserStore


def main() -> None:
    db = PixelsDB(seed=3)
    db.load_tpch("tpch", scale=0.05)

    users = UserStore()
    users.register("ana", "demo-password", authorized_databases={"tpch"})
    rover = db.rover(users, "tpch")

    # -- §4: log in through authentication --------------------------------
    token = rover.login("ana", "demo-password")
    print("Logged in. Authorized databases:", rover.list_databases(token))

    # -- §4.1: browse the database schema ----------------------------------
    tree = rover.schema_tree(token, "tpch")
    print("\nSchema browser:")
    for table in tree["tables"][:4]:
        columns = ", ".join(
            f"{c['name']}:{c['type']}" for c in table["columns"][:4]
        )
        print(f"  {table['name']:<10} {columns}, ...")

    # -- §4.2: form and submit queries -------------------------------------
    rover.select_database(token, "tpch")
    questions = [
        "How many orders are there?",
        "What is the total price per order status?",
        "Top 5 customers by account balance",
    ]
    blocks = []
    for question in questions:
        block = rover.ask(token, question)
        blocks.append(block)
        print(f"\nQ: {question}\n   -> {block.sql}")

    # Correct a minor error in the last query via the edit buttons.
    last = blocks[-1]
    rover.begin_edit(token, last.block_id)
    rover.update_draft(token, last.block_id, last.sql.replace("LIMIT 5", "LIMIT 3"))
    rover.confirm_edit(token, last.block_id)
    print(f"\nEdited last query -> {last.sql}")

    # The submission form shows levels and prices (Figure 3).
    form = rover.submission_form(token, blocks[0].block_id)
    print("\nSubmission form service levels:")
    for entry in form["service_levels"]:
        print(
            f"  {entry['level']:<12} ${entry['price_per_tb']}/TB-scan "
            f"(CF acceleration: {entry['cf_acceleration']})"
        )

    rover.submit_query(token, blocks[0].block_id, "immediate")
    rover.submit_query(token, blocks[1].block_id, "relaxed")
    rover.submit_query(token, blocks[2].block_id, "best-of-effort", result_limit=3)
    db.run_to_completion()

    # -- §4.3: check query status and result --------------------------------
    print("\nQuery Result area (ascending submission time):")
    for result in rover.result_blocks(token):
        expanded = rover.expand_result(token, result.result_id)
        origin = rover.origin_of(token, result.result_id)
        print(
            f"  [{result.color}] {result.level.value:<12} "
            f"{expanded['status']:<9} <- {origin.question!r}"
        )
        if expanded["status"] == "finished":
            print(
                f"      pending {expanded['pending_time_s']:.1f}s, "
                f"exec {expanded['execution_time_s']:.2f}s, "
                f"cost ${expanded['monetary_cost']:.9f}"
            )
            for row in expanded["rows"][:3]:
                print("      ", row)


if __name__ == "__main__":
    main()
