"""Operating PixelsDB like a production system: faults, cancellation,
and batch optimization.

Three vignettes beyond the demo paper's happy path:

1. **Fault injection** — VM workers crash mid-query and CF invocations
   fail; queries retry transparently (partial work is still billed, as
   clouds do) and results stay correct.
2. **Cancellation** — a user kills a queued and a running query from the
   Rover UI; slots free immediately.
3. **Batch optimization** — a nightly reporting backlog at the
   best-of-effort tier runs as a shared-scan batch (§5's "opportunities
   for batch query optimization"), reading each fact table once.

Run:  python examples/resilience_and_batching.py
"""

import dataclasses

from repro import (
    CacheConfig,
    Catalog,
    CodesService,
    Coordinator,
    ObjectStore,
    QueryServer,
    ServiceLevel,
    Simulator,
    TurboConfig,
)
from repro.turbo.faults import FaultConfig
from repro.workloads import TpchGenerator, load_dataset

REPORT = [
    "SELECT l_returnflag, sum(l_extendedprice) FROM lineitem GROUP BY l_returnflag",
    "SELECT l_shipmode, sum(l_extendedprice) FROM lineitem GROUP BY l_shipmode",
    "SELECT sum(l_extendedprice * (1 - l_discount)) FROM lineitem",
    "SELECT avg(l_quantity) FROM lineitem WHERE l_discount > 0.05",
]


def build_stack(faults=None, batch=False, seed=8, cache=True):
    sim = Simulator(seed=seed)
    store = ObjectStore()
    catalog = Catalog()
    load_dataset(store, catalog, "tpch", TpchGenerator(scale=0.1).tables())
    config = TurboConfig.experiment(500.0)
    if not cache:
        # The batching vignette compares physical reads; run it without
        # the VM buffer pool so sharing's own savings are visible.
        config = dataclasses.replace(config, cache=CacheConfig(enabled=False))
    coordinator = Coordinator(sim, config, catalog, store, "tpch", faults=faults)
    server = QueryServer(sim, coordinator, config, batch_best_effort=batch)
    return sim, store, coordinator, server


def vignette_faults() -> None:
    print("=== 1. fault injection: crashes + retries ===")
    sim, _, coordinator, server = build_stack(
        faults=FaultConfig(vm_crash_rate=0.4, cf_failure_rate=0.4, max_retries=5),
    )
    queries = [server.submit(REPORT[0], ServiceLevel.RELAXED) for _ in range(6)]
    sim.run_until(7200)
    injector = coordinator.fault_injector
    print(
        f"  crashes injected: {injector.vm_crashes_injected} VM, "
        f"{injector.cf_failures_injected} CF"
    )
    for query in queries:
        print(
            f"  {query.query_id}: {query.status.value}, "
            f"retries={query.execution.retries}, rows={len(query.result_rows())}"
        )


def vignette_cancellation() -> None:
    print("\n=== 2. cancellation ===")
    sim, _, coordinator, server = build_stack()
    running = server.submit(REPORT[0], ServiceLevel.RELAXED)
    queued = [server.submit(REPORT[0], ServiceLevel.RELAXED) for _ in range(3)]
    sim.run_until(1.0)
    print(f"  running={running.status.value}, vm queue={coordinator.vm_cluster.queue_length}")
    server.cancel(queued[-1].query_id)
    server.cancel(running.query_id)
    print(
        f"  after cancel: running -> {running.status.value} "
        f"({running.error}), queue={coordinator.vm_cluster.queue_length}"
    )
    sim.run_until(7200)
    survivors = [q.status.value for q in queued[:-1]]
    print(f"  untouched queries finished: {survivors}")


def vignette_batching() -> None:
    print("\n=== 3. shared-scan batch optimization ===")
    for batch in (False, True):
        sim, store, coordinator, server = build_stack(batch=batch, cache=False)
        loaded = store.metrics.snapshot()
        blockers = [server.submit(REPORT[0], ServiceLevel.RELAXED) for _ in range(3)]
        backlog = [server.submit(sql, ServiceLevel.BEST_EFFORT) for sql in REPORT]
        sim.run_until(7200)
        bytes_read = store.metrics.delta(loaded).bytes_read
        label = "shared-scan batch" if batch else "one-by-one       "
        done = sum(1 for q in backlog if q.status.value == "finished")
        print(f"  {label}: {done}/{len(backlog)} finished, "
              f"{bytes_read / 1e6:.2f} MB read from object storage")


def main() -> None:
    vignette_faults()
    vignette_cancellation()
    vignette_batching()


if __name__ == "__main__":
    main()
