"""A tour of the SQL engine's surface on the TPC-H-style dataset.

Shows the query shapes the engine executes — joins, aggregation, CASE,
date functions, IN-subqueries (planned as semi/anti joins), UNION ALL —
plus EXPLAIN output of an optimized plan with predicate push-down and
zone-map ranges visible.

Run:  python examples/sql_features_tour.py
"""

from repro import PixelsDB, ServiceLevel
from repro.engine.optimizer import Optimizer
from repro.engine.planner import Planner

TOUR = [
    (
        "Top spenders via join + aggregation + top-N",
        "SELECT c_name, sum(o_totalprice) AS spent "
        "FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey "
        "GROUP BY c_name ORDER BY spent DESC LIMIT 5",
    ),
    (
        "Simple CASE + date function",
        "SELECT EXTRACT(YEAR FROM o_orderdate) AS y, "
        "CASE o_orderstatus WHEN 'O' THEN 'open' WHEN 'F' THEN 'filled' "
        "ELSE 'pending' END AS status, count(*) AS n "
        "FROM orders GROUP BY EXTRACT(YEAR FROM o_orderdate), "
        "CASE o_orderstatus WHEN 'O' THEN 'open' WHEN 'F' THEN 'filled' "
        "ELSE 'pending' END ORDER BY y, status LIMIT 6",
    ),
    (
        "IN-subquery (semi join): customers with urgent orders",
        "SELECT count(*) FROM customer WHERE c_custkey IN "
        "(SELECT o_custkey FROM orders WHERE o_orderpriority = '1-URGENT')",
    ),
    (
        "NOT IN (anti join): parts never ordered",
        "SELECT count(*) FROM part WHERE p_partkey NOT IN "
        "(SELECT l_partkey FROM lineitem)",
    ),
    (
        "UNION ALL across filters",
        "SELECT o_orderkey, o_totalprice FROM orders "
        "WHERE o_totalprice > 450000 UNION ALL "
        "SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice < 2000 "
        "ORDER BY o_totalprice LIMIT 5",
    ),
    (
        "Three-valued logic: NULL-safe accounting",
        "SELECT count(*) AS all_rows, count(o_totalprice) AS priced, "
        "sum(CASE WHEN o_totalprice IS NULL THEN 1 ELSE 0 END) AS unpriced "
        "FROM orders",
    ),
]


def main() -> None:
    db = PixelsDB(seed=4)
    db.load_tpch("tpch", scale=0.1)

    for title, sql in TOUR:
        query = db.submit("tpch", sql, ServiceLevel.IMMEDIATE)
        db.run_to_completion()
        print(f"-- {title}")
        print(f"   {sql}")
        for row in query.result_rows()[:6]:
            print("   ", row)
        print()

    print("-- EXPLAIN of an optimized plan (push-down + zone maps visible)")
    planner = Planner(db.catalog, "tpch")
    plan = Optimizer().optimize(
        planner.plan_sql(
            "SELECT c_name, sum(o_totalprice) AS spent "
            "FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey "
            "WHERE o.o_orderdate >= DATE '1995-01-01' AND o.o_totalprice > 1000 "
            "GROUP BY c_name ORDER BY spent DESC LIMIT 5"
        )
    )
    print(plan.explain())


if __name__ == "__main__":
    main()
