"""Fair scheduling and admission control for a multi-tenant fleet.

Four tenants flood the relaxed queue while an operations tenant fires
immediate probes.  The layered front end keeps every promise at once:

* the WFQ core drains the backlog fairly across tenants (near-equal
  dispatch counts, Jain index ≈ 1.0); "analytics" holds a 2× share,
  which shapes *dispatch order* under contention — at quiescence every
  admitted query has run, so the totals still even out;
* the admission layer downgrades relaxed submissions to best-of-effort
  once the relaxed queue passes its pressure threshold, and rejects a
  tenant outright past its live-query quota — rejected queries leave no
  record and bill $0;
* immediate probes start at their submission instant no matter how deep
  the backlog is.

Run:  python examples/fleet_scheduling.py
"""

import numpy as np

from repro import PixelsDB, ServiceLevel
from repro.core.scheduler import AdmissionPolicy
from repro.errors import QueryRejectedError
from repro.workloads import steady_arrivals

SQL = (
    "SELECT o_orderstatus, count(*) AS n, sum(o_totalprice) AS total "
    "FROM orders GROUP BY o_orderstatus"
)
PROBE_SQL = "SELECT count(*) FROM customer"
TENANTS = ["analytics", "finance", "growth", "adhoc"]


def main() -> None:
    from repro import TurboConfig

    db = PixelsDB(config=TurboConfig.experiment(), seed=11, observe=True)
    db.load_tpch("tpch", scale=0.1)
    server = db.query_server(
        "tpch",
        admission=AdmissionPolicy(tenant_quota=25, downgrade_queue_depth=12),
        shares={"analytics": 2.0},
    )

    rng = np.random.default_rng(3)
    rejected = 0

    def submit(tenant: str, level: ServiceLevel, sql: str) -> None:
        nonlocal rejected
        try:
            server.submit(sql, level, tenant=tenant)
        except QueryRejectedError:
            rejected += 1

    # A steady trickle, then every tenant bursts 30 relaxed queries in
    # two seconds at t=60 — far faster than the cluster can scale out.
    for tenant in TENANTS:
        for time in steady_arrivals(rng, duration_s=600, rate_per_s=0.02):
            db.sim.schedule_at(
                time, lambda t=tenant: submit(t, ServiceLevel.RELAXED, SQL)
            )
    for index in range(30 * len(TENANTS)):
        tenant = TENANTS[index % len(TENANTS)]
        db.sim.schedule_at(
            60.0 + index * 0.016,
            lambda t=tenant: submit(t, ServiceLevel.RELAXED, SQL),
        )
    for probe_time in range(90, 600, 120):
        db.sim.schedule_at(
            float(probe_time),
            lambda: submit("ops", ServiceLevel.IMMEDIATE, PROBE_SQL),
        )
    db.sim.run_until(7200)

    snapshot = server.scheduler_snapshot()
    admission = snapshot["admission"]
    print(f"admitted   : {admission['admitted']}")
    print(f"rejected   : {admission['rejected']} (+{rejected} raised)")
    print(f"downgraded : {admission['downgraded']}")
    print(f"fairness   : Jain {snapshot['fairness']['jain_dispatched']}")
    print("\nWFQ dispatches by tenant (analytics holds a 2x share):")
    for tenant, count in snapshot["dispatched_by_tenant"].items():
        share = snapshot["shares"].get(tenant, snapshot["shares"]["default"])
        print(f"  {tenant:<10} share={share:<4} dispatched={count}")

    probes = [
        q for q in server.queries if q.level is ServiceLevel.IMMEDIATE
    ]
    print(
        f"\nimmediate probes: {len(probes)}, "
        f"max pending {max(q.pending_time_s for q in probes):.1f}s "
        "(never queued behind the backlog)"
    )
    downgraded = [q for q in server.queries if q.downgraded]
    if downgraded:
        example = downgraded[0]
        print(
            f"downgraded example: requested {example.requested_level.value}, "
            f"ran {example.level.value}, billed ${example.price:.6f}"
        )


if __name__ == "__main__":
    main()
