"""Internet log analysis — the paper's second workload class (§3.1).

Loads a week of synthetic web-access logs, answers operations questions
through the natural-language interface, and runs the canned log-analytics
query set at the cheap best-of-effort tier (batch reporting is exactly
the "non-urgent" query class the paper's pricing targets).  Runs with
the observability stack on, so the session ends with the fleet view an
operator would use: the top statements by billed $ and a tail-captured
slow query with its full cost-attribution profile.

Run:  python examples/log_analysis.py
"""

from repro import CapturePolicy, PixelsDB, ServiceLevel
from repro.workloads import LOGS_QUERIES


def main() -> None:
    db = PixelsDB(
        observe=True,
        seed=11,
        capture=CapturePolicy(slowest_n=3),
    )
    db.load_logs("weblogs", num_rows=30000)

    print("Ad-hoc questions through the NL interface:\n")
    questions = [
        "How many web logs have status equal to 500?",
        "What is the average latency ms per url?",
        "Top 5 web logs by bytes sent",
    ]
    for question in questions:
        sql = db.ask("weblogs", question)
        query = db.submit("weblogs", sql, ServiceLevel.IMMEDIATE)
        db.run_to_completion()
        print(f"Q: {question}")
        print(f"   {sql}")
        for row in query.result_rows()[:5]:
            print("   ", row)
        print()

    print("Nightly batch report at the best-of-effort tier ($0.5/TB):\n")
    batch = {
        name: db.submit("weblogs", sql, ServiceLevel.BEST_EFFORT)
        for name, sql in LOGS_QUERIES.items()
    }
    db.run_to_completion()
    total = 0.0
    for name, query in batch.items():
        total += query.price
        print(
            f"  {name:<22} {query.status.value:<9} "
            f"rows={len(query.result_rows()):>3}  ${query.price:.9f}"
        )
    print(f"\nWhole report billed: ${total:.9f} "
          f"(would be 10x at the immediate tier)")

    print("\nTop 5 statements by billed $ (pg_stat_statements-style):\n")
    print(db.statements_top(5, "dollars"))

    captures = [c for c in db.journal_captures() if "profile" in c]
    if captures:
        slowest = captures[0]
        print("Tail-captured slow query (full profile evidence attached):\n")
        print(f"  query     {slowest['query_id']}  level={slowest['level']}")
        print(f"  reasons   {', '.join(slowest['reasons'])}")
        print(f"  billed    {slowest['billed_nanodollars']} nano$")
        for child in slowest["profile"]["children"]:
            print(
                f"    {child['name']:<20} {child['self_time_s']:.3f}s  "
                f"{child['self_nanodollars']} nano$"
            )


if __name__ == "__main__":
    main()
