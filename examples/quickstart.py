"""Quickstart: ask a question in English, run it at three prices.

Loads a TPC-H-style dataset, translates a natural-language question to
SQL, submits the same query at each of the paper's three service levels
(§3.2), and prints the result with its pending time and bill.

Run:  python examples/quickstart.py
"""

from repro import PixelsDB, ServiceLevel


def main() -> None:
    db = PixelsDB(seed=7)
    print("Loading TPC-H-style dataset (scale 0.1) ...")
    db.load_tpch("tpch", scale=0.1)

    question = "What is the total price per order status?"
    sql = db.ask("tpch", question)
    print(f"\nQuestion : {question}")
    print(f"SQL      : {sql}\n")

    queries = {
        level: db.submit("tpch", sql, level) for level in ServiceLevel
    }
    db.run_to_completion()

    print(f"{'level':<14} {'status':<10} {'pending':>8} {'exec':>7} {'price':>12}")
    for level, query in queries.items():
        print(
            f"{level.value:<14} {query.status.value:<10} "
            f"{query.pending_time_s:>7.1f}s {query.execution_time_s:>6.2f}s "
            f"${query.price:>11.9f}"
        )

    print("\nResult rows (identical at every level):")
    reference = queries[ServiceLevel.IMMEDIATE]
    for row in reference.result_rows():
        print("  ", row)

    print(
        "\nNote: on an idle cluster even relaxed/best-of-effort queries run"
        "\nimmediately (§3.2) — the level bounds pending time, and the price"
        "\nis 100% / 20% / 10% of the $5/TB-scan immediate rate."
    )


if __name__ == "__main__":
    main()
