"""Name and type resolution: AST expressions → bound expressions.

The binder resolves column references against the FROM-clause scope,
type-checks operators, coerces date literals, and — for aggregate queries —
splits expressions into the *scan space* (below the Aggregate operator) and
the *post-aggregate space* (above it), collecting the aggregate functions
and group keys the planner will materialize.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BindError
from repro.engine import expr as bound
from repro.engine.plan import AggFunc, AggSpec
from repro.engine.sql import ast
from repro.storage.catalog import Catalog, TableMeta
from repro.storage.types import DataType, date_to_days

AGGREGATE_FUNCTIONS = {"count", "sum", "avg", "min", "max"}


@dataclass
class ScopeEntry:
    """One table visible in the FROM clause."""

    binding: str
    schema_name: str
    table: TableMeta

    def qualified(self, column: str) -> str:
        return f"{self.binding}.{column}"


@dataclass
class Scope:
    """The set of tables a query's expressions may reference."""

    entries: list[ScopeEntry] = field(default_factory=list)

    def add(self, entry: ScopeEntry) -> None:
        if any(e.binding == entry.binding for e in self.entries):
            raise BindError(f"duplicate table binding {entry.binding!r}")
        self.entries.append(entry)

    def resolve(self, name: str, table: str | None) -> tuple[str, DataType]:
        """Resolve a column reference to (qualified name, dtype)."""
        if table is not None:
            for entry in self.entries:
                if entry.binding == table:
                    if not entry.table.has_column(name):
                        raise BindError(
                            f"no column {name!r} in {table!r}"
                        )
                    return entry.qualified(name), entry.table.column(name).dtype
            raise BindError(f"unknown table alias {table!r}")
        matches = [
            entry for entry in self.entries if entry.table.has_column(name)
        ]
        if not matches:
            raise BindError(f"unknown column {name!r}")
        if len(matches) > 1:
            candidates = ", ".join(entry.binding for entry in matches)
            raise BindError(f"ambiguous column {name!r} (in {candidates})")
        entry = matches[0]
        return entry.qualified(name), entry.table.column(name).dtype

    def all_columns(self, table: str | None = None) -> list[tuple[str, DataType]]:
        """Every visible column (for ``*`` expansion), FROM-clause order."""
        result = []
        for entry in self.entries:
            if table is not None and entry.binding != table:
                continue
            for column in entry.table.columns:
                result.append((entry.qualified(column.name), column.dtype))
        if table is not None and not result:
            raise BindError(f"unknown table alias {table!r}")
        return result

    @property
    def bindings(self) -> set[str]:
        return {entry.binding for entry in self.entries}


@dataclass
class AggCollector:
    """Accumulates group keys and aggregate calls during post-space binding.

    The planner materializes ``key_exprs`` and ``arg_exprs`` in a projection
    under the Aggregate operator and ``specs`` inside it.
    """

    group_asts: list[ast.Expr]
    key_exprs: list[tuple[str, bound.BoundExpr]]
    arg_exprs: list[tuple[str, bound.BoundExpr]] = field(default_factory=list)
    specs: list[AggSpec] = field(default_factory=list)
    _seen: dict[tuple, str] = field(default_factory=dict)

    def key_for(self, node: ast.Expr) -> tuple[str, DataType] | None:
        """If ``node`` structurally equals a GROUP BY expression, return the
        materialized key column."""
        for index, group_ast in enumerate(self.group_asts):
            if node == group_ast:
                name, key_expr = self.key_exprs[index]
                return name, key_expr.dtype
        return None

    def add_aggregate(
        self, func: AggFunc, arg: bound.BoundExpr | None, distinct: bool
    ) -> tuple[str, DataType]:
        """Register an aggregate call (deduplicated) and return its output."""
        signature = (
            func,
            arg.to_sql() if arg is not None else None,
            distinct,
        )
        if signature in self._seen:
            output = self._seen[signature]
            spec = next(s for s in self.specs if s.output == output)
            return output, spec.dtype
        input_column = None
        if arg is not None:
            input_column = f"aggarg_{len(self.arg_exprs)}"
            self.arg_exprs.append((input_column, arg))
        output = f"agg_{len(self.specs)}"
        dtype = _aggregate_dtype(func, arg)
        self.specs.append(AggSpec(func, input_column, output, distinct, dtype))
        self._seen[signature] = output
        return output, dtype


def _aggregate_dtype(func: AggFunc, arg: bound.BoundExpr | None) -> DataType:
    if func is AggFunc.COUNT:
        return DataType.BIGINT
    if arg is None:
        raise BindError(f"{func.value}() requires an argument")
    if func is AggFunc.AVG:
        if not arg.dtype.is_numeric:
            raise BindError("avg() requires a numeric argument")
        return DataType.DOUBLE
    if func is AggFunc.SUM:
        if not arg.dtype.is_numeric:
            raise BindError("sum() requires a numeric argument")
        return (
            DataType.DOUBLE if arg.dtype is DataType.DOUBLE else DataType.BIGINT
        )
    # MIN / MAX keep the argument type.
    if not arg.dtype.is_orderable:
        raise BindError(f"{func.value}() requires an orderable argument")
    return arg.dtype


class Binder:
    """Binds expressions against a scope (and optionally an AggCollector)."""

    def __init__(self, catalog: Catalog, default_schema: str) -> None:
        self._catalog = catalog
        self._default_schema = default_schema

    # -- scope construction ----------------------------------------------------

    def build_scope(self, from_clause: ast.TableRef | ast.Join | None) -> Scope:
        scope = Scope()
        if from_clause is not None:
            self._collect_tables(from_clause, scope)
        return scope

    def _collect_tables(self, node: ast.TableRef | ast.Join, scope: Scope) -> None:
        if isinstance(node, ast.TableRef):
            table = self._catalog.table(self._default_schema, node.name)
            scope.add(ScopeEntry(node.binding_name, self._default_schema, table))
            return
        self._collect_tables(node.left, scope)
        self._collect_tables(node.right, scope)

    # -- expression binding ------------------------------------------------------

    def bind_scalar(self, node: ast.Expr, scope: Scope) -> bound.BoundExpr:
        """Bind in scan space; aggregate functions are an error here."""
        return self._bind(node, scope, collector=None)

    def bind_post(
        self, node: ast.Expr, scope: Scope, collector: AggCollector
    ) -> bound.BoundExpr:
        """Bind in post-aggregate space.

        Subtrees matching GROUP BY expressions become key-column references;
        aggregate calls are collected; any other bare column is an error
        (it is neither grouped nor aggregated).
        """
        return self._bind(node, scope, collector=collector)

    def _bind(
        self,
        node: ast.Expr,
        scope: Scope,
        collector: AggCollector | None,
    ) -> bound.BoundExpr:
        if collector is not None:
            key = collector.key_for(node)
            if key is not None:
                name, dtype = key
                return bound.BoundColumn(name, dtype)
        if isinstance(node, ast.Literal):
            return self._bind_literal(node)
        if isinstance(node, ast.ColumnRef):
            name, dtype = scope.resolve(node.name, node.table)
            if collector is not None:
                # Qualified and bare spellings of the same column must both
                # match a GROUP BY key, so compare resolved names.
                for index, (key_name, key_expr) in enumerate(
                    collector.key_exprs
                ):
                    if (
                        isinstance(key_expr, bound.BoundColumn)
                        and key_expr.name == name
                    ):
                        return bound.BoundColumn(key_name, key_expr.dtype)
                raise BindError(
                    f"column {node.to_sql()!r} must appear in GROUP BY "
                    "or inside an aggregate function"
                )
            return bound.BoundColumn(name, dtype)
        if isinstance(node, ast.Star):
            raise BindError("'*' is only valid in SELECT lists and COUNT(*)")
        if isinstance(node, ast.Unary):
            if node.op == "not":
                return bound.BoundNot.bind(self._bind(node.operand, scope, collector))
            operand = self._bind(node.operand, scope, collector)
            if isinstance(operand, bound.BoundLiteral) and operand.dtype.is_numeric:
                return bound.BoundLiteral(-operand.value, operand.dtype)  # type: ignore[operator]
            return bound.BoundNegate.bind(operand)
        if isinstance(node, ast.Binary):
            return self._bind_binary(node, scope, collector)
        if isinstance(node, ast.Between):
            return self._bind_between(node, scope, collector)
        if isinstance(node, ast.InList):
            return self._bind_in(node, scope, collector)
        if isinstance(node, ast.Like):
            return self._bind_like(node, scope, collector)
        if isinstance(node, ast.IsNull):
            operand = self._bind(node.expr, scope, collector)
            return bound.BoundIsNull(operand, node.negated)
        if isinstance(node, ast.Case):
            return self._bind_case(node, scope, collector)
        if isinstance(node, ast.Cast):
            operand = self._bind(node.expr, scope, collector)
            try:
                target = DataType.from_string(node.type_name)
            except ValueError as exc:
                raise BindError(str(exc)) from exc
            return bound.BoundCast(operand, target)
        if isinstance(node, ast.FunctionCall):
            return self._bind_function(node, scope, collector)
        raise BindError(f"unsupported expression {node!r}")

    def _bind_literal(self, node: ast.Literal) -> bound.BoundLiteral:
        value = node.value
        if value is None:
            return bound.BoundLiteral(None, DataType.INT)
        if isinstance(value, bool):
            return bound.BoundLiteral(value, DataType.BOOLEAN)
        if node.is_date:
            try:
                return bound.BoundLiteral(date_to_days(str(value)), DataType.DATE)
            except ValueError as exc:
                raise BindError(f"bad DATE literal {value!r}") from exc
        if isinstance(value, int):
            dtype = DataType.BIGINT if abs(value) > 2**31 - 1 else DataType.INT
            return bound.BoundLiteral(value, dtype)
        if isinstance(value, float):
            return bound.BoundLiteral(value, DataType.DOUBLE)
        return bound.BoundLiteral(str(value), DataType.VARCHAR)

    @staticmethod
    def _coerce_date(left: bound.BoundExpr, right: bound.BoundExpr):
        """Let a VARCHAR literal act as a DATE when compared against one."""

        def try_convert(target: bound.BoundExpr, other: bound.BoundExpr):
            if (
                other.dtype is DataType.DATE
                and isinstance(target, bound.BoundLiteral)
                and target.dtype is DataType.VARCHAR
            ):
                try:
                    return bound.BoundLiteral(
                        date_to_days(str(target.value)), DataType.DATE
                    )
                except ValueError:
                    return target
            return target

        return try_convert(left, right), try_convert(right, left)

    def _bind_binary(
        self, node: ast.Binary, scope: Scope, collector: AggCollector | None
    ) -> bound.BoundExpr:
        left = self._bind(node.left, scope, collector)
        right = self._bind(node.right, scope, collector)
        op = node.op.lower()
        if op in ("and", "or"):
            return bound.BoundLogical.bind(op, left, right)
        if op == "||":
            return bound.BoundConcat.bind(left, right)
        left, right = self._coerce_date(left, right)
        if op in bound.COMPARISON_OPS:
            return bound.BoundComparison.bind(op, left, right)
        if op in bound.ARITHMETIC_OPS:
            return bound.BoundArithmetic.bind(op, left, right)
        raise BindError(f"unsupported operator {node.op!r}")

    def _bind_between(
        self, node: ast.Between, scope: Scope, collector: AggCollector | None
    ) -> bound.BoundExpr:
        value = self._bind(node.expr, scope, collector)
        low = self._bind(node.low, scope, collector)
        high = self._bind(node.high, scope, collector)
        low, _ = self._coerce_date(low, value)
        high, _ = self._coerce_date(high, value)
        lower = bound.BoundComparison.bind(">=", value, low)
        upper = bound.BoundComparison.bind("<=", value, high)
        between = bound.BoundLogical.bind("and", lower, upper)
        return bound.BoundNot(between) if node.negated else between

    def _bind_in(
        self, node: ast.InList, scope: Scope, collector: AggCollector | None
    ) -> bound.BoundExpr:
        operand = self._bind(node.expr, scope, collector)
        values = []
        for item in node.items:
            literal = self._bind(item, scope, collector)
            literal, _ = self._coerce_date(literal, operand)
            if not isinstance(literal, bound.BoundLiteral):
                raise BindError("IN list items must be literals")
            comparable = (
                literal.dtype is operand.dtype
                or (literal.dtype.is_numeric and operand.dtype.is_numeric)
            )
            if not comparable:
                raise BindError(
                    f"IN list item type {literal.dtype.value} does not match "
                    f"{operand.dtype.value}"
                )
            values.append(literal.value)
        return bound.BoundInList(operand, tuple(values), node.negated)

    def _bind_like(
        self, node: ast.Like, scope: Scope, collector: AggCollector | None
    ) -> bound.BoundExpr:
        operand = self._bind(node.expr, scope, collector)
        if operand.dtype is not DataType.VARCHAR:
            raise BindError("LIKE requires a VARCHAR operand")
        pattern = self._bind(node.pattern, scope, collector)
        if not isinstance(pattern, bound.BoundLiteral) or not isinstance(
            pattern.value, str
        ):
            raise BindError("LIKE pattern must be a string literal")
        return bound.BoundLike(operand, pattern.value, node.negated)

    def _bind_case(
        self, node: ast.Case, scope: Scope, collector: AggCollector | None
    ) -> bound.BoundExpr:
        whens = []
        result_type: DataType | None = None
        for condition_ast, branch_ast in node.whens:
            condition = self._bind(condition_ast, scope, collector)
            if condition.dtype is not DataType.BOOLEAN:
                raise BindError("CASE WHEN condition must be BOOLEAN")
            branch = self._bind(branch_ast, scope, collector)
            result_type = self._merge_case_type(result_type, branch)
            whens.append((condition, branch))
        else_bound = None
        if node.else_ is not None:
            else_bound = self._bind(node.else_, scope, collector)
            result_type = self._merge_case_type(result_type, else_bound)
        assert result_type is not None
        return bound.BoundCase(tuple(whens), else_bound, result_type)

    @staticmethod
    def _merge_case_type(
        current: DataType | None, branch: bound.BoundExpr
    ) -> DataType:
        if isinstance(branch, bound.BoundLiteral) and branch.value is None:
            return current or branch.dtype
        if current is None:
            return branch.dtype
        if current is branch.dtype:
            return current
        order = [DataType.INT, DataType.BIGINT, DataType.DOUBLE]
        if current in order and branch.dtype in order:
            return order[max(order.index(current), order.index(branch.dtype))]
        raise BindError(
            f"CASE branches have incompatible types "
            f"{current.value} and {branch.dtype.value}"
        )

    def _bind_function(
        self, node: ast.FunctionCall, scope: Scope, collector: AggCollector | None
    ) -> bound.BoundExpr:
        name = node.name.lower()
        if name in AGGREGATE_FUNCTIONS:
            if collector is None:
                raise BindError(
                    f"aggregate function {name}() is not allowed here"
                )
            return self._bind_aggregate(node, scope, collector)
        if node.distinct:
            raise BindError("DISTINCT is only valid inside aggregate functions")
        args = tuple(self._bind(arg, scope, None) for arg in node.args)
        return bound.BoundScalarFunction.bind(name, args)

    def _bind_aggregate(
        self, node: ast.FunctionCall, scope: Scope, collector: AggCollector
    ) -> bound.BoundExpr:
        name = node.name.lower()
        func = AggFunc(name)
        if func is AggFunc.COUNT and (
            len(node.args) == 0
            or (len(node.args) == 1 and isinstance(node.args[0], ast.Star))
        ):
            if node.distinct:
                raise BindError("COUNT(DISTINCT *) is not supported")
            output, dtype = collector.add_aggregate(func, None, False)
            return bound.BoundColumn(output, dtype)
        if len(node.args) != 1:
            raise BindError(f"{name}() takes exactly one argument")
        if node.distinct and func is not AggFunc.COUNT:
            raise BindError(f"DISTINCT is only supported for COUNT, not {name}()")
        # Aggregate arguments live in scan space: no nested aggregates.
        arg = self._bind(node.args[0], scope, None)
        output, dtype = collector.add_aggregate(func, arg, node.distinct)
        return bound.BoundColumn(output, dtype)

    # -- join condition splitting ---------------------------------------------

    def split_join_condition(
        self,
        condition: ast.Expr,
        left_bindings: set[str],
        scope: Scope,
    ) -> tuple[list[tuple[str, str]], bound.BoundExpr | None]:
        """Split an ON condition into equi-key pairs and a residual.

        Returns ``(pairs, residual)`` where pairs are (left qualified column,
        right qualified column) equality keys and residual is everything
        else (bound over the joined scope), or None.
        """
        conjuncts = _split_conjuncts(condition)
        pairs: list[tuple[str, str]] = []
        residual_parts: list[bound.BoundExpr] = []
        for conjunct in conjuncts:
            pair = self._try_equi_pair(conjunct, left_bindings, scope)
            if pair is not None:
                pairs.append(pair)
            else:
                if isinstance(conjunct, ast.Literal) and conjunct.value is True:
                    continue
                residual_parts.append(self.bind_scalar(conjunct, scope))
        residual: bound.BoundExpr | None = None
        for part in residual_parts:
            residual = (
                part if residual is None else bound.BoundLogical.bind(
                    "and", residual, part
                )
            )
        return pairs, residual

    def _try_equi_pair(
        self, conjunct: ast.Expr, left_bindings: set[str], scope: Scope
    ) -> tuple[str, str] | None:
        if not (
            isinstance(conjunct, ast.Binary)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
        ):
            return None
        left_name, left_type = scope.resolve(conjunct.left.name, conjunct.left.table)
        right_name, right_type = scope.resolve(
            conjunct.right.name, conjunct.right.table
        )
        comparable = left_type is right_type or (
            left_type.is_numeric and right_type.is_numeric
        )
        if not comparable:
            raise BindError(
                f"join keys {left_name} and {right_name} are not comparable"
            )
        left_binding = left_name.split(".", 1)[0]
        right_binding = right_name.split(".", 1)[0]
        if left_binding in left_bindings and right_binding not in left_bindings:
            return left_name, right_name
        if right_binding in left_bindings and left_binding not in left_bindings:
            return right_name, left_name
        return None


def _split_conjuncts(node: ast.Expr) -> list[ast.Expr]:
    """Flatten a tree of ANDs into its conjuncts."""
    if isinstance(node, ast.Binary) and node.op.lower() == "and":
        return _split_conjuncts(node.left) + _split_conjuncts(node.right)
    return [node]
