"""Vectorized physical operators.

One function per logical node type, all operating on whole
:class:`~repro.storage.table.TableData` batches.  Grouping, distinct, and
sorting share a code-based representation: every key column is reduced to
dense integer codes (ranks of its sorted unique values) with NULL as an
extra code, which makes multi-column grouping a single ``np.unique`` over a
combined int64 and gives order-preserving sort keys for every data type.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError
from repro.engine.expr import mask_from_predicate
from repro.engine.plan import AggFunc, AggSpec
from repro.storage.table import TableData
from repro.storage.types import ColumnVector, DataType


# ---------------------------------------------------------------------------
# Key encoding shared by aggregate / distinct / sort
# ---------------------------------------------------------------------------


def column_codes(vector: ColumnVector) -> tuple[np.ndarray, np.ndarray]:
    """Encode a column as dense rank codes.

    Returns ``(codes, uniques)`` where ``codes[i]`` is the rank of row i's
    value among the column's sorted distinct values, and NULL rows get code
    ``len(uniques)`` (i.e. they sort last and group together, matching SQL
    GROUP BY semantics and NULLS LAST ordering).
    """
    data = vector.data
    if vector.dtype is DataType.VARCHAR:
        # One vectorized conversion: NULL slots (None) become the string
        # "None" but their codes are overwritten below anyway.
        uniques, inverse = np.unique(data.astype(str), return_inverse=True)
    else:
        uniques, inverse = np.unique(data, return_inverse=True)
    codes = inverse.astype(np.int64)
    if vector.nulls is not None:
        codes[vector.nulls] = len(uniques)
    return codes, uniques


def combined_group_codes(
    table: TableData, key_columns: list[str]
) -> tuple[np.ndarray, np.ndarray]:
    """Combine multiple key columns into one group id per row.

    Returns ``(group_ids, first_row_index)``: dense group ids in
    [0, num_groups) and, per group, the index of its first row in input
    order (used to materialize key output values).
    """
    num_rows = table.num_rows
    if not key_columns:
        return np.zeros(num_rows, dtype=np.int64), np.zeros(
            min(num_rows, 1), dtype=np.int64
        )
    combined = np.zeros(num_rows, dtype=np.int64)
    for name in key_columns:
        codes, uniques = column_codes(table.column(name))
        cardinality = len(uniques) + 1
        combined = combined * cardinality + codes
    _, first_indices, group_ids = np.unique(
        combined, return_index=True, return_inverse=True
    )
    # Renumber groups by first appearance so output order is deterministic.
    order = np.argsort(first_indices, kind="stable")
    remap = np.empty_like(order)
    remap[order] = np.arange(len(order))
    return remap[group_ids], np.sort(first_indices)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def execute_aggregate(
    table: TableData, group_keys: list[str], aggregates: list[AggSpec]
) -> TableData:
    """Hash aggregation with SQL NULL semantics.

    NULL inputs are ignored by every aggregate; COUNT(*) counts rows; an
    empty input with no GROUP BY produces the SQL-standard single row
    (count 0, other aggregates NULL).
    """
    num_rows = table.num_rows
    if group_keys:
        group_ids, first_rows = combined_group_codes(table, group_keys)
        num_groups = len(first_rows)
    else:
        group_ids = np.zeros(num_rows, dtype=np.int64)
        num_groups = 1
        first_rows = np.zeros(0, dtype=np.int64)
    columns: dict[str, ColumnVector] = {}
    for key in group_keys:
        columns[key] = table.column(key).take(first_rows)
    for spec in aggregates:
        columns[spec.output] = _compute_aggregate(
            table, spec, group_ids, num_groups
        )
    return TableData(columns)


def _valid_mask(vector: ColumnVector) -> np.ndarray:
    if vector.nulls is None:
        return np.ones(len(vector), dtype=bool)
    return ~vector.nulls


def _compute_aggregate(
    table: TableData, spec: AggSpec, group_ids: np.ndarray, num_groups: int
) -> ColumnVector:
    if spec.func is AggFunc.COUNT and spec.input_column is None:
        counts = np.bincount(group_ids, minlength=num_groups)
        return ColumnVector(DataType.BIGINT, counts.astype(np.int64))
    assert spec.input_column is not None
    vector = table.column(spec.input_column)
    valid = _valid_mask(vector)
    valid_groups = group_ids[valid]
    if spec.func is AggFunc.COUNT:
        if spec.distinct:
            return _count_distinct(vector, valid, valid_groups, num_groups)
        counts = np.bincount(valid_groups, minlength=num_groups)
        return ColumnVector(DataType.BIGINT, counts.astype(np.int64))
    counts = np.bincount(valid_groups, minlength=num_groups)
    empty = counts == 0
    nulls = empty if empty.any() else None
    if spec.func in (AggFunc.SUM, AggFunc.AVG):
        values = vector.data[valid].astype(np.float64)
        sums = np.bincount(valid_groups, weights=values, minlength=num_groups)
        if spec.func is AggFunc.AVG:
            with np.errstate(invalid="ignore", divide="ignore"):
                data = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
            return ColumnVector(DataType.DOUBLE, data, nulls)
        data = sums.astype(spec.dtype.numpy_dtype)
        return ColumnVector(spec.dtype, data, nulls)
    if spec.func in (AggFunc.MIN, AggFunc.MAX):
        return _min_max(vector, spec, valid, valid_groups, num_groups, nulls)
    raise ExecutionError(f"unsupported aggregate {spec.func}")  # pragma: no cover


def _count_distinct(
    vector: ColumnVector,
    valid: np.ndarray,
    valid_groups: np.ndarray,
    num_groups: int,
) -> ColumnVector:
    if len(vector) == 0 or not valid.any():
        return ColumnVector(
            DataType.BIGINT, np.zeros(num_groups, dtype=np.int64)
        )
    codes, _ = column_codes(vector)
    pairs = valid_groups.astype(np.int64) * (int(codes.max()) + 2) + codes[valid]
    unique_pairs = np.unique(pairs)
    distinct_groups = unique_pairs // (int(codes.max()) + 2)
    counts = np.bincount(distinct_groups.astype(np.int64), minlength=num_groups)
    return ColumnVector(DataType.BIGINT, counts.astype(np.int64))


def _min_max(
    vector: ColumnVector,
    spec: AggSpec,
    valid: np.ndarray,
    valid_groups: np.ndarray,
    num_groups: int,
    nulls: np.ndarray | None,
) -> ColumnVector:
    codes, uniques = column_codes(vector)
    valid_codes = codes[valid]
    if spec.func is AggFunc.MIN:
        best = np.full(num_groups, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(best, valid_groups, valid_codes)
    else:
        best = np.full(num_groups, -1, dtype=np.int64)
        np.maximum.at(best, valid_groups, valid_codes)
    safe = np.clip(best, 0, max(len(uniques) - 1, 0))
    if len(uniques) == 0:
        data = np.zeros(num_groups, dtype=spec.dtype.numpy_dtype)
        if spec.dtype is DataType.VARCHAR:
            data = np.array([""] * num_groups, dtype=object)
        return ColumnVector(
            spec.dtype, data, np.ones(num_groups, dtype=bool)
        )
    data = uniques[safe]
    if spec.dtype is DataType.VARCHAR:
        data = np.asarray(data, dtype=object)
    else:
        data = data.astype(spec.dtype.numpy_dtype)
    return ColumnVector(spec.dtype, data, nulls)


# ---------------------------------------------------------------------------
# Partial -> final aggregation (morsel-parallel breakers)
# ---------------------------------------------------------------------------


def aggregate_supports_partial(
    aggregates: list[AggSpec], input_types: dict[str, DataType]
) -> bool:
    """Whether partial->final decomposition is *bit-identical* to one pass.

    COUNT / MIN / MAX always are (integer counters; codes-based extrema).
    SUM and AVG are only admitted over integral inputs: their accumulators
    are exact in float64 there, so any grouping of the additions produces
    the same value.  DOUBLE accumulation is order-sensitive (float addition
    is non-associative) and DISTINCT needs global value sets — both fall
    back to gather mode, where the coordinator runs the one-pass kernel
    over morsel-ordered batches and is trivially identical.
    """
    for spec in aggregates:
        if spec.distinct:
            return False
        if spec.func is AggFunc.COUNT:
            continue
        if spec.func in (AggFunc.MIN, AggFunc.MAX):
            continue
        if spec.input_column is None:
            return False
        input_dtype = input_types.get(spec.input_column)
        if input_dtype is None or input_dtype is DataType.DOUBLE:
            return False
    return True


def _partial_specs(aggregates: list[AggSpec]) -> list[AggSpec]:
    specs: list[AggSpec] = []
    for spec in aggregates:
        if spec.func is AggFunc.AVG:
            specs.append(
                AggSpec(
                    AggFunc.SUM,
                    spec.input_column,
                    spec.output + "__psum",
                    dtype=DataType.DOUBLE,
                )
            )
            specs.append(
                AggSpec(AggFunc.COUNT, spec.input_column, spec.output + "__pcount")
            )
        elif spec.func is AggFunc.COUNT:
            specs.append(AggSpec(AggFunc.COUNT, spec.input_column, spec.output))
        else:
            specs.append(
                AggSpec(spec.func, spec.input_column, spec.output, dtype=spec.dtype)
            )
    return specs


def partial_aggregate(
    table: TableData, group_keys: list[str], aggregates: list[AggSpec]
) -> TableData:
    """One morsel's aggregation state as a table (the worker-side phase).

    COUNT becomes per-group counts, SUM/MIN/MAX their per-group partials,
    and AVG splits into an exact (sum, count) pair — everything
    :func:`final_aggregate` can merge without losing bit-identity.
    """
    return execute_aggregate(table, group_keys, _partial_specs(aggregates))


def final_aggregate(
    partials: TableData, group_keys: list[str], aggregates: list[AggSpec]
) -> TableData:
    """Merge concatenated partial states (the coordinator-side phase).

    ``partials`` must be the morsel partial tables concatenated in morsel
    order: group output order is first appearance, which then matches the
    sequential single-pass order exactly.
    """
    merge_specs: list[AggSpec] = []
    for spec in aggregates:
        if spec.func is AggFunc.AVG:
            merge_specs.append(
                AggSpec(
                    AggFunc.SUM,
                    spec.output + "__psum",
                    spec.output + "__psum",
                    dtype=DataType.DOUBLE,
                )
            )
            merge_specs.append(
                AggSpec(
                    AggFunc.SUM,
                    spec.output + "__pcount",
                    spec.output + "__pcount",
                    dtype=DataType.BIGINT,
                )
            )
        elif spec.func in (AggFunc.COUNT, AggFunc.SUM):
            merge_specs.append(
                AggSpec(AggFunc.SUM, spec.output, spec.output, dtype=spec.dtype)
            )
        else:
            merge_specs.append(
                AggSpec(spec.func, spec.output, spec.output, dtype=spec.dtype)
            )
    merged = execute_aggregate(partials, group_keys, merge_specs)
    columns: dict[str, ColumnVector] = {}
    for key in group_keys:
        columns[key] = merged.column(key)
    for spec in aggregates:
        if spec.func is AggFunc.AVG:
            sums = merged.column(spec.output + "__psum").data.astype(np.float64)
            counts = merged.column(spec.output + "__pcount").data.astype(np.int64)
            # The same division as the one-pass kernel, on exact operands.
            with np.errstate(invalid="ignore", divide="ignore"):
                data = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
            empty = counts == 0
            columns[spec.output] = ColumnVector(
                DataType.DOUBLE, data, empty if empty.any() else None
            )
        elif spec.func is AggFunc.COUNT:
            # Groups absent from every partial cannot occur; counts of 0
            # (all-NULL inputs) are valid zeros, never NULL.
            vector = merged.column(spec.output)
            data = vector.data.astype(np.int64)
            if vector.nulls is not None:
                data = np.where(vector.nulls, 0, data)
            columns[spec.output] = ColumnVector(DataType.BIGINT, data)
        else:
            columns[spec.output] = merged.column(spec.output)
    return TableData(columns)


# ---------------------------------------------------------------------------
# Join
# ---------------------------------------------------------------------------


def execute_hash_join(
    left: TableData,
    right: TableData,
    left_keys: list[str],
    right_keys: list[str],
    is_left_join: bool,
    residual_mask=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Compute matching row index pairs for an equi join.

    Returns ``(left_indices, right_indices)``.  NULL keys never match.
    With no keys, produces the cross product (used for comma joins whose
    condition lives in WHERE).  The caller applies residual predicates and
    LEFT-join null padding — see :func:`join_tables`.
    """
    if not left_keys:
        left_indices = np.repeat(np.arange(left.num_rows), right.num_rows)
        right_indices = np.tile(np.arange(right.num_rows), left.num_rows)
        return left_indices, right_indices
    build: dict[tuple, list[int]] = {}
    right_key_vectors = [right.column(name) for name in right_keys]
    right_valid = np.ones(right.num_rows, dtype=bool)
    for vector in right_key_vectors:
        right_valid &= _valid_mask(vector)
    right_rows = [vector.data.tolist() for vector in right_key_vectors]
    for index in np.flatnonzero(right_valid):
        key = tuple(column[index] for column in right_rows)
        build.setdefault(key, []).append(int(index))
    left_key_vectors = [left.column(name) for name in left_keys]
    left_valid = np.ones(left.num_rows, dtype=bool)
    for vector in left_key_vectors:
        left_valid &= _valid_mask(vector)
    left_rows = [vector.data.tolist() for vector in left_key_vectors]
    left_out: list[int] = []
    right_out: list[int] = []
    for index in np.flatnonzero(left_valid):
        key = tuple(column[index] for column in left_rows)
        matches = build.get(key)
        if matches:
            left_out.extend([int(index)] * len(matches))
            right_out.extend(matches)
    return (
        np.asarray(left_out, dtype=np.int64),
        np.asarray(right_out, dtype=np.int64),
    )


def join_tables(
    left: TableData,
    right: TableData,
    left_indices: np.ndarray,
    right_indices: np.ndarray,
    is_left_join: bool,
    residual=None,
) -> TableData:
    """Materialize join output from index pairs, applying the residual
    predicate and, for LEFT joins, null-padding unmatched left rows."""
    left_part = left.take(left_indices)
    right_part = right.take(right_indices)
    combined = TableData({**left_part.columns, **right_part.columns})
    if residual is not None and combined.num_rows:
        mask = mask_from_predicate(residual.evaluate(combined))
        combined = combined.filter(mask)
        left_indices = left_indices[mask]
    if not is_left_join:
        return combined
    matched = np.zeros(left.num_rows, dtype=bool)
    matched[left_indices] = True
    unmatched = np.flatnonzero(~matched)
    if len(unmatched) == 0:
        return combined
    left_missing = left.take(unmatched)
    null_right = TableData(
        {
            name: _all_null_vector(vector.dtype, len(unmatched))
            for name, vector in right.columns.items()
        }
    )
    padding = TableData({**left_missing.columns, **null_right.columns})
    return combined.concat(padding)


def _all_null_vector(dtype: DataType, count: int) -> ColumnVector:
    if dtype is DataType.VARCHAR:
        data = np.array([""] * count, dtype=object)
    else:
        data = np.zeros(count, dtype=dtype.numpy_dtype)
    return ColumnVector(dtype, data, np.ones(count, dtype=bool))


def execute_semi_anti_join(
    left: TableData,
    right: TableData,
    left_keys: list[str],
    right_keys: list[str],
    anti: bool,
) -> TableData:
    """Semi join (IN subquery) / anti join (NOT IN subquery).

    SQL NULL semantics are honoured:

    * a NULL left key never matches — excluded from both semi and anti
      results (``x IN S`` / ``x NOT IN S`` are UNKNOWN for NULL x, except
      over an empty S);
    * an empty subquery result makes NOT IN pass every row (even NULL x,
      since ``x NOT IN ()`` is TRUE);
    * a NULL among the subquery's values makes NOT IN pass no rows at all
      (each comparison is at best UNKNOWN).
    """
    if left.num_rows == 0:
        return left
    build_values: set[tuple] = set()
    right_has_null = False
    right_vectors = [right.column(name) for name in right_keys]
    if right.num_rows:
        right_valid = np.ones(right.num_rows, dtype=bool)
        for vector in right_vectors:
            right_valid &= _valid_mask(vector)
        right_has_null = not right_valid.all()
        right_rows = [vector.data.tolist() for vector in right_vectors]
        for index in np.flatnonzero(right_valid):
            build_values.add(tuple(column[index] for column in right_rows))
    if anti and right.num_rows == 0:
        return left  # x NOT IN (empty) is TRUE for every x
    if anti and right_has_null:
        return left.slice(0, 0)  # any NULL in S poisons NOT IN entirely
    left_vectors = [left.column(name) for name in left_keys]
    left_valid = np.ones(left.num_rows, dtype=bool)
    for vector in left_vectors:
        left_valid &= _valid_mask(vector)
    left_rows = [vector.data.tolist() for vector in left_vectors]
    matches = np.zeros(left.num_rows, dtype=bool)
    for index in np.flatnonzero(left_valid):
        key = tuple(column[index] for column in left_rows)
        if key in build_values:
            matches[index] = True
    if anti:
        return left.filter(left_valid & ~matches)
    return left.filter(matches)


def execute_union_all(
    tables: list[TableData], schema: list[tuple[str, DataType]]
) -> TableData:
    """Concatenate branch outputs positionally under the first branch's
    column names (numeric branches are promoted to the output type)."""
    from repro.engine.expr import BoundCast, BoundColumn

    aligned: list[TableData] = []
    for table in tables:
        columns: dict[str, ColumnVector] = {}
        for (out_name, out_type), in_name in zip(schema, table.column_names):
            vector = table.column(in_name)
            if vector.dtype is not out_type:
                vector = BoundCast(
                    BoundColumn(in_name, vector.dtype), out_type
                ).evaluate(table)
            columns[out_name] = vector
        aligned.append(TableData(columns))
    return TableData.concat_all(aligned)


# ---------------------------------------------------------------------------
# Sort / distinct / limit
# ---------------------------------------------------------------------------


def _sort_codes(vector: ColumnVector, ascending: bool) -> np.ndarray:
    """Integer sort keys for one column: dense rank codes with NULLs last.

    Staying in int64 end to end matters: the previous implementation cast
    codes to float64, which collapses ranks above 2^53 — a silent mis-sort
    once a column has that many distinct values.  Codes are ranks of the
    column's sorted uniques, so they order *every* dtype exactly (floats
    included); descending negates the codes and NULLs are pinned to the
    int64 maximum so they sort last in both directions.
    """
    codes, _ = column_codes(vector)
    keys = -codes if not ascending else codes.copy()
    if vector.nulls is not None:
        keys[vector.nulls] = np.iinfo(np.int64).max
    return keys


def execute_sort(
    table: TableData, keys: list[tuple[str, bool]]
) -> TableData:
    """Stable multi-key sort; NULLs last for both directions."""
    if table.num_rows == 0:
        return table
    key_arrays = [
        _sort_codes(table.column(name), ascending) for name, ascending in keys
    ]
    # np.lexsort is stable and treats its *last* key as primary.
    indices = np.lexsort(tuple(reversed(key_arrays)))
    return table.take(indices)


def execute_top_n(
    table: TableData,
    keys: list[tuple[str, bool]],
    limit: int | None,
    offset: int = 0,
) -> TableData:
    """``ORDER BY … LIMIT k`` without fully sorting the input.

    Partial selection via ``np.argpartition`` on the primary sort key keeps
    every row that can possibly rank in the top ``limit + offset`` (ties at
    the boundary included), then only those candidates are sorted.  The
    candidates are gathered in input order and the final sort is stable, so
    the result is bit-identical to ``execute_limit(execute_sort(...))``.
    """
    num_rows = table.num_rows
    n = (limit or 0) + offset
    if limit is None or num_rows == 0 or n >= num_rows:
        return execute_limit(execute_sort(table, keys), limit, offset)
    if n == 0:
        return table.slice(0, 0)
    primary = _sort_codes(table.column(keys[0][0]), keys[0][1])
    boundary = primary[np.argpartition(primary, n - 1)[n - 1]]
    candidates = np.flatnonzero(primary <= boundary)  # ascending input order
    key_arrays = [
        _sort_codes(table.column(name), ascending)[candidates]
        for name, ascending in keys
    ]
    order = np.lexsort(tuple(reversed(key_arrays)))
    return table.take(candidates[order[offset:n]])


def execute_distinct(table: TableData) -> TableData:
    """Drop duplicate rows, keeping first occurrences in input order."""
    if table.num_rows == 0 or not table.columns:
        return table
    _, first_rows = combined_group_codes(table, table.column_names)
    return table.take(first_rows)


def execute_limit(table: TableData, limit: int | None, offset: int) -> TableData:
    start = min(offset, table.num_rows)
    stop = table.num_rows if limit is None else min(start + limit, table.num_rows)
    return table.slice(start, stop)
