"""Data sources: where Scan leaves get their bytes.

The executor is storage-agnostic behind :class:`DataSource`.  Production
uses :class:`ObjectStoreSource` (the accounted S3-like store, which is what
makes $/TB-scan billing real); tests and CF materialized views use
:class:`InMemorySource`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Protocol

from repro.errors import ExecutionError
from repro.engine.plan import Scan
from repro.storage.cache import BufferPool
from repro.storage.file_format import FileFooter, PixelsReader
from repro.storage.object_store import ObjectStore, StorageMetrics, StoreView
from repro.storage.table import TableData, TableReader


@dataclass(frozen=True)
class SourceResult:
    """A scan's payload plus its cost accounting.

    The request/cache counters mirror :class:`~repro.storage.table
    .ScanResult` so they survive the executor boundary and land in
    :class:`~repro.engine.executor.QueryStats` (sources without a
    storage layer leave them at zero).
    """

    data: TableData
    bytes_scanned: int
    latency_s: float
    get_requests: int = 0
    footer_gets: int = 0  # request-class split of get_requests
    chunk_gets: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    row_groups_skipped: int = 0


@dataclass(frozen=True)
class Morsel:
    """One unit of parallel scan work: a single row group of one file.

    ``group_index`` is None for the degenerate "empty file" morsel (every
    group pruned, or a file with no rows) — it exists only to carry the
    footer accounting and skip count that the sequential path surfaces.
    ``footer_delta`` is attached to a file's *first* morsel: the footer
    read happens once on the coordinator during enumeration, and its
    counters must land on exactly one granule, like the sequential path.
    """

    file_key: str
    group_index: int | None
    footer: FileFooter
    footer_delta: StorageMetrics | None
    row_groups_skipped: int


class DataSource(Protocol):
    """Anything that can materialize a Scan leaf."""

    def scan(self, node: Scan) -> SourceResult:
        """Read the scan's projection (with zone-map ranges applied) and
        return columns under the scan's *qualified* output names."""
        ...

    def scan_batches(self, node: Scan) -> Iterator[SourceResult]:
        """Stream the scan as a sequence of bounded granules.

        Each yielded :class:`SourceResult` carries one granule of rows
        (row-group granularity for object-store scans) plus the cost
        accounting *delta* for producing exactly that granule, so a
        consumer that stops iterating early is only charged for what was
        actually fetched.  Sources without a natural granule may yield a
        single result equal to :meth:`scan`.
        """
        ...


def iter_source_batches(source: DataSource, node: Scan) -> Iterator[SourceResult]:
    """``source.scan_batches`` when available, else one whole-scan granule.

    This keeps third-party / test doubles that only implement ``scan``
    working under the pipeline executor (they just lose early-exit
    laziness).
    """
    scan_batches = getattr(source, "scan_batches", None)
    if scan_batches is None:
        yield source.scan(node)
        return
    yield from scan_batches(node)


class ObjectStoreSource:
    """Reads base tables from the object store via :class:`TableReader`.

    Args:
        store: The backing object store.
        keys: Optional restriction to specific file keys — this is how
            Turbo assigns distinct file subsets of one table to parallel
            workers.
        cache: Optional buffer pool shared by this worker tier.  The
            coordinator passes its long-lived pool for VM execution (warm
            across queries) and a fresh pool per CF invocation (functions
            cold-start).  Caching never changes ``bytes_scanned`` — the
            billing basis is logical bytes either way.
    """

    def __init__(
        self,
        store: ObjectStore,
        keys: list[str] | None = None,
        cache: "BufferPool | None" = None,
    ) -> None:
        self._store = store
        self._keys = keys
        self._cache = cache

    def scan(self, node: Scan) -> SourceResult:
        reader = self._table_reader(node)
        base_columns = [base for _, base in node.columns]
        result = reader.scan(
            columns=base_columns,
            ranges=node.ranges or None,
            keys=self._keys,
        )
        return SourceResult(
            self._rename(result.data, node),
            result.bytes_scanned,
            result.latency_s,
            get_requests=result.get_requests,
            footer_gets=result.footer_gets,
            chunk_gets=result.chunk_gets,
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            cache_evictions=result.cache_evictions,
            row_groups_skipped=result.row_groups_skipped,
        )

    def scan_batches(self, node: Scan) -> Iterator[SourceResult]:
        """Stream the scan one row group at a time, fetching lazily.

        Footers are read when a file is first touched; a row group's
        chunks are fetched only when the pipeline pulls that granule.  A
        consumer that abandons the iterator (LIMIT satisfied) therefore
        never pays — in GETs, bytes, or billed logical bytes — for the row
        groups and files it did not reach.  Per-granule accounting is the
        metrics delta since the previous yield, so summing the yielded
        counters reproduces :meth:`scan`'s totals exactly when the stream
        is drained in full.
        """
        from repro.storage.object_store import StorageMetrics

        reader = self._table_reader(node)
        base_columns = [base for _, base in node.columns]
        ranges = node.ranges or None
        file_keys = self._keys if self._keys is not None else reader.file_keys()
        metrics = self._store.metrics
        for key in file_keys:
            # Deltas are snapshotted tightly around each fetch (not across
            # yields) so work other code does between pulls is never
            # attributed to this scan.
            before = metrics.snapshot()
            file_reader = PixelsReader(
                self._store, node.table.bucket, key, cache=self._cache
            )
            pending = metrics.delta(before)  # the footer read
            pending_skipped = (
                file_reader.count_pruned_groups(ranges) if ranges else 0
            )
            groups = file_reader.iter_groups(columns=base_columns, ranges=ranges)
            yielded = False
            while True:
                before = metrics.snapshot()
                vectors = next(groups, None)
                if vectors is None:
                    break
                delta = metrics.delta(before)
                delta.merge(pending)
                pending = StorageMetrics()
                yield self._granule(
                    self._rename(TableData(vectors), node), delta, pending_skipped
                )
                pending_skipped = 0
                yielded = True
            if not yielded:
                # Fully pruned (or empty) file: still surface the footer
                # read and the skip count so accounting stays exact.
                yield self._granule(
                    TableData.empty(node.output_schema()), pending, pending_skipped
                )

    # -- morsel-driven parallel scan path -----------------------------------

    def morsel_granules(self, node: Scan) -> list[Morsel]:
        """Enumerate the scan as row-group morsels (coordinator side).

        Footers are read here, sequentially, through the *real* store and
        the configured pool — byte-for-byte the same footer GET/cache
        accounting as the sequential path, charged to the shared metrics
        immediately.  The per-file footer delta is captured and attached
        to that file's first morsel so operator-level counters also match.
        """
        base_columns = [base for _, base in node.columns]
        del base_columns  # validated at read time; enumeration needs none
        ranges = node.ranges or None
        reader = self._table_reader(node)
        file_keys = self._keys if self._keys is not None else reader.file_keys()
        metrics = self._store.metrics
        morsels: list[Morsel] = []
        for key in file_keys:
            before = metrics.snapshot()
            file_reader = PixelsReader(
                self._store, node.table.bucket, key, cache=self._cache
            )
            footer_delta: StorageMetrics | None = metrics.delta(before)
            skipped = file_reader.count_pruned_groups(ranges) if ranges else 0
            surviving = file_reader.surviving_group_indexes(ranges)
            if not surviving:
                morsels.append(
                    Morsel(key, None, file_reader.footer, footer_delta, skipped)
                )
                continue
            for group_index in surviving:
                morsels.append(
                    Morsel(
                        key, group_index, file_reader.footer, footer_delta, skipped
                    )
                )
                footer_delta = None
                skipped = 0
        return morsels

    def read_morsel(self, node: Scan, morsel: Morsel, view: StoreView) -> SourceResult:
        """Materialize one morsel through ``view`` (worker side).

        Chunk GETs and pool hit/miss accounting land in ``view.metrics``
        only; the caller merges views into the shared store metrics after
        the barrier, in morsel order.  The returned granule's counters
        (chunks + any attached footer delta) equal what the sequential
        stream would have yielded for the same row group.
        """
        delta = StorageMetrics()
        if morsel.footer_delta is not None:
            delta.merge(morsel.footer_delta)
        if morsel.group_index is None:
            return self._granule(
                TableData.empty(node.output_schema()), delta, morsel.row_groups_skipped
            )
        file_reader = PixelsReader(
            view,
            node.table.bucket,
            morsel.file_key,
            cache=self._cache,
            footer=morsel.footer,
        )
        before = view.metrics.snapshot()
        vectors = file_reader.read_group(
            morsel.group_index, [base for _, base in node.columns]
        )
        delta.merge(view.metrics.delta(before))
        return self._granule(
            self._rename(TableData(vectors), node), delta, morsel.row_groups_skipped
        )

    def store_view(self) -> StoreView:
        """A fresh private-metrics view over this source's store."""
        return StoreView(self._store)

    def merge_view_metrics(self, views: list[StoreView]) -> None:
        """Fold worker views into the shared store metrics, in order."""
        for view in views:
            self._store.metrics.merge(view.metrics)

    def _table_reader(self, node: Scan) -> TableReader:
        if not node.table.bucket or not node.table.prefix:
            raise ExecutionError(
                f"table {node.table.name!r} has no storage location"
            )
        return TableReader(
            self._store, node.table.bucket, node.table.prefix, cache=self._cache
        )

    @staticmethod
    def _rename(data: TableData, node: Scan) -> TableData:
        return data.rename({base: out for out, base in node.columns}).select(
            [out for out, _ in node.columns]
        )

    @staticmethod
    def _granule(data: TableData, delta, skipped: int) -> SourceResult:
        return SourceResult(
            data,
            delta.logical_bytes_scanned,
            delta.read_time_s,
            get_requests=delta.get_requests,
            footer_gets=delta.footer_get_requests,
            chunk_gets=delta.chunk_get_requests,
            cache_hits=delta.footer_cache_hits + delta.chunk_cache_hits,
            cache_misses=delta.footer_cache_misses + delta.chunk_cache_misses,
            cache_evictions=delta.chunk_cache_evictions,
            row_groups_skipped=skipped,
        )


class SingleGranuleSource:
    """A source serving exactly one pre-fetched granule.

    The morsel driver reads a row group up front (through a private
    :class:`~repro.storage.object_store.StoreView`) and then runs a normal
    pipeline instance over it; this adapter feeds that granule — with its
    accounting — into the instance's scan operator unchanged.
    """

    def __init__(self, granule: SourceResult) -> None:
        self._granule = granule

    def scan(self, node: Scan) -> SourceResult:
        return self._granule

    def scan_batches(self, node: Scan) -> Iterator[SourceResult]:
        yield self._granule


class InMemorySource:
    """Serves scans from in-memory tables keyed by (schema, table) name.

    ``bytes_scanned`` is the in-memory size of the projected columns, so
    cost-model tests behave consistently with the object-store source.
    """

    def __init__(self, tables: dict[tuple[str, str], TableData] | None = None) -> None:
        self._tables = dict(tables or {})

    def add_table(self, schema: str, table: str, data: TableData) -> None:
        self._tables[(schema, table)] = data

    def scan(self, node: Scan) -> SourceResult:
        key = (node.schema_name, node.table.name)
        if key not in self._tables:
            raise ExecutionError(f"no in-memory table {key}")
        data = self._tables[key]
        projected = data.select([base for _, base in node.columns]).rename(
            {base: out for out, base in node.columns}
        )
        return SourceResult(projected, projected.nbytes(), 0.0)

    def scan_batches(self, node: Scan) -> Iterator[SourceResult]:
        """One granule: in-memory tables have no fetch cost to defer (the
        pipeline's scan operator re-slices it into record batches)."""
        yield self.scan(node)
