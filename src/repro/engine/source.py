"""Data sources: where Scan leaves get their bytes.

The executor is storage-agnostic behind :class:`DataSource`.  Production
uses :class:`ObjectStoreSource` (the accounted S3-like store, which is what
makes $/TB-scan billing real); tests and CF materialized views use
:class:`InMemorySource`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.errors import ExecutionError
from repro.engine.plan import Scan
from repro.storage.cache import BufferPool
from repro.storage.object_store import ObjectStore
from repro.storage.table import TableData, TableReader


@dataclass(frozen=True)
class SourceResult:
    """A scan's payload plus its cost accounting.

    The request/cache counters mirror :class:`~repro.storage.table
    .ScanResult` so they survive the executor boundary and land in
    :class:`~repro.engine.executor.QueryStats` (sources without a
    storage layer leave them at zero).
    """

    data: TableData
    bytes_scanned: int
    latency_s: float
    get_requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    row_groups_skipped: int = 0


class DataSource(Protocol):
    """Anything that can materialize a Scan leaf."""

    def scan(self, node: Scan) -> SourceResult:
        """Read the scan's projection (with zone-map ranges applied) and
        return columns under the scan's *qualified* output names."""
        ...


class ObjectStoreSource:
    """Reads base tables from the object store via :class:`TableReader`.

    Args:
        store: The backing object store.
        keys: Optional restriction to specific file keys — this is how
            Turbo assigns distinct file subsets of one table to parallel
            workers.
        cache: Optional buffer pool shared by this worker tier.  The
            coordinator passes its long-lived pool for VM execution (warm
            across queries) and a fresh pool per CF invocation (functions
            cold-start).  Caching never changes ``bytes_scanned`` — the
            billing basis is logical bytes either way.
    """

    def __init__(
        self,
        store: ObjectStore,
        keys: list[str] | None = None,
        cache: "BufferPool | None" = None,
    ) -> None:
        self._store = store
        self._keys = keys
        self._cache = cache

    def scan(self, node: Scan) -> SourceResult:
        if not node.table.bucket or not node.table.prefix:
            raise ExecutionError(
                f"table {node.table.name!r} has no storage location"
            )
        reader = TableReader(
            self._store, node.table.bucket, node.table.prefix, cache=self._cache
        )
        base_columns = [base for _, base in node.columns]
        result = reader.scan(
            columns=base_columns,
            ranges=node.ranges or None,
            keys=self._keys,
        )
        renamed = result.data.rename(
            {base: out for out, base in node.columns}
        ).select([out for out, _ in node.columns])
        return SourceResult(
            renamed,
            result.bytes_scanned,
            result.latency_s,
            get_requests=result.get_requests,
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            cache_evictions=result.cache_evictions,
            row_groups_skipped=result.row_groups_skipped,
        )


class InMemorySource:
    """Serves scans from in-memory tables keyed by (schema, table) name.

    ``bytes_scanned`` is the in-memory size of the projected columns, so
    cost-model tests behave consistently with the object-store source.
    """

    def __init__(self, tables: dict[tuple[str, str], TableData] | None = None) -> None:
        self._tables = dict(tables or {})

    def add_table(self, schema: str, table: str, data: TableData) -> None:
        self._tables[(schema, table)] = data

    def scan(self, node: Scan) -> SourceResult:
        key = (node.schema_name, node.table.name)
        if key not in self._tables:
            raise ExecutionError(f"no in-memory table {key}")
        data = self._tables[key]
        projected = data.select([base for _, base in node.columns]).rename(
            {base: out for out, base in node.columns}
        )
        return SourceResult(projected, projected.nbytes(), 0.0)
