"""SQL tokenizer.

Produces a flat token stream for the recursive-descent parser.  Keywords are
case-insensitive; identifiers preserve case but compare case-insensitively
downstream (the binder lowercases them).  String literals use single quotes
with ``''`` as the escape, per the SQL standard.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    COMMA = "comma"
    LPAREN = "lparen"
    RPAREN = "rparen"
    DOT = "dot"
    STAR = "star"
    SEMICOLON = "semicolon"
    EOF = "eof"


KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having", "order",
    "limit", "offset", "as", "and", "or", "not", "in", "between", "like",
    "is", "null", "true", "false", "join", "inner", "left", "right", "outer",
    "on", "asc", "desc", "case", "when", "then", "else", "end", "date",
    "interval", "exists", "union", "all", "cast", "count", "sum", "avg",
    "min", "max",
}

OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%", "||")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    text: str
    position: int

    @property
    def lower(self) -> str:
        return self.text.lower()

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.lower in names


class Lexer:
    """Converts SQL text into a list of tokens ending with EOF."""

    def __init__(self, sql: str) -> None:
        self._sql = sql
        self._pos = 0

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= len(self._sql):
                tokens.append(Token(TokenType.EOF, "", self._pos))
                return tokens
            tokens.append(self._next_token())

    def _skip_whitespace_and_comments(self) -> None:
        sql = self._sql
        while self._pos < len(sql):
            char = sql[self._pos]
            if char.isspace():
                self._pos += 1
            elif sql.startswith("--", self._pos):
                newline = sql.find("\n", self._pos)
                self._pos = len(sql) if newline < 0 else newline + 1
            elif sql.startswith("/*", self._pos):
                end = sql.find("*/", self._pos + 2)
                if end < 0:
                    raise LexError("unterminated block comment", self._pos)
                self._pos = end + 2
            else:
                return

    def _next_token(self) -> Token:
        sql = self._sql
        start = self._pos
        char = sql[start]
        if char == ",":
            self._pos += 1
            return Token(TokenType.COMMA, ",", start)
        if char == "(":
            self._pos += 1
            return Token(TokenType.LPAREN, "(", start)
        if char == ")":
            self._pos += 1
            return Token(TokenType.RPAREN, ")", start)
        if char == ".":
            if start + 1 < len(sql) and sql[start + 1].isdigit():
                return self._lex_number()
            self._pos += 1
            return Token(TokenType.DOT, ".", start)
        if char == ";":
            self._pos += 1
            return Token(TokenType.SEMICOLON, ";", start)
        if char == "'":
            return self._lex_string()
        if char == '"':
            return self._lex_quoted_identifier()
        if char.isdigit():
            return self._lex_number()
        if char.isalpha() or char == "_":
            return self._lex_word()
        for operator in OPERATORS:
            if sql.startswith(operator, start):
                self._pos += len(operator)
                token_type = (
                    TokenType.STAR if operator == "*" else TokenType.OPERATOR
                )
                return Token(token_type, operator, start)
        raise LexError(f"unexpected character {char!r}", start)

    def _lex_string(self) -> Token:
        start = self._pos
        sql = self._sql
        pos = start + 1
        parts: list[str] = []
        while pos < len(sql):
            if sql[pos] == "'":
                if pos + 1 < len(sql) and sql[pos + 1] == "'":
                    parts.append("'")
                    pos += 2
                    continue
                self._pos = pos + 1
                return Token(TokenType.STRING, "".join(parts), start)
            parts.append(sql[pos])
            pos += 1
        raise LexError("unterminated string literal", start)

    def _lex_quoted_identifier(self) -> Token:
        start = self._pos
        end = self._sql.find('"', start + 1)
        if end < 0:
            raise LexError("unterminated quoted identifier", start)
        self._pos = end + 1
        return Token(TokenType.IDENTIFIER, self._sql[start + 1 : end], start)

    def _lex_number(self) -> Token:
        start = self._pos
        sql = self._sql
        pos = start
        seen_dot = False
        seen_exp = False
        while pos < len(sql):
            char = sql[pos]
            if char.isdigit():
                pos += 1
            elif char == "." and not seen_dot and not seen_exp:
                seen_dot = True
                pos += 1
            elif char in "eE" and not seen_exp and pos > start:
                if pos + 1 < len(sql) and (
                    sql[pos + 1].isdigit() or sql[pos + 1] in "+-"
                ):
                    seen_exp = True
                    pos += 2
                else:
                    break
            else:
                break
        self._pos = pos
        return Token(TokenType.NUMBER, sql[start:pos], start)

    def _lex_word(self) -> Token:
        start = self._pos
        sql = self._sql
        pos = start
        while pos < len(sql) and (sql[pos].isalnum() or sql[pos] == "_"):
            pos += 1
        self._pos = pos
        text = sql[start:pos]
        if text.lower() in KEYWORDS:
            return Token(TokenType.KEYWORD, text, start)
        return Token(TokenType.IDENTIFIER, text, start)
