"""Abstract syntax tree for the supported SQL subset.

Pure data: no behaviour beyond ``__repr__``-style rendering back to SQL
(used in error messages and by the NL2SQL round-trip tests).  All nodes are
frozen dataclasses so plans can hash/cache them safely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Expr:
    """Base class for expression nodes."""

    def to_sql(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: int, float, str, bool, or None (SQL NULL)."""

    value: object
    is_date: bool = False

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            prefix = "DATE " if self.is_date else ""
            return f"{prefix}'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A (possibly qualified) column reference."""

    name: str
    table: str | None = None

    def to_sql(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``alias.*`` (only valid in SELECT lists and COUNT)."""

    table: str | None = None

    def to_sql(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class Unary(Expr):
    """Unary operator: ``-expr`` or ``NOT expr``."""

    op: str
    operand: Expr

    def to_sql(self) -> str:
        if self.op.lower() == "not":
            return f"NOT ({self.operand.to_sql()})"
        return f"{self.op}({self.operand.to_sql()})"


@dataclass(frozen=True)
class Binary(Expr):
    """Binary operator: arithmetic, comparison, AND/OR, ``||``."""

    op: str
    left: Expr
    right: Expr

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op.upper()} {self.right.to_sql()})"


@dataclass(frozen=True)
class Between(Expr):
    expr: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return (
            f"({self.expr.to_sql()} {maybe_not}BETWEEN "
            f"{self.low.to_sql()} AND {self.high.to_sql()})"
        )


@dataclass(frozen=True)
class InList(Expr):
    expr: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        inner = ", ".join(item.to_sql() for item in self.items)
        return f"({self.expr.to_sql()} {maybe_not}IN ({inner}))"


@dataclass(frozen=True)
class Like(Expr):
    expr: Expr
    pattern: Expr
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"({self.expr.to_sql()} {maybe_not}LIKE {self.pattern.to_sql()})"


@dataclass(frozen=True)
class IsNull(Expr):
    expr: Expr
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"({self.expr.to_sql()} IS {maybe_not}NULL)"


@dataclass(frozen=True)
class FunctionCall(Expr):
    """A function call; aggregate-ness is decided by the binder."""

    name: str
    args: tuple[Expr, ...]
    distinct: bool = False

    def to_sql(self) -> str:
        inner = ", ".join(arg.to_sql() for arg in self.args)
        maybe_distinct = "DISTINCT " if self.distinct else ""
        return f"{self.name.upper()}({maybe_distinct}{inner})"


@dataclass(frozen=True)
class Case(Expr):
    """Searched CASE: WHEN cond THEN value ... [ELSE value] END."""

    whens: tuple[tuple[Expr, Expr], ...]
    else_: Expr | None = None

    def to_sql(self) -> str:
        parts = ["CASE"]
        for condition, result in self.whens:
            parts.append(f"WHEN {condition.to_sql()} THEN {result.to_sql()}")
        if self.else_ is not None:
            parts.append(f"ELSE {self.else_.to_sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class Cast(Expr):
    expr: Expr
    type_name: str

    def to_sql(self) -> str:
        return f"CAST({self.expr.to_sql()} AS {self.type_name.upper()})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class JoinKind(enum.Enum):
    INNER = "inner"
    LEFT = "left"


@dataclass(frozen=True)
class TableRef:
    """A base-table reference with an optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name

    def to_sql(self) -> str:
        return f"{self.name} AS {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class Join:
    """A join tree node (left-deep per the parser)."""

    left: "TableRef | Join"
    right: TableRef
    kind: JoinKind
    condition: Expr

    def to_sql(self) -> str:
        kind = "JOIN" if self.kind is JoinKind.INNER else "LEFT JOIN"
        return (
            f"{self.left.to_sql()} {kind} {self.right.to_sql()} "
            f"ON {self.condition.to_sql()}"
        )


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.expr.to_sql()} AS {self.alias}"
        return self.expr.to_sql()


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True

    def to_sql(self) -> str:
        return f"{self.expr.to_sql()} {'ASC' if self.ascending else 'DESC'}"


@dataclass(frozen=True)
class SelectStatement:
    """The root AST node for a SELECT query."""

    items: tuple[SelectItem, ...]
    from_clause: TableRef | Join | None = None
    where: Expr | None = None
    group_by: tuple[Expr, ...] = field(default=())
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = field(default=())
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.to_sql() for item in self.items))
        if self.from_clause is not None:
            parts.append("FROM " + self.from_clause.to_sql())
        if self.where is not None:
            parts.append("WHERE " + self.where.to_sql())
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(e.to_sql() for e in self.group_by))
        if self.having is not None:
            parts.append("HAVING " + self.having.to_sql())
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.to_sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset is not None:
            parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)


@dataclass(frozen=True)
class UnionAll:
    """Concatenation of SELECT branches (bag semantics, no dedup).

    ``order_by``/``limit``/``offset`` apply to the whole union — the
    parser hoists a trailing ORDER BY/LIMIT off the final branch, per
    standard SQL.
    """

    branches: tuple["SelectStatement", ...]
    order_by: tuple["OrderItem", ...] = field(default=())
    limit: int | None = None
    offset: int | None = None

    def to_sql(self) -> str:
        text = " UNION ALL ".join(branch.to_sql() for branch in self.branches)
        if self.order_by:
            text += " ORDER BY " + ", ".join(o.to_sql() for o in self.order_by)
        if self.limit is not None:
            text += f" LIMIT {self.limit}"
        if self.offset is not None:
            text += f" OFFSET {self.offset}"
        return text


@dataclass(frozen=True)
class CreateTable:
    """``CREATE TABLE name (col type, ...)`` — registers catalog metadata."""

    name: str
    columns: tuple[tuple[str, str], ...]  # (column name, type name)

    def to_sql(self) -> str:
        inner = ", ".join(f"{c} {t}" for c, t in self.columns)
        return f"CREATE TABLE {self.name} ({inner})"


@dataclass(frozen=True)
class DropTable:
    """``DROP TABLE name`` — removes the table and its files."""

    name: str

    def to_sql(self) -> str:
        return f"DROP TABLE {self.name}"


@dataclass(frozen=True)
class Explain:
    """``EXPLAIN [ANALYZE] <select>`` — render the plan; with ANALYZE,
    execute it and annotate each operator with actual rows/bytes/time."""

    statement: "SelectStatement | UnionAll"
    analyze: bool = False

    def to_sql(self) -> str:
        keyword = "EXPLAIN ANALYZE" if self.analyze else "EXPLAIN"
        return f"{keyword} {self.statement.to_sql()}"


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)`` — planned as a semi/anti join."""

    expr: Expr
    query: "SelectStatement"
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"({self.expr.to_sql()} {maybe_not}IN ({self.query.to_sql()}))"


def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression, depth-first."""
    yield expr
    children: tuple[Expr, ...]
    if isinstance(expr, Unary):
        children = (expr.operand,)
    elif isinstance(expr, Binary):
        children = (expr.left, expr.right)
    elif isinstance(expr, Between):
        children = (expr.expr, expr.low, expr.high)
    elif isinstance(expr, InList):
        children = (expr.expr, *expr.items)
    elif isinstance(expr, Like):
        children = (expr.expr, expr.pattern)
    elif isinstance(expr, IsNull):
        children = (expr.expr,)
    elif isinstance(expr, FunctionCall):
        children = expr.args
    elif isinstance(expr, Case):
        children = tuple(
            node for when in expr.whens for node in when
        ) + ((expr.else_,) if expr.else_ is not None else ())
    elif isinstance(expr, Cast):
        children = (expr.expr,)
    else:
        children = ()
    for child in children:
        yield from walk_expr(child)
