"""Recursive-descent parser for the supported SQL subset.

Grammar sketch (standard precedence; left-associative binaries)::

    statement := EXPLAIN [ANALYZE] query | query | ddl
    query     := select (UNION ALL select)*
    select    := SELECT [DISTINCT] items [FROM from] [WHERE expr]
                 [GROUP BY exprs] [HAVING expr] [ORDER BY order]
                 [LIMIT n] [OFFSET n] [;]
    from      := table_ref ( [INNER|LEFT [OUTER]] JOIN table_ref ON expr )*
    expr      := or_expr
    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | predicate
    predicate := additive ( comparison | BETWEEN | IN | LIKE | IS NULL )?
    additive  := multiplicative ((+|-|'||') multiplicative)*
    multiplicative := unary ((*|/|%) unary)*
    unary     := - unary | primary
    primary   := literal | DATE 'lit' | CASE | CAST | function(...)
               | column | ( expr ) | *
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.engine.sql import ast
from repro.engine.sql.lexer import Lexer, Token, TokenType

AGGREGATE_KEYWORD_FUNCTIONS = {"count", "sum", "avg", "min", "max"}

COMPARISON_OPERATORS = {"=", "<>", "!=", "<", "<=", ">", ">="}


def parse_sql(
    sql: str,
) -> "ast.SelectStatement | ast.UnionAll | ast.CreateTable | ast.DropTable | ast.Explain":
    """Parse one statement; raises :class:`ParseError` on bad input."""
    return Parser(sql).parse()


def _hoist_union_tail(union: ast.UnionAll) -> ast.UnionAll:
    """Move a trailing ORDER BY/LIMIT/OFFSET from the last branch onto the
    union itself — standard SQL scopes them to the whole union."""
    import dataclasses

    last = union.branches[-1]
    if not (last.order_by or last.limit is not None or last.offset is not None):
        return union
    stripped = dataclasses.replace(
        last, order_by=(), limit=None, offset=None
    )
    return ast.UnionAll(
        branches=union.branches[:-1] + (stripped,),
        order_by=last.order_by,
        limit=last.limit,
        offset=last.offset,
    )


class Parser:
    """One-statement recursive-descent parser over the lexer's tokens."""

    def __init__(self, sql: str) -> None:
        self._tokens = Lexer(sql).tokenize()
        self._index = 0

    # -- token helpers -------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._current
        where = f" near {token.text!r}" if token.text else " at end of input"
        return ParseError(f"{message}{where}", token.position)

    def _expect_keyword(self, name: str) -> Token:
        if not self._current.is_keyword(name):
            raise self._error(f"expected {name.upper()}")
        return self._advance()

    def _accept_keyword(self, *names: str) -> bool:
        if self._current.is_keyword(*names):
            self._advance()
            return True
        return False

    def _expect(self, token_type: TokenType) -> Token:
        if self._current.type is not token_type:
            raise self._error(f"expected {token_type.value}")
        return self._advance()

    # -- statement -------------------------------------------------------------

    def parse(
        self,
    ) -> "ast.SelectStatement | ast.UnionAll | ast.CreateTable | ast.DropTable | ast.Explain":
        first = self._current
        if first.type is TokenType.IDENTIFIER and first.lower in ("create", "drop"):
            statement = self._parse_ddl()
            if self._current.type is TokenType.SEMICOLON:
                self._advance()
            if self._current.type is not TokenType.EOF:
                raise self._error("unexpected trailing input")
            return statement
        if first.type is TokenType.IDENTIFIER and first.lower == "explain":
            self._advance()
            # ``analyze`` lexes as an identifier (like ``explain``): it is
            # deliberately not a reserved keyword, so columns may use it.
            analyze = (
                self._current.type is TokenType.IDENTIFIER
                and self._current.lower == "analyze"
            )
            if analyze:
                self._advance()
            inner = self._parse_query()
            return ast.Explain(statement=inner, analyze=analyze)
        return self._parse_query()

    def _parse_query(self) -> "ast.SelectStatement | ast.UnionAll":
        """SELECT (or UNION ALL chain) up to end of input."""
        statement: ast.SelectStatement | ast.UnionAll = self._parse_select()
        while self._current.is_keyword("union"):
            self._advance()
            self._expect_keyword("all")
            right = self._parse_select()
            statement = ast.UnionAll(
                branches=(
                    statement.branches if isinstance(statement, ast.UnionAll)
                    else (statement,)
                ) + (right,)
            )
        if isinstance(statement, ast.UnionAll):
            statement = _hoist_union_tail(statement)
        if self._current.type is TokenType.SEMICOLON:
            self._advance()
        if self._current.type is not TokenType.EOF:
            raise self._error("unexpected trailing input")
        return statement

    def _parse_ddl(self) -> "ast.CreateTable | ast.DropTable":
        verb = self._advance().lower
        table_token = self._advance()
        if table_token.lower != "table":
            raise ParseError(
                f"expected TABLE after {verb.upper()}", table_token.position
            )
        name = self._expect(TokenType.IDENTIFIER).text
        if verb == "drop":
            return ast.DropTable(name)
        self._expect(TokenType.LPAREN)
        columns: list[tuple[str, str]] = []
        while True:
            column = self._expect(TokenType.IDENTIFIER).text
            type_token = self._advance()
            if type_token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                raise ParseError(
                    "expected a type name", type_token.position
                )
            columns.append((column, type_token.text))
            if self._current.type is TokenType.COMMA:
                self._advance()
                continue
            break
        self._expect(TokenType.RPAREN)
        if not columns:
            raise self._error("CREATE TABLE needs at least one column")
        return ast.CreateTable(name, tuple(columns))

    def _parse_select(self) -> ast.SelectStatement:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        items = self._parse_select_items()
        from_clause = None
        if self._accept_keyword("from"):
            from_clause = self._parse_from()
        where = self._parse_expr() if self._accept_keyword("where") else None
        group_by: tuple[ast.Expr, ...] = ()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by = tuple(self._parse_expr_list())
        having = self._parse_expr() if self._accept_keyword("having") else None
        order_by: tuple[ast.OrderItem, ...] = ()
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by = tuple(self._parse_order_items())
        limit = offset = None
        if self._accept_keyword("limit"):
            limit = self._parse_nonnegative_int("LIMIT")
        if self._accept_keyword("offset"):
            offset = self._parse_nonnegative_int("OFFSET")
        return ast.SelectStatement(
            items=tuple(items),
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_nonnegative_int(self, clause: str) -> int:
        token = self._expect(TokenType.NUMBER)
        try:
            value = int(token.text)
        except ValueError:
            raise ParseError(f"{clause} must be an integer", token.position) from None
        return value

    def _parse_select_items(self) -> list[ast.SelectItem]:
        items = [self._parse_select_item()]
        while self._current.type is TokenType.COMMA:
            self._advance()
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.SelectItem:
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect(TokenType.IDENTIFIER).text
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().text
        return ast.SelectItem(expr, alias)

    def _parse_from(self) -> ast.TableRef | ast.Join:
        node: ast.TableRef | ast.Join = self._parse_table_ref()
        while True:
            kind = None
            if self._accept_keyword("join"):
                kind = ast.JoinKind.INNER
            elif self._current.is_keyword("inner"):
                self._advance()
                self._expect_keyword("join")
                kind = ast.JoinKind.INNER
            elif self._current.is_keyword("left"):
                self._advance()
                self._accept_keyword("outer")
                self._expect_keyword("join")
                kind = ast.JoinKind.LEFT
            elif self._current.type is TokenType.COMMA:
                # Comma join: FROM a, b WHERE ... (condition checked later by
                # the binder; represented as INNER JOIN ON TRUE).
                self._advance()
                right = self._parse_table_ref()
                node = ast.Join(node, right, ast.JoinKind.INNER, ast.Literal(True))
                continue
            else:
                return node
            right = self._parse_table_ref()
            self._expect_keyword("on")
            condition = self._parse_expr()
            node = ast.Join(node, right, kind, condition)

    def _parse_table_ref(self) -> ast.TableRef:
        name = self._expect(TokenType.IDENTIFIER).text
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect(TokenType.IDENTIFIER).text
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().text
        return ast.TableRef(name, alias)

    def _parse_order_items(self) -> list[ast.OrderItem]:
        items = []
        while True:
            expr = self._parse_expr()
            ascending = True
            if self._accept_keyword("desc"):
                ascending = False
            else:
                self._accept_keyword("asc")
            items.append(ast.OrderItem(expr, ascending))
            if self._current.type is not TokenType.COMMA:
                return items
            self._advance()

    def _parse_expr_list(self) -> list[ast.Expr]:
        exprs = [self._parse_expr()]
        while self._current.type is TokenType.COMMA:
            self._advance()
            exprs.append(self._parse_expr())
        return exprs

    # -- expressions -----------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._current.is_keyword("or"):
            self._advance()
            left = ast.Binary("or", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._current.is_keyword("and"):
            self._advance()
            left = ast.Binary("and", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self._accept_keyword("not"):
            return ast.Unary("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expr:
        left = self._parse_additive()
        token = self._current
        if token.type is TokenType.OPERATOR and token.text in COMPARISON_OPERATORS:
            self._advance()
            op = "<>" if token.text == "!=" else token.text
            return ast.Binary(op, left, self._parse_additive())
        negated = False
        if token.is_keyword("not"):
            lookahead = self._tokens[self._index + 1]
            if lookahead.is_keyword("between", "in", "like"):
                self._advance()
                negated = True
                token = self._current
        if token.is_keyword("between"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)
        if token.is_keyword("in"):
            self._advance()
            self._expect(TokenType.LPAREN)
            if self._current.is_keyword("select"):
                query = self._parse_select()
                self._expect(TokenType.RPAREN)
                return ast.InSubquery(left, query, negated)
            items = tuple(self._parse_expr_list())
            self._expect(TokenType.RPAREN)
            return ast.InList(left, items, negated)
        if token.is_keyword("like"):
            self._advance()
            return ast.Like(left, self._parse_additive(), negated)
        if token.is_keyword("is"):
            self._advance()
            is_negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return ast.IsNull(left, is_negated)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._current
            if token.type is TokenType.OPERATOR and token.text in ("+", "-", "||"):
                self._advance()
                left = ast.Binary(token.text, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._current
            if token.type is TokenType.STAR or (
                token.type is TokenType.OPERATOR and token.text in ("/", "%")
            ):
                self._advance()
                op = "*" if token.type is TokenType.STAR else token.text
                left = ast.Binary(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        token = self._current
        if token.type is TokenType.OPERATOR and token.text == "-":
            self._advance()
            return ast.Unary("-", self._parse_unary())
        if token.type is TokenType.OPERATOR and token.text == "+":
            self._advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.text
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.text)
        if token.is_keyword("null"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("true"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("date"):
            self._advance()
            literal = self._expect(TokenType.STRING)
            return ast.Literal(literal.text, is_date=True)
        if token.is_keyword("interval"):
            return self._parse_interval()
        if token.is_keyword("case"):
            return self._parse_case()
        if token.type is TokenType.IDENTIFIER and token.lower == "extract":
            return self._parse_extract()
        if token.is_keyword("cast"):
            return self._parse_cast()
        if token.is_keyword(*AGGREGATE_KEYWORD_FUNCTIONS):
            self._advance()
            return self._parse_function_args(token.lower)
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenType.RPAREN)
            return expr
        if token.type is TokenType.STAR:
            self._advance()
            return ast.Star()
        if token.type is TokenType.IDENTIFIER:
            return self._parse_identifier_expr()
        raise self._error("expected an expression")

    def _parse_interval(self) -> ast.Expr:
        """INTERVAL '<n>' DAY|MONTH|YEAR → literal day count.

        Months/years use TPC-H's fixed-calendar convention (30/365 days),
        adequate for date-window predicates in the workloads.
        """
        self._expect_keyword("interval")
        quantity_token = self._expect(TokenType.STRING)
        try:
            quantity = int(quantity_token.text)
        except ValueError:
            raise ParseError(
                "INTERVAL quantity must be an integer string",
                quantity_token.position,
            ) from None
        unit = self._expect(TokenType.IDENTIFIER).text.lower()
        days_per_unit = {"day": 1, "days": 1, "month": 30, "months": 30,
                         "year": 365, "years": 365}
        if unit not in days_per_unit:
            raise self._error(f"unsupported INTERVAL unit {unit!r}")
        return ast.Literal(quantity * days_per_unit[unit])

    def _parse_case(self) -> ast.Expr:
        self._expect_keyword("case")
        operand: ast.Expr | None = None
        if not self._current.is_keyword("when"):
            # Simple CASE: `CASE x WHEN v THEN r ...` desugars to the
            # searched form `CASE WHEN x = v THEN r ...`.
            operand = self._parse_expr()
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self._accept_keyword("when"):
            condition = self._parse_expr()
            if operand is not None:
                condition = ast.Binary("=", operand, condition)
            self._expect_keyword("then")
            result = self._parse_expr()
            whens.append((condition, result))
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        else_ = self._parse_expr() if self._accept_keyword("else") else None
        self._expect_keyword("end")
        return ast.Case(tuple(whens), else_)

    def _parse_extract(self) -> ast.Expr:
        """EXTRACT(YEAR|MONTH FROM expr) — sugar for year()/month()."""
        self._advance()  # 'extract'
        if self._current.type is not TokenType.LPAREN:
            # Bare identifier named "extract": treat as a column.
            return ast.ColumnRef("extract")
        self._expect(TokenType.LPAREN)
        field_token = self._advance()
        field = field_token.text.lower()
        if field not in ("year", "month"):
            raise ParseError(
                f"EXTRACT supports YEAR and MONTH, not {field_token.text!r}",
                field_token.position,
            )
        self._expect_keyword("from")
        operand = self._parse_expr()
        self._expect(TokenType.RPAREN)
        return ast.FunctionCall(field, (operand,))

    def _parse_cast(self) -> ast.Expr:
        self._expect_keyword("cast")
        self._expect(TokenType.LPAREN)
        expr = self._parse_expr()
        self._expect_keyword("as")
        token = self._advance()
        if token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            raise self._error("expected a type name in CAST")
        self._expect(TokenType.RPAREN)
        return ast.Cast(expr, token.text)

    def _parse_identifier_expr(self) -> ast.Expr:
        name = self._advance().text
        if self._current.type is TokenType.LPAREN:
            return self._parse_function_args(name.lower())
        if self._current.type is TokenType.DOT:
            self._advance()
            if self._current.type is TokenType.STAR:
                self._advance()
                return ast.Star(table=name)
            column = self._expect(TokenType.IDENTIFIER).text
            return ast.ColumnRef(column, table=name)
        return ast.ColumnRef(name)

    def _parse_function_args(self, name: str) -> ast.Expr:
        self._expect(TokenType.LPAREN)
        distinct = self._accept_keyword("distinct")
        args: tuple[ast.Expr, ...]
        if self._current.type is TokenType.RPAREN:
            args = ()
        else:
            args = tuple(self._parse_expr_list())
        self._expect(TokenType.RPAREN)
        return ast.FunctionCall(name, args, distinct)
