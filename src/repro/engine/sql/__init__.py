"""SQL front end: tokens, lexer, AST, and recursive-descent parser."""

from repro.engine.sql.lexer import Lexer, Token, TokenType
from repro.engine.sql.parser import Parser, parse_sql

__all__ = ["Lexer", "Parser", "Token", "TokenType", "parse_sql"]
