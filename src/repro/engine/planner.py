"""Logical planning: bound SELECT statements → plan trees.

The planner owns query *structure*: join-tree assembly, aggregate
placement, hidden sort-key projection, DISTINCT/LIMIT ordering.  Expression
binding is delegated to :class:`~repro.engine.binder.Binder`; algebraic
rewrites (push-downs, join ordering) happen later in the optimizer.
"""

from __future__ import annotations

from repro.errors import BindError, PlanError
from repro.engine import expr as bound
from repro.engine.binder import AggCollector, Binder, Scope
from repro.engine.plan import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    JoinType,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
    SortKey,
    UnionAllPlan,
)
from repro.engine.sql import ast
from repro.engine.sql.parser import parse_sql
from repro.storage.catalog import Catalog

AGGREGATE_FUNCTIONS = {"count", "sum", "avg", "min", "max"}


class Planner:
    """Builds logical plans for SQL text or parsed statements."""

    def __init__(self, catalog: Catalog, default_schema: str) -> None:
        self._catalog = catalog
        self._default_schema = default_schema
        self._binder = Binder(catalog, default_schema)

    def plan_sql(self, sql: str) -> PlanNode:
        return self.plan(parse_sql(sql))

    def plan(self, statement: "ast.SelectStatement | ast.UnionAll") -> PlanNode:
        if isinstance(statement, ast.UnionAll):
            return self._plan_union(statement)
        if statement.from_clause is None:
            raise PlanError("queries without a FROM clause are not supported")
        scope = self._binder.build_scope(statement.from_clause)
        plan = self._plan_from(statement.from_clause, scope)
        plan, where = self._plan_subquery_conjuncts(statement.where, scope, plan)
        if where is not None:
            plan = Filter(
                plan, bound.fold_constants(self._binder.bind_scalar(where, scope))
            )
        if self._is_aggregate_query(statement):
            return self._plan_aggregate(statement, scope, plan)
        return self._plan_simple(statement, scope, plan)

    def _plan_union(self, union: ast.UnionAll) -> PlanNode:
        branches = [self.plan(branch) for branch in union.branches]
        first_schema = branches[0].output_schema()
        output_names = [name for name, _ in first_schema]
        for index, branch in enumerate(branches[1:], start=2):
            schema = branch.output_schema()
            if len(schema) != len(first_schema):
                raise BindError(
                    f"UNION ALL branch {index} has {len(schema)} columns, "
                    f"expected {len(first_schema)}"
                )
            for (_, want), (name, got) in zip(first_schema, schema):
                compatible = want is got or (want.is_numeric and got.is_numeric)
                if not compatible:
                    raise BindError(
                        f"UNION ALL branch {index} column {name!r} has type "
                        f"{got.value}, expected {want.value}"
                    )
        plan: PlanNode = UnionAllPlan(branches)
        if union.order_by:
            keys = []
            for order in union.order_by:
                target = None
                if isinstance(order.expr, ast.Literal) and isinstance(
                    order.expr.value, int
                ):
                    position = order.expr.value
                    if not 1 <= position <= len(output_names):
                        raise BindError(
                            f"ORDER BY position {position} is out of range"
                        )
                    target = output_names[position - 1]
                elif (
                    isinstance(order.expr, ast.ColumnRef)
                    and order.expr.table is None
                    and order.expr.name in output_names
                ):
                    target = order.expr.name
                if target is None:
                    raise BindError(
                        "UNION ALL ORDER BY must reference an output column "
                        "by name or position"
                    )
                keys.append(SortKey(target, order.ascending))
            plan = Sort(plan, keys)
        if union.limit is not None or union.offset is not None:
            plan = Limit(plan, union.limit, union.offset or 0)
        return plan

    def _plan_subquery_conjuncts(
        self,
        where: ast.Expr | None,
        scope,
        plan: PlanNode,
    ) -> tuple[PlanNode, ast.Expr | None]:
        """Convert top-level ``[NOT] IN (SELECT ...)`` conjuncts of the
        WHERE clause into semi/anti joins; return the remaining WHERE."""
        if where is None:
            return plan, None
        remaining: list[ast.Expr] = []
        for conjunct in _split_and(where):
            if isinstance(conjunct, ast.InSubquery):
                plan = self._plan_in_subquery(conjunct, scope, plan)
                continue
            if any(
                isinstance(node, ast.InSubquery)
                for node in ast.walk_expr(conjunct)
            ):
                raise BindError(
                    "IN (SELECT ...) is only supported as a top-level "
                    "AND-conjunct of WHERE"
                )
            remaining.append(conjunct)
        rebuilt: ast.Expr | None = None
        for conjunct in remaining:
            rebuilt = (
                conjunct
                if rebuilt is None
                else ast.Binary("and", rebuilt, conjunct)
            )
        return plan, rebuilt

    def _plan_in_subquery(
        self, node: ast.InSubquery, scope, plan: PlanNode
    ) -> PlanNode:
        if not isinstance(node.expr, ast.ColumnRef):
            raise BindError(
                "the left side of IN (SELECT ...) must be a column"
            )
        left_key, left_type = self._binder_scope_resolve(scope, node.expr)
        sub_plan = self.plan(node.query)
        sub_schema = sub_plan.output_schema()
        if len(sub_schema) != 1:
            raise BindError(
                f"IN subquery must produce exactly one column, "
                f"got {len(sub_schema)}"
            )
        right_key, right_type = sub_schema[0]
        comparable = left_type is right_type or (
            left_type.is_numeric and right_type.is_numeric
        )
        if not comparable:
            raise BindError(
                f"IN subquery column type {right_type.value} does not "
                f"match {left_type.value}"
            )
        return HashJoin(
            left=plan,
            right=sub_plan,
            join_type=JoinType.ANTI if node.negated else JoinType.SEMI,
            left_keys=[left_key],
            right_keys=[right_key],
        )

    def _binder_scope_resolve(self, scope, column: ast.ColumnRef):
        return scope.resolve(column.name, column.table)

    # -- FROM clause --------------------------------------------------------

    def _plan_from(
        self, node: ast.TableRef | ast.Join, scope: Scope
    ) -> PlanNode:
        if isinstance(node, ast.TableRef):
            table = self._catalog.table(self._default_schema, node.name)
            binding = node.binding_name
            columns = [
                (f"{binding}.{column.name}", column.name) for column in table.columns
            ]
            return Scan(
                table=table,
                schema_name=self._default_schema,
                binding=binding,
                columns=columns,
            )
        left_plan = self._plan_from(node.left, scope)
        right_plan = self._plan_from(node.right, scope)
        left_bindings = _bindings_of(node.left)
        pairs, residual = self._binder.split_join_condition(
            node.condition, left_bindings, scope
        )
        join_type = (
            JoinType.LEFT if node.kind is ast.JoinKind.LEFT else JoinType.INNER
        )
        if join_type is JoinType.LEFT and not pairs:
            raise PlanError("LEFT JOIN requires at least one equality condition")
        return HashJoin(
            left=left_plan,
            right=right_plan,
            join_type=join_type,
            left_keys=[pair[0] for pair in pairs],
            right_keys=[pair[1] for pair in pairs],
            residual=residual,
        )

    # -- aggregate pipeline ----------------------------------------------------

    def _is_aggregate_query(self, statement: ast.SelectStatement) -> bool:
        if statement.group_by or statement.having is not None:
            return True
        exprs = [item.expr for item in statement.items]
        exprs += [order.expr for order in statement.order_by]
        return any(_contains_aggregate(expr) for expr in exprs)

    def _plan_aggregate(
        self, statement: ast.SelectStatement, scope: Scope, plan: PlanNode
    ) -> PlanNode:
        key_exprs = [
            (f"key_{index}", self._binder.bind_scalar(group_ast, scope))
            for index, group_ast in enumerate(statement.group_by)
        ]
        collector = AggCollector(
            group_asts=list(statement.group_by), key_exprs=key_exprs
        )
        visible: list[tuple[str, bound.BoundExpr]] = []
        select_asts: list[ast.Expr] = []
        aliases: list[str | None] = []
        for item in statement.items:
            if isinstance(item.expr, ast.Star):
                raise BindError("'*' is not valid in an aggregate query")
            expr = self._binder.bind_post(item.expr, scope, collector)
            visible.append((self._output_name(item, len(visible)), expr))
            select_asts.append(item.expr)
            aliases.append(item.alias)
        having_expr = None
        if statement.having is not None:
            having_expr = self._binder.bind_post(statement.having, scope, collector)
        _dedupe_output_names(visible)
        sort_keys, hidden = self._bind_order_keys(
            statement, visible, select_asts, aliases,
            lambda order_ast: self._binder.bind_post(order_ast, scope, collector),
        )
        pre_exprs = [
            (name, bound.fold_constants(expr))
            for name, expr in key_exprs + collector.arg_exprs
        ]
        # A bare COUNT(*) needs no computed inputs; a zero-expression
        # projection would lose the row count, so feed the input directly.
        pre_project = Project(plan, pre_exprs) if pre_exprs else plan
        aggregated: PlanNode = Aggregate(
            pre_project,
            group_keys=[name for name, _ in key_exprs],
            aggregates=collector.specs,
        )
        if having_expr is not None:
            aggregated = Filter(aggregated, bound.fold_constants(having_expr))
        return self._finish(statement, aggregated, visible, hidden, sort_keys)

    # -- non-aggregate pipeline ------------------------------------------------

    def _plan_simple(
        self, statement: ast.SelectStatement, scope: Scope, plan: PlanNode
    ) -> PlanNode:
        visible: list[tuple[str, bound.BoundExpr]] = []
        select_asts: list[ast.Expr] = []
        aliases: list[str | None] = []
        for item in statement.items:
            if isinstance(item.expr, ast.Star):
                for qualified, dtype in scope.all_columns(item.expr.table):
                    name = qualified.split(".", 1)[1]
                    visible.append((name, bound.BoundColumn(qualified, dtype)))
                    select_asts.append(
                        ast.ColumnRef(name, table=qualified.split(".", 1)[0])
                    )
                    aliases.append(None)
                continue
            expr = self._binder.bind_scalar(item.expr, scope)
            visible.append((self._output_name(item, len(visible)), expr))
            select_asts.append(item.expr)
            aliases.append(item.alias)
        _dedupe_output_names(visible)
        sort_keys, hidden = self._bind_order_keys(
            statement, visible, select_asts, aliases,
            lambda order_ast: self._binder.bind_scalar(order_ast, scope),
        )
        return self._finish(statement, plan, visible, hidden, sort_keys)

    # -- shared tail: project / sort / distinct / limit --------------------------

    def _bind_order_keys(
        self,
        statement: ast.SelectStatement,
        visible: list[tuple[str, bound.BoundExpr]],
        select_asts: list[ast.Expr],
        aliases: list[str | None],
        bind,
    ) -> tuple[list[SortKey], list[tuple[str, bound.BoundExpr]]]:
        """Resolve ORDER BY items to output columns or hidden sort columns."""
        sort_keys: list[SortKey] = []
        hidden: list[tuple[str, bound.BoundExpr]] = []
        for order in statement.order_by:
            target = self._resolve_order_target(
                order.expr, visible, select_asts, aliases
            )
            if target is None:
                name = f"__sort_{len(hidden)}"
                hidden.append((name, bind(order.expr)))
                target = name
            sort_keys.append(SortKey(target, order.ascending))
        if statement.distinct and hidden:
            raise BindError(
                "ORDER BY with DISTINCT must use columns from the SELECT list"
            )
        return sort_keys, hidden

    @staticmethod
    def _resolve_order_target(
        order_ast: ast.Expr,
        visible: list[tuple[str, bound.BoundExpr]],
        select_asts: list[ast.Expr],
        aliases: list[str | None],
    ) -> str | None:
        if isinstance(order_ast, ast.Literal) and isinstance(order_ast.value, int):
            position = order_ast.value
            if not 1 <= position <= len(visible):
                raise BindError(f"ORDER BY position {position} is out of range")
            return visible[position - 1][0]
        if isinstance(order_ast, ast.ColumnRef) and order_ast.table is None:
            for index, alias in enumerate(aliases):
                if alias == order_ast.name:
                    return visible[index][0]
        for index, select_ast in enumerate(select_asts):
            if order_ast == select_ast:
                return visible[index][0]
        return None

    def _finish(
        self,
        statement: ast.SelectStatement,
        plan: PlanNode,
        visible: list[tuple[str, bound.BoundExpr]],
        hidden: list[tuple[str, bound.BoundExpr]],
        sort_keys: list[SortKey],
    ) -> PlanNode:
        result: PlanNode = Project(
            plan,
            [(name, bound.fold_constants(expr)) for name, expr in visible + hidden],
        )
        if statement.distinct:
            result = Distinct(result)
        if sort_keys:
            result = Sort(result, sort_keys)
        if hidden:
            result = Project(
                result,
                [
                    (name, bound.BoundColumn(name, expr.dtype))
                    for name, expr in visible
                ],
            )
        if statement.limit is not None or statement.offset is not None:
            result = Limit(result, statement.limit, statement.offset or 0)
        return result

    @staticmethod
    def _output_name(item: ast.SelectItem, index: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.ColumnRef):
            return item.expr.name
        return f"_col{index}"


def _split_and(node: ast.Expr) -> list[ast.Expr]:
    if isinstance(node, ast.Binary) and node.op.lower() == "and":
        return _split_and(node.left) + _split_and(node.right)
    return [node]


def _bindings_of(node: ast.TableRef | ast.Join) -> set[str]:
    if isinstance(node, ast.TableRef):
        return {node.binding_name}
    return _bindings_of(node.left) | _bindings_of(node.right)


def _contains_aggregate(node: ast.Expr) -> bool:
    return any(
        isinstance(sub, ast.FunctionCall) and sub.name.lower() in AGGREGATE_FUNCTIONS
        for sub in ast.walk_expr(node)
    )


def _dedupe_output_names(visible: list[tuple[str, bound.BoundExpr]]) -> None:
    seen: dict[str, int] = {}
    for index, (name, expr) in enumerate(visible):
        if name in seen:
            seen[name] += 1
            visible[index] = (f"{name}_{seen[name]}", expr)
        else:
            seen[name] = 1
