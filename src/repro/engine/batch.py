"""Record batches: the unit of data flow in the vectorized pipeline.

The pipeline executor (:mod:`repro.engine.pipeline`) moves data between
physical operators as fixed-size :class:`RecordBatch` slices instead of
whole tables.  A batch is a *view*: slicing a :class:`~repro.storage.table
.TableData` goes through ``numpy`` basic slicing, so the column buffers are
shared with the parent table (zero-copy for every non-object dtype).

Batching is what bounds peak memory in streaming operators (at most one
batch is materialized per operator) and what makes LIMIT early-exit
possible: once a consumer stops asking for batches, upstream operators —
all the way down to the object-store scan — never do the remaining work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.storage.table import TableData
from repro.storage.types import ColumnVector, DataType

DEFAULT_BATCH_SIZE = 4096
"""Rows per batch.  Large enough that per-batch (python-level) overhead is
amortized across thousands of rows of vectorized work, small enough that a
streaming pipeline's working set stays in cache-friendly territory."""


def approx_vector_nbytes(vector: ColumnVector) -> int:
    """Cheap O(1) in-memory size estimate used for peak-memory accounting.

    Unlike :meth:`ColumnVector.nbytes` this never walks VARCHAR payloads
    (which would re-encode every string to UTF-8); object columns are
    counted at pointer width.  Peak-materialized-bytes is an operator
    memory gauge, not a billing basis, so the approximation is fine.
    """
    if vector.dtype is DataType.VARCHAR:
        size = 8 * len(vector.data)
    else:
        size = int(vector.data.nbytes)
    if vector.nulls is not None:
        size += int(vector.nulls.nbytes)
    return size


def approx_table_nbytes(table: TableData) -> int:
    """O(columns) size estimate of a table (see :func:`approx_vector_nbytes`)."""
    return sum(approx_vector_nbytes(vector) for vector in table.columns.values())


@dataclass(frozen=True)
class RecordBatch:
    """A bounded horizontal slice of a table, exchanged between operators.

    ``data`` shares buffers with whatever produced it — operators must not
    mutate column arrays in place.
    """

    data: TableData

    @property
    def num_rows(self) -> int:
        return self.data.num_rows

    @property
    def column_names(self) -> list[str]:
        return self.data.column_names

    def approx_nbytes(self) -> int:
        return approx_table_nbytes(self.data)

    @staticmethod
    def slices(table: TableData, batch_size: int) -> Iterator["RecordBatch"]:
        """Yield ``table`` as zero-copy batches of at most ``batch_size`` rows.

        An empty table yields nothing (the pipeline driver rebuilds the
        schema from the plan when no batch arrives).
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        total = table.num_rows
        start = 0
        while start < total:
            stop = min(start + batch_size, total)
            yield RecordBatch(table.slice(start, stop))
            start = stop


class BatchStream:
    """A single-use stream of table batches attachable to a
    :class:`~repro.engine.plan.MaterializedView`.

    This is the seam that makes the Turbo coordinator's merge step
    incremental: instead of materializing the CF sub-plan's full result and
    handing it to the top-level plan as one table, the coordinator attaches
    the sub-executor's batch iterator, and the top-level pipeline pulls it
    batch by batch.  If the top-level plan stops early (LIMIT), closing the
    stream propagates all the way back into the sub-plan's scan.
    """

    def __init__(
        self,
        batches: Iterator[TableData],
        schema: list[tuple[str, DataType]],
        on_close: Callable[[], None] | None = None,
    ) -> None:
        self._batches = batches
        self._schema = list(schema)
        self._on_close = on_close
        self._closed = False
        self.batches_consumed = 0

    def schema(self) -> list[tuple[str, DataType]]:
        return list(self._schema)

    def next_table(self) -> TableData | None:
        if self._closed:
            return None
        piece = next(self._batches, None)
        if piece is None:
            self.close()
            return None
        self.batches_consumed += 1
        return piece

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        closer = getattr(self._batches, "close", None)
        if closer is not None:
            closer()
        if self._on_close is not None:
            self._on_close()
