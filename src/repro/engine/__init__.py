"""The vectorized SQL query engine.

Pixels-Turbo executes real SQL; this package is the from-scratch engine the
reproduction runs on, organized as a classic pipeline:

``SQL text`` → :mod:`~repro.engine.sql.lexer` → :mod:`~repro.engine.sql.parser`
→ :mod:`~repro.engine.binder` (name/type resolution against the catalog)
→ :mod:`~repro.engine.plan` (logical plan) → :mod:`~repro.engine.optimizer`
(push-downs, join ordering, Top-N fusion) → :mod:`~repro.engine.pipeline`
(batch-at-a-time physical operators over the :mod:`~repro.engine.physical`
kernels) → :mod:`~repro.engine.executor` (the pipeline driver).

The supported SQL subset covers the TPC-H-style workloads in
:mod:`repro.workloads`: inner/left joins, WHERE with three-valued logic,
GROUP BY / HAVING, aggregate functions, CASE, BETWEEN/IN/LIKE, ORDER BY,
LIMIT, and DISTINCT.
"""

from repro.engine.batch import DEFAULT_BATCH_SIZE, BatchStream, RecordBatch
from repro.engine.executor import QueryExecutor, QueryResult
from repro.engine.binder import Binder
from repro.engine.optimizer import Optimizer
from repro.engine.planner import Planner
from repro.engine.sql.parser import parse_sql

__all__ = [
    "BatchStream",
    "Binder",
    "DEFAULT_BATCH_SIZE",
    "Optimizer",
    "Planner",
    "QueryExecutor",
    "QueryResult",
    "RecordBatch",
    "parse_sql",
]
