"""Plan execution: a thin driver over the vectorized pipeline.

The executor lowers the logical plan into a tree of physical operators
(:mod:`repro.engine.pipeline`) and pulls record batches from the root until
exhaustion.  It is deliberately synchronous and deterministic — in Turbo,
each VM or CF worker runs one executor over its assigned plan fragment, and
the simulation charges time from the cost model using the statistics
returned here (bytes scanned, rows processed).

:meth:`QueryExecutor.execute_stream` exposes the same pipeline without the
final concatenation: batches flow out as they are produced, which is how
the Turbo coordinator merges CF fragment results incrementally instead of
waiting for whole fragments.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterator

from repro.engine.batch import DEFAULT_BATCH_SIZE
from repro.engine.pipeline import (
    PhysicalOperator,
    build_pipeline,
    enable_wall_clock,
)
from repro.engine.plan import PlanNode
from repro.engine.source import DataSource
from repro.storage.table import TableData


@dataclass
class QueryStats:
    """Execution accounting for one plan run.

    The storage-side counters (``get_requests``, ``cache_*``,
    ``row_groups_skipped``) are carried up from each scan's
    :class:`~repro.engine.source.SourceResult`, so EXPLAIN ANALYZE and
    the metrics registry can report them per query without re-deriving
    from the store's global ``StorageMetrics``.  Because scans account
    granule by granule, a query that exits early (LIMIT satisfied) shows
    — and is billed for — only the row groups actually fetched.
    """

    bytes_scanned: int = 0
    scan_latency_s: float = 0.0
    rows_scanned: int = 0
    rows_produced: int = 0
    operators: int = 0
    get_requests: int = 0
    footer_gets: int = 0  # request-class split of get_requests
    chunk_gets: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    row_groups_skipped: int = 0

    def merge(self, other: "QueryStats") -> None:
        """Fold in a *sibling* fragment's accounting.

        Every counter sums, including ``rows_produced``: sibling fragments
        (e.g. per-worker scans of disjoint file subsets) each produce a
        disjoint slice of the output, so the merged total is their sum.
        When a downstream stage (like the CF merge step) re-aggregates
        sibling outputs, callers set ``rows_produced`` to the final
        result's row count afterwards rather than merging the stages.
        """
        self.bytes_scanned += other.bytes_scanned
        self.scan_latency_s += other.scan_latency_s
        self.rows_scanned += other.rows_scanned
        self.rows_produced += other.rows_produced
        self.operators += other.operators
        self.get_requests += other.get_requests
        self.footer_gets += other.footer_gets
        self.chunk_gets += other.chunk_gets
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_evictions += other.cache_evictions
        self.row_groups_skipped += other.row_groups_skipped


@dataclass
class OperatorProfile:
    """Per-operator actuals from one analyzed run (EXPLAIN ANALYZE).

    ``time_s`` is deterministic *virtual* time — modelled from the rows,
    bytes, and batches the operator processed, never the wall clock — and
    is cumulative over the operator's subtree, as are the storage
    counters; ``self_time_s`` is this operator's own share (the profiler
    builds flame graphs from selfs so grafted subtrees stay consistent).
    ``rows_in``/``batches``/``peak_bytes`` are per-operator: rows pulled
    from children, batches emitted, and the largest simultaneously-
    materialized output (a whole table for pipeline breakers, one batch
    for streaming operators).  ``wall_time_s`` is inclusive wall-clock
    time, populated only under the executor's opt-in ``wall_clock`` mode
    (zero otherwise) — it never appears in deterministic exports.  The
    tree mirrors the plan tree node for node.
    """

    name: str
    rows_out: int
    time_s: float
    self_time_s: float = 0.0
    wall_time_s: float = 0.0
    bytes_scanned: int = 0
    get_requests: int = 0
    footer_gets: int = 0  # request-class split of get_requests
    chunk_gets: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    row_groups_skipped: int = 0
    rows_in: int = 0
    batches: int = 0
    peak_bytes: int = 0
    # Source granules processed in this subtree (row groups for object-store
    # scans); cumulative like the storage counters, and invariant to the
    # morsel driver's worker count.
    morsels: int = 0
    children: list["OperatorProfile"] = field(default_factory=list)


@dataclass
class QueryResult:
    """Rows plus statistics; ``column_names``/``rows()`` are the public
    result-set view Pixels-Rover renders."""

    data: TableData
    stats: QueryStats = field(default_factory=QueryStats)
    profile: OperatorProfile | None = None

    @property
    def column_names(self) -> list[str]:
        return self.data.column_names

    @property
    def num_rows(self) -> int:
        return self.data.num_rows

    def rows(self) -> list[tuple]:
        return self.data.to_rows()


def _build_profile(op: PhysicalOperator) -> OperatorProfile:
    """Fold an executed operator tree into the EXPLAIN ANALYZE profile.

    Time and storage counters accumulate over the subtree (matching how
    a sampling profiler attributes inclusive time); the batch/row/peak
    counters stay per-operator.
    """
    children = [_build_profile(child) for child in op.children]
    self_time_s = op.own_virtual_seconds()
    time_s = self_time_s + sum(child.time_s for child in children)
    counters = dict(op.scan_counters)
    counters["morsels"] = op.morsels
    for child in children:
        counters["morsels"] += child.morsels
        counters["bytes_scanned"] += child.bytes_scanned
        counters["get_requests"] += child.get_requests
        counters["footer_gets"] += child.footer_gets
        counters["chunk_gets"] += child.chunk_gets
        counters["cache_hits"] += child.cache_hits
        counters["cache_misses"] += child.cache_misses
        counters["cache_evictions"] += child.cache_evictions
        counters["row_groups_skipped"] += child.row_groups_skipped
    return OperatorProfile(
        name=type(op.node).__name__,
        rows_out=op.rows_out,
        time_s=time_s,
        self_time_s=self_time_s,
        wall_time_s=op.wall_seconds,
        rows_in=op.rows_in,
        batches=op.batches_out,
        peak_bytes=op.peak_bytes,
        children=children,
        **counters,
    )


class StreamingExecution:
    """A pipeline run exposed batch by batch.

    ``stats`` is live: it reflects the work done so far, and — once the
    consumer stops (exhaustion *or* abandoning the generator) — the work
    that was ever done.  An abandoned stream closes the pipeline, so row
    groups never pulled are never fetched or billed.
    """

    def __init__(self, plan: PlanNode, root: PhysicalOperator, stats: QueryStats):
        self.plan = plan
        self.stats = stats
        self.batches_emitted = 0
        self._root = root

    def batches(self) -> Iterator[TableData]:
        root = self._root
        root.open()
        try:
            while True:
                batch = root.next_batch()
                if batch is None:
                    break
                self.batches_emitted += 1
                self.stats.rows_produced += batch.num_rows
                yield batch.data
        finally:
            root.close()

    def profile(self) -> OperatorProfile:
        """Per-operator profile of the work done so far (or ever, once the
        stream is exhausted or abandoned)."""
        return _build_profile(self._root)


class QueryExecutor:
    """Executes logical plans against a :class:`DataSource`.

    ``batch_size`` caps the rows per record batch flowing between
    streaming operators; results are bit-identical for any value ≥ 1.
    ``workers`` enables morsel-driven parallel scans when > 1 (results,
    billing, and EXPLAIN ANALYZE stay bit-identical for any value); None
    reads the ``REPRO_WORKERS`` environment variable, defaulting to 1.
    ``wall_clock`` opts into per-operator wall-clock sampling
    (:func:`~repro.engine.pipeline.enable_wall_clock`); it changes no
    results, only fills ``OperatorProfile.wall_time_s``.
    """

    def __init__(
        self,
        source: DataSource,
        batch_size: int = DEFAULT_BATCH_SIZE,
        wall_clock: bool = False,
        workers: int | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if workers is None:
            workers = int(os.environ.get("REPRO_WORKERS", "1") or 1)
        self._source = source
        self._batch_size = batch_size
        self._wall_clock = wall_clock
        self._workers = max(1, workers)

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def batch_size(self) -> int:
        return self._batch_size

    def execute(self, plan: PlanNode, analyze: bool = False) -> QueryResult:
        """Run ``plan`` to completion; with ``analyze`` also build the
        per-operator profile tree that EXPLAIN ANALYZE renders."""
        stats = QueryStats()
        root = build_pipeline(
            plan, self._source, stats, self._batch_size, self._workers
        )
        if self._wall_clock:
            enable_wall_clock(root)
        stats.operators = root.count_operators()
        pieces: list[TableData] = []
        root.open()
        try:
            while True:
                batch = root.next_batch()
                if batch is None:
                    break
                pieces.append(batch.data)
        finally:
            root.close()
        if pieces:
            data = TableData.concat_all(pieces)
        else:
            data = TableData.empty(plan.output_schema())
        stats.rows_produced = data.num_rows
        profile = _build_profile(root) if analyze else None
        return QueryResult(data, stats, profile)

    def execute_stream(self, plan: PlanNode) -> StreamingExecution:
        """Set up ``plan`` for batch-at-a-time consumption.

        Nothing runs until the returned execution's :meth:`~
        StreamingExecution.batches` generator is pulled.
        """
        stats = QueryStats()
        root = build_pipeline(
            plan, self._source, stats, self._batch_size, self._workers
        )
        if self._wall_clock:
            enable_wall_clock(root)
        stats.operators = root.count_operators()
        return StreamingExecution(plan, root, stats)
