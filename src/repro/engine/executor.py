"""Plan execution: walk the logical plan, run physical operators, collect
per-query statistics.

The executor is deliberately synchronous and deterministic — in Turbo, each
VM or CF worker runs one executor over its assigned plan fragment, and the
simulation charges time from the cost model using the statistics returned
here (bytes scanned, rows processed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.engine.expr import mask_from_predicate
from repro.engine.physical import (
    execute_aggregate,
    execute_distinct,
    execute_hash_join,
    execute_limit,
    execute_sort,
    join_tables,
)
from repro.engine.plan import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    JoinType,
    Limit,
    MaterializedView,
    PlanNode,
    Project,
    Scan,
    Sort,
    UnionAllPlan,
)
from repro.engine.source import DataSource
from repro.storage.table import TableData
from repro.storage.types import ColumnVector


@dataclass
class QueryStats:
    """Execution accounting for one plan run.

    The storage-side counters (``get_requests``, ``cache_*``,
    ``row_groups_skipped``) are carried up from each scan's
    :class:`~repro.engine.source.SourceResult`, so EXPLAIN ANALYZE and
    the metrics registry can report them per query without re-deriving
    from the store's global ``StorageMetrics``.
    """

    bytes_scanned: int = 0
    scan_latency_s: float = 0.0
    rows_scanned: int = 0
    rows_produced: int = 0
    operators: int = 0
    get_requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    row_groups_skipped: int = 0

    def merge(self, other: "QueryStats") -> None:
        """Fold in a *sibling* fragment's accounting.

        Every counter sums, including ``rows_produced``: sibling fragments
        (e.g. per-worker scans of disjoint file subsets) each produce a
        disjoint slice of the output, so the merged total is their sum.
        When a downstream stage (like the CF merge step) re-aggregates
        sibling outputs, callers set ``rows_produced`` to the final
        result's row count afterwards rather than merging the stages.
        """
        self.bytes_scanned += other.bytes_scanned
        self.scan_latency_s += other.scan_latency_s
        self.rows_scanned += other.rows_scanned
        self.rows_produced += other.rows_produced
        self.operators += other.operators
        self.get_requests += other.get_requests
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_evictions += other.cache_evictions
        self.row_groups_skipped += other.row_groups_skipped


@dataclass
class OperatorProfile:
    """Per-operator actuals from one analyzed run (EXPLAIN ANALYZE).

    ``time_s`` is real (wall-clock) execution time, cumulative over the
    operator's subtree; the storage counters are likewise subtree deltas.
    The tree mirrors the plan tree node for node.
    """

    name: str
    rows_out: int
    time_s: float
    bytes_scanned: int = 0
    get_requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    row_groups_skipped: int = 0
    children: list["OperatorProfile"] = field(default_factory=list)


@dataclass
class QueryResult:
    """Rows plus statistics; ``column_names``/``rows()`` are the public
    result-set view Pixels-Rover renders."""

    data: TableData
    stats: QueryStats = field(default_factory=QueryStats)
    profile: OperatorProfile | None = None

    @property
    def column_names(self) -> list[str]:
        return self.data.column_names

    @property
    def num_rows(self) -> int:
        return self.data.num_rows

    def rows(self) -> list[tuple]:
        return self.data.to_rows()


class QueryExecutor:
    """Executes logical plans against a :class:`DataSource`."""

    def __init__(self, source: DataSource) -> None:
        self._source = source

    def execute(self, plan: PlanNode, analyze: bool = False) -> QueryResult:
        """Run ``plan``; with ``analyze`` also build the per-operator
        profile tree that EXPLAIN ANALYZE renders."""
        stats = QueryStats()
        profile: OperatorProfile | None = None
        if analyze:
            sink: list[OperatorProfile] = []
            data = self._run(plan, stats, sink)
            profile = sink[0]
        else:
            data = self._run(plan, stats)
        stats.rows_produced = data.num_rows
        return QueryResult(data, stats, profile)

    def _run(
        self,
        node: PlanNode,
        stats: QueryStats,
        sink: "list[OperatorProfile] | None" = None,
    ) -> TableData:
        stats.operators += 1
        if sink is None:
            return self._execute_node(node, stats, None)
        started = time.perf_counter()
        before = (
            stats.bytes_scanned,
            stats.get_requests,
            stats.cache_hits,
            stats.cache_misses,
            stats.cache_evictions,
            stats.row_groups_skipped,
        )
        children: list[OperatorProfile] = []
        data = self._execute_node(node, stats, children)
        sink.append(
            OperatorProfile(
                name=type(node).__name__,
                rows_out=data.num_rows,
                time_s=time.perf_counter() - started,
                bytes_scanned=stats.bytes_scanned - before[0],
                get_requests=stats.get_requests - before[1],
                cache_hits=stats.cache_hits - before[2],
                cache_misses=stats.cache_misses - before[3],
                cache_evictions=stats.cache_evictions - before[4],
                row_groups_skipped=stats.row_groups_skipped - before[5],
                children=children,
            )
        )
        return data

    def _execute_node(
        self,
        node: PlanNode,
        stats: QueryStats,
        sink: "list[OperatorProfile] | None",
    ) -> TableData:
        if isinstance(node, Scan):
            return self._run_scan(node, stats)
        if isinstance(node, MaterializedView):
            if not isinstance(node.data, TableData):
                raise ExecutionError(
                    f"materialized view {node.name!r} has no data attached"
                )
            return node.data
        if isinstance(node, Filter):
            table = self._run(node.input, stats, sink)
            if table.num_rows == 0:
                return table
            mask = mask_from_predicate(node.predicate.evaluate(table))
            return table.filter(mask)
        if isinstance(node, Project):
            table = self._run(node.input, stats, sink)
            columns: dict[str, ColumnVector] = {}
            for name, expr in node.exprs:
                columns[name] = expr.evaluate(table)
            return TableData(columns)
        if isinstance(node, HashJoin):
            left = self._run(node.left, stats, sink)
            right = self._run(node.right, stats, sink)
            if node.join_type in (JoinType.SEMI, JoinType.ANTI):
                from repro.engine.physical import execute_semi_anti_join

                return execute_semi_anti_join(
                    left, right, node.left_keys, node.right_keys,
                    anti=node.join_type is JoinType.ANTI,
                )
            left_indices, right_indices = execute_hash_join(
                left, right, node.left_keys, node.right_keys,
                node.join_type is JoinType.LEFT,
            )
            return join_tables(
                left, right, left_indices, right_indices,
                node.join_type is JoinType.LEFT, node.residual,
            )
        if isinstance(node, UnionAllPlan):
            from repro.engine.physical import execute_union_all

            return execute_union_all(
                [self._run(child, stats, sink) for child in node.inputs],
                node.output_schema(),
            )
        if isinstance(node, Aggregate):
            table = self._run(node.input, stats, sink)
            return execute_aggregate(table, node.group_keys, node.aggregates)
        if isinstance(node, Sort):
            table = self._run(node.input, stats, sink)
            return execute_sort(
                table, [(key.column, key.ascending) for key in node.keys]
            )
        if isinstance(node, Distinct):
            return execute_distinct(self._run(node.input, stats, sink))
        if isinstance(node, Limit):
            table = self._run(node.input, stats, sink)
            return execute_limit(table, node.limit, node.offset)
        raise ExecutionError(f"unknown plan node {type(node).__name__}")

    def _run_scan(self, node: Scan, stats: QueryStats) -> TableData:
        result = self._source.scan(node)
        stats.bytes_scanned += result.bytes_scanned
        stats.scan_latency_s += result.latency_s
        stats.rows_scanned += result.data.num_rows
        stats.get_requests += result.get_requests
        stats.cache_hits += result.cache_hits
        stats.cache_misses += result.cache_misses
        stats.cache_evictions += result.cache_evictions
        stats.row_groups_skipped += result.row_groups_skipped
        table = result.data
        if node.residual is not None and table.num_rows:
            mask = mask_from_predicate(node.residual.evaluate(table))
            table = table.filter(mask)
        return table
