"""Bound, typed, vectorized expressions.

The binder turns AST expressions into ``BoundExpr`` trees whose
:meth:`~BoundExpr.evaluate` runs over a :class:`~repro.storage.table.TableData`
batch and returns a :class:`~repro.storage.types.ColumnVector`.  SQL
three-valued logic is carried by the vector null masks: comparisons
propagate NULL, AND/OR follow Kleene logic, and WHERE treats NULL as false
(the filter operator drops NULL rows).
"""

from __future__ import annotations

import dataclasses
import re
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import BindError, ExecutionError
from repro.storage.table import TableData
from repro.storage.types import ColumnVector, DataType

ARITHMETIC_OPS = {"+", "-", "*", "/", "%"}
COMPARISON_OPS = {"=", "<>", "<", "<=", ">", ">="}
LOGICAL_OPS = {"and", "or"}


class BoundExpr:
    """Base class: a typed expression evaluable over a table batch."""

    dtype: DataType

    def evaluate(self, table: TableData) -> ColumnVector:
        raise NotImplementedError

    def references(self) -> set[str]:
        """Names of input columns this expression reads."""
        return set()

    def to_sql(self) -> str:
        raise NotImplementedError


#: Broadcast vectors are interned per (dtype, value, batch length): constant
#: expressions in tight per-batch loops reuse one shared vector instead of
#: rebuilding ``np.full`` / ``[""] * n`` buffers every batch.  Entries are
#: read-only by convention — every consumer that writes (CASE, coalesce)
#: copies first.
_BROADCAST_CACHE: OrderedDict[tuple, ColumnVector] = OrderedDict()
_BROADCAST_CACHE_ENTRIES = 256
_BROADCAST_LOCK = threading.Lock()


def clear_broadcast_cache() -> None:
    with _BROADCAST_LOCK:
        _BROADCAST_CACHE.clear()


def _broadcast_scalar(dtype: DataType, value: object, num_rows: int) -> ColumnVector:
    try:
        key = (dtype, value, num_rows)
        hash(key)
    except TypeError:
        key = None
    if key is not None:
        with _BROADCAST_LOCK:
            cached = _BROADCAST_CACHE.get(key)
            if cached is not None:
                _BROADCAST_CACHE.move_to_end(key)
                return cached
    if value is None:
        data = np.zeros(num_rows, dtype=dtype.numpy_dtype)
        if dtype is DataType.VARCHAR:
            data = np.array([""] * num_rows, dtype=object)
        vector = ColumnVector(dtype, data, np.ones(num_rows, dtype=bool))
    elif dtype is DataType.VARCHAR:
        vector = ColumnVector(dtype, np.array([value] * num_rows, dtype=object))
    else:
        vector = ColumnVector(dtype, np.full(num_rows, value, dtype=dtype.numpy_dtype))
    if key is not None:
        with _BROADCAST_LOCK:
            _BROADCAST_CACHE[key] = vector
            while len(_BROADCAST_CACHE) > _BROADCAST_CACHE_ENTRIES:
                _BROADCAST_CACHE.popitem(last=False)
    return vector


@dataclass
class BoundLiteral(BoundExpr):
    """A constant broadcast to the batch length."""

    value: object
    dtype: DataType

    def evaluate(self, table: TableData) -> ColumnVector:
        return _broadcast_scalar(self.dtype, self.value, table.num_rows)

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return str(self.value)


@dataclass
class BoundColumn(BoundExpr):
    """A reference to a column of the input batch by qualified name."""

    name: str
    dtype: DataType

    def evaluate(self, table: TableData) -> ColumnVector:
        return table.column(self.name)

    def references(self) -> set[str]:
        return {self.name}

    def to_sql(self) -> str:
        return self.name


def _combine_nulls(*vectors: ColumnVector) -> np.ndarray | None:
    masks = [vector.nulls for vector in vectors if vector.nulls is not None]
    if not masks:
        return None
    result = masks[0].copy()
    for mask in masks[1:]:
        result |= mask
    return result


def _promote(left: DataType, right: DataType) -> DataType:
    """Numeric promotion: INT < BIGINT < DOUBLE."""
    order = [DataType.INT, DataType.BIGINT, DataType.DOUBLE]
    if left in order and right in order:
        return order[max(order.index(left), order.index(right))]
    raise BindError(f"cannot promote {left.value} with {right.value}")


@dataclass
class BoundArithmetic(BoundExpr):
    """``+ - * / %`` with numeric promotion; DATE ± INT stays DATE."""

    op: str
    left: BoundExpr
    right: BoundExpr
    dtype: DataType

    @staticmethod
    def bind(op: str, left: BoundExpr, right: BoundExpr) -> "BoundArithmetic":
        if op not in ARITHMETIC_OPS:
            raise BindError(f"unknown arithmetic operator {op!r}")
        date_types = (left.dtype is DataType.DATE, right.dtype is DataType.DATE)
        if any(date_types):
            if op not in ("+", "-"):
                raise BindError(f"operator {op!r} not defined for DATE")
            other = right.dtype if date_types[0] else left.dtype
            if other in (DataType.INT, DataType.BIGINT):
                return BoundArithmetic(op, left, right, DataType.DATE)
            if all(date_types) and op == "-":
                return BoundArithmetic(op, left, right, DataType.INT)
            raise BindError("DATE arithmetic requires an integer day count")
        if op == "/":
            result_type = DataType.DOUBLE
        else:
            result_type = _promote(left.dtype, right.dtype)
        return BoundArithmetic(op, left, right, result_type)

    def evaluate(self, table: TableData) -> ColumnVector:
        left = self.left.evaluate(table)
        right = self.right.evaluate(table)
        nulls = _combine_nulls(left, right)
        lhs = left.data
        rhs = right.data
        if self.op == "/":
            lhs = lhs.astype(np.float64)
            rhs = rhs.astype(np.float64)
            with np.errstate(divide="ignore", invalid="ignore"):
                data = lhs / rhs
            zero_division = rhs == 0
            if zero_division.any():
                nulls = (
                    zero_division
                    if nulls is None
                    else (nulls | zero_division)
                )
                data = np.where(zero_division, 0.0, data)
        elif self.op == "%":
            rhs_safe = np.where(rhs == 0, 1, rhs)
            data = lhs % rhs_safe
            zero_division = rhs == 0
            if zero_division.any():
                nulls = (
                    zero_division if nulls is None else (nulls | zero_division)
                )
        elif self.op == "+":
            data = lhs + rhs
        elif self.op == "-":
            data = lhs - rhs
        else:
            data = lhs * rhs
        return ColumnVector(self.dtype, data.astype(self.dtype.numpy_dtype), nulls)

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass
class BoundComparison(BoundExpr):
    """``= <> < <= > >=`` returning BOOLEAN with NULL propagation."""

    op: str
    left: BoundExpr
    right: BoundExpr
    dtype: DataType = DataType.BOOLEAN

    @staticmethod
    def bind(op: str, left: BoundExpr, right: BoundExpr) -> "BoundComparison":
        if op not in COMPARISON_OPS:
            raise BindError(f"unknown comparison operator {op!r}")
        comparable = (
            left.dtype is right.dtype
            or (left.dtype.is_numeric and right.dtype.is_numeric)
        )
        if not comparable:
            raise BindError(
                f"cannot compare {left.dtype.value} with {right.dtype.value}"
            )
        if left.dtype is DataType.BOOLEAN and op not in ("=", "<>"):
            raise BindError("BOOLEAN supports only = and <>")
        return BoundComparison(op, left, right)

    def evaluate(self, table: TableData) -> ColumnVector:
        left = self.left.evaluate(table)
        right = self.right.evaluate(table)
        nulls = _combine_nulls(left, right)
        lhs, rhs = left.data, right.data
        if left.dtype is DataType.VARCHAR:
            lhs = lhs.astype(str)
            rhs = rhs.astype(str)
        if self.op == "=":
            data = lhs == rhs
        elif self.op == "<>":
            data = lhs != rhs
        elif self.op == "<":
            data = lhs < rhs
        elif self.op == "<=":
            data = lhs <= rhs
        elif self.op == ">":
            data = lhs > rhs
        else:
            data = lhs >= rhs
        return ColumnVector(DataType.BOOLEAN, np.asarray(data, dtype=bool), nulls)

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass
class BoundLogical(BoundExpr):
    """Kleene AND/OR over BOOLEAN operands."""

    op: str
    left: BoundExpr
    right: BoundExpr
    dtype: DataType = DataType.BOOLEAN

    @staticmethod
    def bind(op: str, left: BoundExpr, right: BoundExpr) -> "BoundLogical":
        if left.dtype is not DataType.BOOLEAN or right.dtype is not DataType.BOOLEAN:
            raise BindError(f"{op.upper()} requires BOOLEAN operands")
        return BoundLogical(op, left, right)

    def evaluate(self, table: TableData) -> ColumnVector:
        left = self.left.evaluate(table)
        right = self.right.evaluate(table)
        num_rows = len(left)
        left_null = (
            left.nulls if left.nulls is not None else np.zeros(num_rows, dtype=bool)
        )
        right_null = (
            right.nulls if right.nulls is not None else np.zeros(num_rows, dtype=bool)
        )
        left_value = left.data & ~left_null
        right_value = right.data & ~right_null
        if self.op == "and":
            # FALSE dominates; NULL when undetermined.
            definite_false = (~left.data & ~left_null) | (~right.data & ~right_null)
            data = left_value & right_value
            nulls = (left_null | right_null) & ~definite_false
        else:
            definite_true = left_value | right_value
            data = definite_true
            nulls = (left_null | right_null) & ~definite_true
        return ColumnVector(
            DataType.BOOLEAN, data, nulls if nulls.any() else None
        )

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op.upper()} {self.right.to_sql()})"


@dataclass
class BoundNot(BoundExpr):
    operand: BoundExpr
    dtype: DataType = DataType.BOOLEAN

    @staticmethod
    def bind(operand: BoundExpr) -> "BoundNot":
        if operand.dtype is not DataType.BOOLEAN:
            raise BindError("NOT requires a BOOLEAN operand")
        return BoundNot(operand)

    def evaluate(self, table: TableData) -> ColumnVector:
        value = self.operand.evaluate(table)
        return ColumnVector(DataType.BOOLEAN, ~value.data, value.nulls)

    def references(self) -> set[str]:
        return self.operand.references()

    def to_sql(self) -> str:
        return f"(NOT {self.operand.to_sql()})"


@dataclass
class BoundNegate(BoundExpr):
    """Arithmetic negation."""

    operand: BoundExpr
    dtype: DataType

    @staticmethod
    def bind(operand: BoundExpr) -> "BoundNegate":
        if not operand.dtype.is_numeric:
            raise BindError("unary minus requires a numeric operand")
        return BoundNegate(operand, operand.dtype)

    def evaluate(self, table: TableData) -> ColumnVector:
        value = self.operand.evaluate(table)
        return ColumnVector(self.dtype, -value.data, value.nulls)

    def references(self) -> set[str]:
        return self.operand.references()

    def to_sql(self) -> str:
        return f"(-{self.operand.to_sql()})"


@dataclass
class BoundIsNull(BoundExpr):
    operand: BoundExpr
    negated: bool = False
    dtype: DataType = DataType.BOOLEAN

    def evaluate(self, table: TableData) -> ColumnVector:
        value = self.operand.evaluate(table)
        nulls = (
            value.nulls
            if value.nulls is not None
            else np.zeros(len(value), dtype=bool)
        )
        data = ~nulls if self.negated else nulls.copy()
        return ColumnVector(DataType.BOOLEAN, data)

    def references(self) -> set[str]:
        return self.operand.references()

    def to_sql(self) -> str:
        return f"({self.operand.to_sql()} IS {'NOT ' if self.negated else ''}NULL)"


@dataclass
class BoundInList(BoundExpr):
    """Vectorized ``expr IN (literals...)`` via numpy membership."""

    operand: BoundExpr
    values: tuple[object, ...]
    negated: bool = False
    dtype: DataType = DataType.BOOLEAN

    def evaluate(self, table: TableData) -> ColumnVector:
        value = self.operand.evaluate(table)
        if value.dtype is DataType.VARCHAR:
            members = set(str(item) for item in self.values)
            data = np.array(
                [str(item) in members for item in value.data], dtype=bool
            )
        else:
            candidates = np.array(list(self.values))
            data = np.isin(value.data, candidates)
        if self.negated:
            data = ~data
        return ColumnVector(DataType.BOOLEAN, data, value.nulls)

    def references(self) -> set[str]:
        return self.operand.references()

    def to_sql(self) -> str:
        inner = ", ".join(repr(item) for item in self.values)
        return f"({self.operand.to_sql()} {'NOT ' if self.negated else ''}IN ({inner}))"


@dataclass
class BoundLike(BoundExpr):
    """SQL LIKE compiled to a regex; ``%`` → ``.*`` and ``_`` → ``.``."""

    operand: BoundExpr
    pattern: str
    negated: bool = False
    dtype: DataType = DataType.BOOLEAN

    def __post_init__(self) -> None:
        self._regex = re.compile(like_to_regex(self.pattern), re.DOTALL)

    def evaluate(self, table: TableData) -> ColumnVector:
        value = self.operand.evaluate(table)
        data = np.array(
            [bool(self._regex.match(str(item))) for item in value.data], dtype=bool
        )
        if self.negated:
            data = ~data
        return ColumnVector(DataType.BOOLEAN, data, value.nulls)

    def references(self) -> set[str]:
        return self.operand.references()

    def to_sql(self) -> str:
        return (
            f"({self.operand.to_sql()} {'NOT ' if self.negated else ''}"
            f"LIKE '{self.pattern}')"
        )


def like_to_regex(pattern: str) -> str:
    """Translate a LIKE pattern into an anchored regex."""
    parts = ["^"]
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    parts.append("$")
    return "".join(parts)


@dataclass
class BoundCase(BoundExpr):
    """Searched CASE evaluated with cascading numpy selects."""

    whens: tuple[tuple[BoundExpr, BoundExpr], ...]
    else_: BoundExpr | None
    dtype: DataType

    def evaluate(self, table: TableData) -> ColumnVector:
        num_rows = table.num_rows
        if self.else_ is not None:
            result = self.else_.evaluate(table)
            data = result.data.copy()
            nulls = (
                result.nulls.copy()
                if result.nulls is not None
                else np.zeros(num_rows, dtype=bool)
            )
        else:
            data = _broadcast_scalar(self.dtype, None, num_rows).data.copy()
            nulls = np.ones(num_rows, dtype=bool)
        decided = np.zeros(num_rows, dtype=bool)
        for condition, branch in self.whens:
            cond = condition.evaluate(table)
            cond_true = cond.data & (
                ~cond.nulls if cond.nulls is not None else True
            )
            take = np.asarray(cond_true, dtype=bool) & ~decided
            if take.any():
                branch_value = branch.evaluate(table)
                data[take] = branch_value.data[take]
                branch_nulls = (
                    branch_value.nulls
                    if branch_value.nulls is not None
                    else np.zeros(num_rows, dtype=bool)
                )
                nulls[take] = branch_nulls[take]
            decided |= np.asarray(cond_true, dtype=bool)
        return ColumnVector(self.dtype, data, nulls if nulls.any() else None)

    def references(self) -> set[str]:
        result: set[str] = set()
        for condition, branch in self.whens:
            result |= condition.references() | branch.references()
        if self.else_ is not None:
            result |= self.else_.references()
        return result

    def to_sql(self) -> str:
        parts = ["CASE"]
        for condition, branch in self.whens:
            parts.append(f"WHEN {condition.to_sql()} THEN {branch.to_sql()}")
        if self.else_ is not None:
            parts.append(f"ELSE {self.else_.to_sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclass
class BoundCast(BoundExpr):
    operand: BoundExpr
    dtype: DataType

    def evaluate(self, table: TableData) -> ColumnVector:
        value = self.operand.evaluate(table)
        if value.dtype is self.dtype:
            return value
        if self.dtype is DataType.VARCHAR:
            data = np.array([str(item) for item in value.data], dtype=object)
        elif value.dtype is DataType.VARCHAR:
            try:
                data = value.data.astype(self.dtype.numpy_dtype)
            except ValueError as exc:
                raise ExecutionError(f"CAST failed: {exc}") from exc
        else:
            data = value.data.astype(self.dtype.numpy_dtype)
        return ColumnVector(self.dtype, data, value.nulls)

    def references(self) -> set[str]:
        return self.operand.references()

    def to_sql(self) -> str:
        return f"CAST({self.operand.to_sql()} AS {self.dtype.value})"


@dataclass
class BoundScalarFunction(BoundExpr):
    """Non-aggregate built-in function."""

    name: str
    args: tuple[BoundExpr, ...]
    dtype: DataType

    SUPPORTED = {
        "upper": (1, DataType.VARCHAR),
        "lower": (1, DataType.VARCHAR),
        "length": (1, DataType.INT),
        "abs": (1, None),  # same type as argument
        "round": (2, DataType.DOUBLE),
        "year": (1, DataType.INT),
        "month": (1, DataType.INT),
        "coalesce": (-1, None),
        "substring": (3, DataType.VARCHAR),
    }

    @staticmethod
    def bind(name: str, args: tuple[BoundExpr, ...]) -> "BoundScalarFunction":
        if name not in BoundScalarFunction.SUPPORTED:
            raise BindError(f"unknown function {name!r}")
        arity, result_type = BoundScalarFunction.SUPPORTED[name]
        if arity >= 0 and len(args) != arity:
            raise BindError(f"{name}() takes {arity} arguments, got {len(args)}")
        if arity < 0 and not args:
            raise BindError(f"{name}() needs at least one argument")
        if result_type is None:
            result_type = args[0].dtype
        if name in ("year", "month") and args[0].dtype is not DataType.DATE:
            raise BindError(f"{name}() requires a DATE argument")
        if name in ("upper", "lower", "length", "substring"):
            if args[0].dtype is not DataType.VARCHAR:
                raise BindError(f"{name}() requires a VARCHAR argument")
        return BoundScalarFunction(name, args, result_type)

    def evaluate(self, table: TableData) -> ColumnVector:
        values = [arg.evaluate(table) for arg in self.args]
        first = values[0]
        if self.name == "upper":
            data = np.array([str(v).upper() for v in first.data], dtype=object)
            return ColumnVector(self.dtype, data, first.nulls)
        if self.name == "lower":
            data = np.array([str(v).lower() for v in first.data], dtype=object)
            return ColumnVector(self.dtype, data, first.nulls)
        if self.name == "length":
            data = np.array([len(str(v)) for v in first.data], dtype=np.int32)
            return ColumnVector(self.dtype, data, first.nulls)
        if self.name == "abs":
            return ColumnVector(self.dtype, np.abs(first.data), first.nulls)
        if self.name == "round":
            digits = int(values[1].data[0]) if len(values[1]) else 0
            data = np.round(first.data.astype(np.float64), digits)
            return ColumnVector(self.dtype, data, first.nulls)
        if self.name in ("year", "month"):
            # DATE is days since epoch; convert via numpy datetime64.
            dates = first.data.astype("datetime64[D]")
            if self.name == "year":
                data = dates.astype("datetime64[Y]").astype(np.int32) + 1970
            else:
                months = dates.astype("datetime64[M]").astype(np.int32)
                data = (months % 12 + 1).astype(np.int32)
            return ColumnVector(self.dtype, data, first.nulls)
        if self.name == "coalesce":
            data = first.data.copy()
            nulls = (
                first.nulls.copy()
                if first.nulls is not None
                else np.zeros(len(first), dtype=bool)
            )
            for value in values[1:]:
                fill = nulls & ~(
                    value.nulls
                    if value.nulls is not None
                    else np.zeros(len(value), dtype=bool)
                )
                data[fill] = value.data[fill]
                nulls[fill] = False
            return ColumnVector(self.dtype, data, nulls if nulls.any() else None)
        if self.name == "substring":
            start = int(values[1].data[0]) if len(values[1]) else 1
            length = int(values[2].data[0]) if len(values[2]) else 0
            begin = max(start - 1, 0)
            data = np.array(
                [str(v)[begin : begin + length] for v in first.data], dtype=object
            )
            return ColumnVector(self.dtype, data, first.nulls)
        raise ExecutionError(f"unhandled function {self.name!r}")

    def references(self) -> set[str]:
        result: set[str] = set()
        for arg in self.args:
            result |= arg.references()
        return result

    def to_sql(self) -> str:
        inner = ", ".join(arg.to_sql() for arg in self.args)
        return f"{self.name.upper()}({inner})"


@dataclass
class BoundConcat(BoundExpr):
    """String concatenation (``||``)."""

    left: BoundExpr
    right: BoundExpr
    dtype: DataType = DataType.VARCHAR

    @staticmethod
    def bind(left: BoundExpr, right: BoundExpr) -> "BoundConcat":
        if left.dtype is not DataType.VARCHAR or right.dtype is not DataType.VARCHAR:
            raise BindError("|| requires VARCHAR operands")
        return BoundConcat(left, right)

    def evaluate(self, table: TableData) -> ColumnVector:
        left = self.left.evaluate(table)
        right = self.right.evaluate(table)
        data = np.array(
            [str(a) + str(b) for a, b in zip(left.data, right.data)], dtype=object
        )
        return ColumnVector(DataType.VARCHAR, data, _combine_nulls(left, right))

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} || {self.right.to_sql()})"


def mask_from_predicate(vector: ColumnVector) -> np.ndarray:
    """WHERE semantics: TRUE rows pass, FALSE and NULL rows are dropped."""
    if vector.dtype is not DataType.BOOLEAN:
        raise ExecutionError("predicate did not evaluate to BOOLEAN")
    mask = np.asarray(vector.data, dtype=bool)
    if vector.nulls is not None:
        mask = mask & ~vector.nulls
    return mask


# ---------------------------------------------------------------------------
# Expression fusion: constant folding, CSE, and compiled closures
# ---------------------------------------------------------------------------

#: A compiled expression: one call per batch instead of one interpreted
#: ``evaluate`` dispatch per tree node.
CompiledExpr = Callable[[TableData], ColumnVector]

_FOLD_PROBE: TableData | None = None


def _fold_probe() -> TableData:
    """A one-row dummy batch used to evaluate reference-free subtrees."""
    global _FOLD_PROBE
    if _FOLD_PROBE is None:
        _FOLD_PROBE = TableData(
            {"__fold__": ColumnVector(DataType.BIGINT, np.zeros(1, dtype=np.int64))}
        )
    return _FOLD_PROBE


def _expr_children(expr: BoundExpr) -> tuple[BoundExpr, ...]:
    if isinstance(expr, (BoundArithmetic, BoundComparison, BoundLogical, BoundConcat)):
        return (expr.left, expr.right)
    if isinstance(
        expr, (BoundNot, BoundNegate, BoundIsNull, BoundInList, BoundLike, BoundCast)
    ):
        return (expr.operand,)
    if isinstance(expr, BoundCase):
        kids = [child for pair in expr.whens for child in pair]
        if expr.else_ is not None:
            kids.append(expr.else_)
        return tuple(kids)
    if isinstance(expr, BoundScalarFunction):
        return expr.args
    return ()


def fold_constants(expr: BoundExpr) -> BoundExpr:
    """Collapse reference-free subtrees into :class:`BoundLiteral` nodes.

    The subtree is evaluated once against a one-row probe batch; the
    resulting scalar (or NULL) replaces it.  Subtrees whose evaluation
    raises are left alone so runtime errors keep their runtime timing.
    Folding is semantics-preserving per batch: a constant subtree produces
    the same broadcast vector the original would have, just without
    recomputing it.
    """
    folded = _fold_children(expr)
    if isinstance(folded, (BoundLiteral, BoundColumn)) or folded.references():
        return folded
    try:
        probe = folded.evaluate(_fold_probe())
    except Exception:
        return folded
    if probe.nulls is not None and bool(probe.nulls[0]):
        return BoundLiteral(None, folded.dtype)
    raw = probe.data[0]
    value = raw.item() if hasattr(raw, "item") else raw
    if folded.dtype is DataType.VARCHAR:
        value = str(value)
    return BoundLiteral(value, folded.dtype)


def _fold_children(expr: BoundExpr) -> BoundExpr:
    if isinstance(expr, (BoundArithmetic, BoundComparison, BoundLogical, BoundConcat)):
        return dataclasses.replace(
            expr, left=fold_constants(expr.left), right=fold_constants(expr.right)
        )
    if isinstance(
        expr, (BoundNot, BoundNegate, BoundIsNull, BoundInList, BoundLike, BoundCast)
    ):
        return dataclasses.replace(expr, operand=fold_constants(expr.operand))
    if isinstance(expr, BoundCase):
        whens = tuple(
            (fold_constants(condition), fold_constants(branch))
            for condition, branch in expr.whens
        )
        else_ = fold_constants(expr.else_) if expr.else_ is not None else None
        return dataclasses.replace(expr, whens=whens, else_=else_)
    if isinstance(expr, BoundScalarFunction):
        return dataclasses.replace(
            expr, args=tuple(fold_constants(arg) for arg in expr.args)
        )
    return expr


def compile_expr(expr: BoundExpr) -> CompiledExpr:
    """Fuse a ``BoundExpr`` tree into one closure over numpy kernels.

    Three optimizations over interpreted ``evaluate``:

    * **constant folding** — reference-free subtrees are pre-evaluated and
      served from the broadcast cache;
    * **common-subexpression elimination** — structurally identical
      subtrees (keyed by their SQL rendering + dtype) compile to one
      shared kernel memoized per batch;
    * **fused kernels** — comparison/logic/arithmetic nodes become plain
      closures over numpy ufuncs with operator dispatch resolved at
      compile time, so a batch costs one call into the compiled chain
      instead of O(tree nodes) method dispatches.

    The compiled callable is bit-for-bit equivalent to ``expr.evaluate``,
    including NULL masks and Kleene three-valued logic (node types without
    a fused kernel fall back to the interpreter).
    """
    folded = fold_constants(expr)
    counts: dict[str, int] = {}
    _count_subtrees(folded, counts)
    kernel = _compile_node(folded, counts, {})

    def compiled(table: TableData) -> ColumnVector:
        return kernel(table, {})

    compiled.source = folded  # type: ignore[attr-defined]
    return compiled


def _cse_key(expr: BoundExpr) -> str:
    return f"{expr.dtype.value}:{expr.to_sql()}"


def _count_subtrees(expr: BoundExpr, counts: dict[str, int]) -> None:
    key = _cse_key(expr)
    counts[key] = counts.get(key, 0) + 1
    for child in _expr_children(expr):
        _count_subtrees(child, counts)


def _compile_node(
    expr: BoundExpr, counts: dict[str, int], kernels: dict[str, Callable]
) -> Callable[[TableData, dict], ColumnVector]:
    key = _cse_key(expr)
    cached = kernels.get(key)
    if cached is not None:
        return cached
    fn = _compile_body(expr, counts, kernels)
    if counts.get(key, 0) > 1:
        inner = fn

        def fn(table: TableData, memo: dict, _key=key, _inner=inner) -> ColumnVector:
            hit = memo.get(_key)
            if hit is None:
                hit = _inner(table, memo)
                memo[_key] = hit
            return hit

    kernels[key] = fn
    return fn


def _compile_body(
    expr: BoundExpr, counts: dict[str, int], kernels: dict[str, Callable]
) -> Callable[[TableData, dict], ColumnVector]:
    if isinstance(expr, BoundLiteral):
        dtype, value = expr.dtype, expr.value
        return lambda table, memo: _broadcast_scalar(dtype, value, table.num_rows)
    if isinstance(expr, BoundColumn):
        name = expr.name
        return lambda table, memo: table.column(name)
    if isinstance(expr, BoundArithmetic):
        return _compile_arithmetic(expr, counts, kernels)
    if isinstance(expr, BoundComparison):
        return _compile_comparison(expr, counts, kernels)
    if isinstance(expr, BoundLogical):
        return _compile_logical(expr, counts, kernels)
    if isinstance(expr, BoundNot):
        operand = _compile_node(expr.operand, counts, kernels)

        def not_kernel(table: TableData, memo: dict) -> ColumnVector:
            value = operand(table, memo)
            return ColumnVector(DataType.BOOLEAN, ~value.data, value.nulls)

        return not_kernel
    if isinstance(expr, BoundNegate):
        operand = _compile_node(expr.operand, counts, kernels)
        dtype = expr.dtype

        def negate_kernel(table: TableData, memo: dict) -> ColumnVector:
            value = operand(table, memo)
            return ColumnVector(dtype, -value.data, value.nulls)

        return negate_kernel
    if isinstance(expr, BoundIsNull):
        operand = _compile_node(expr.operand, counts, kernels)
        negated = expr.negated

        def is_null_kernel(table: TableData, memo: dict) -> ColumnVector:
            value = operand(table, memo)
            nulls = (
                value.nulls
                if value.nulls is not None
                else np.zeros(len(value), dtype=bool)
            )
            data = ~nulls if negated else nulls.copy()
            return ColumnVector(DataType.BOOLEAN, data)

        return is_null_kernel
    if isinstance(expr, BoundInList):
        return _compile_in_list(expr, counts, kernels)
    # LIKE / CASE / CAST / scalar functions / concat keep the interpreter —
    # they are either already per-item loops or rare in hot predicates.
    node = expr
    return lambda table, memo: node.evaluate(table)


def _compile_arithmetic(
    expr: BoundArithmetic, counts: dict[str, int], kernels: dict[str, Callable]
) -> Callable[[TableData, dict], ColumnVector]:
    left = _compile_node(expr.left, counts, kernels)
    right = _compile_node(expr.right, counts, kernels)
    dtype = expr.dtype
    np_dtype = dtype.numpy_dtype
    if expr.op == "/":

        def divide_kernel(table: TableData, memo: dict) -> ColumnVector:
            l, r = left(table, memo), right(table, memo)
            nulls = _combine_nulls(l, r)
            lhs = l.data.astype(np.float64)
            rhs = r.data.astype(np.float64)
            with np.errstate(divide="ignore", invalid="ignore"):
                data = lhs / rhs
            zero_division = rhs == 0
            if zero_division.any():
                nulls = zero_division if nulls is None else (nulls | zero_division)
                data = np.where(zero_division, 0.0, data)
            return ColumnVector(dtype, data.astype(np_dtype), nulls)

        return divide_kernel
    if expr.op == "%":

        def modulo_kernel(table: TableData, memo: dict) -> ColumnVector:
            l, r = left(table, memo), right(table, memo)
            nulls = _combine_nulls(l, r)
            rhs = r.data
            rhs_safe = np.where(rhs == 0, 1, rhs)
            data = l.data % rhs_safe
            zero_division = rhs == 0
            if zero_division.any():
                nulls = zero_division if nulls is None else (nulls | zero_division)
            return ColumnVector(dtype, data.astype(np_dtype), nulls)

        return modulo_kernel
    ufunc = {"+": np.add, "-": np.subtract, "*": np.multiply}[expr.op]

    def arithmetic_kernel(table: TableData, memo: dict) -> ColumnVector:
        l, r = left(table, memo), right(table, memo)
        data = ufunc(l.data, r.data)
        return ColumnVector(dtype, data.astype(np_dtype), _combine_nulls(l, r))

    return arithmetic_kernel


def _compile_comparison(
    expr: BoundComparison, counts: dict[str, int], kernels: dict[str, Callable]
) -> Callable[[TableData, dict], ColumnVector]:
    left = _compile_node(expr.left, counts, kernels)
    right = _compile_node(expr.right, counts, kernels)
    ufunc = {
        "=": np.equal,
        "<>": np.not_equal,
        "<": np.less,
        "<=": np.less_equal,
        ">": np.greater,
        ">=": np.greater_equal,
    }[expr.op]
    varchar = expr.left.dtype is DataType.VARCHAR

    def comparison_kernel(table: TableData, memo: dict) -> ColumnVector:
        l, r = left(table, memo), right(table, memo)
        lhs, rhs = l.data, r.data
        if varchar:
            lhs = lhs.astype(str)
            rhs = rhs.astype(str)
        data = ufunc(lhs, rhs)
        return ColumnVector(
            DataType.BOOLEAN, np.asarray(data, dtype=bool), _combine_nulls(l, r)
        )

    return comparison_kernel


def _compile_logical(
    expr: BoundLogical, counts: dict[str, int], kernels: dict[str, Callable]
) -> Callable[[TableData, dict], ColumnVector]:
    left = _compile_node(expr.left, counts, kernels)
    right = _compile_node(expr.right, counts, kernels)
    is_and = expr.op == "and"

    def logical_kernel(table: TableData, memo: dict) -> ColumnVector:
        l, r = left(table, memo), right(table, memo)
        if l.nulls is None and r.nulls is None:
            # Fused two-valued fast path: one mask op, no Kleene bookkeeping.
            data = (l.data & r.data) if is_and else (l.data | r.data)
            return ColumnVector(DataType.BOOLEAN, data, None)
        num_rows = len(l)
        left_null = l.nulls if l.nulls is not None else np.zeros(num_rows, dtype=bool)
        right_null = r.nulls if r.nulls is not None else np.zeros(num_rows, dtype=bool)
        left_value = l.data & ~left_null
        right_value = r.data & ~right_null
        if is_and:
            definite_false = (~l.data & ~left_null) | (~r.data & ~right_null)
            data = left_value & right_value
            nulls = (left_null | right_null) & ~definite_false
        else:
            definite_true = left_value | right_value
            data = definite_true
            nulls = (left_null | right_null) & ~definite_true
        return ColumnVector(DataType.BOOLEAN, data, nulls if nulls.any() else None)

    return logical_kernel


def _compile_in_list(
    expr: BoundInList, counts: dict[str, int], kernels: dict[str, Callable]
) -> Callable[[TableData, dict], ColumnVector]:
    operand = _compile_node(expr.operand, counts, kernels)
    negated = expr.negated
    if expr.operand.dtype is DataType.VARCHAR:
        members = set(str(item) for item in expr.values)

        def in_varchar_kernel(table: TableData, memo: dict) -> ColumnVector:
            value = operand(table, memo)
            data = np.array([str(item) in members for item in value.data], dtype=bool)
            if negated:
                data = ~data
            return ColumnVector(DataType.BOOLEAN, data, value.nulls)

        return in_varchar_kernel
    candidates = np.array(list(expr.values))

    def in_list_kernel(table: TableData, memo: dict) -> ColumnVector:
        value = operand(table, memo)
        data = np.isin(value.data, candidates)
        if negated:
            data = ~data
        return ColumnVector(DataType.BOOLEAN, data, value.nulls)

    return in_list_kernel
