"""Rule-based plan optimizer.

Four passes, applied in order:

1. **Equi-predicate extraction** — WHERE conjuncts of the form
   ``left.col = right.col`` spanning an inner join's two sides become join
   keys (this is what makes comma joins executable as hash joins).
2. **Predicate push-down** — remaining conjuncts move below joins to the
   side they reference; conjuncts reaching a Scan become (a) zone-map
   ``ranges`` used to skip row groups and (b) the scan's ``residual``
   row-level filter.  LEFT joins only accept pushes to their left side.
3. **Build-side swap** — each inner hash join builds on its smaller input
   (row estimates from catalog statistics with simple selectivity rules).
4. **Sort+Limit → Top-N fusion** — a ``Limit`` directly above a ``Sort``
   (or separated from it only by the planner's helper-column-dropping
   ``Project``) becomes one :class:`~repro.engine.plan.TopN` node, executed
   by partial
   selection (``np.argpartition`` of the top ``k + offset`` rows, then a
   sort of only the survivors) so ``ORDER BY … LIMIT k`` never fully sorts
   its input.
5. **Projection pruning** — scans read only columns actually referenced
   above them, which is what makes bytes-*scanned* (the billing basis)
   track the query rather than the table width.
"""

from __future__ import annotations

from repro.engine import expr as bound
from repro.engine.plan import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    JoinType,
    Limit,
    MaterializedView,
    PlanNode,
    Project,
    Scan,
    Sort,
    TopN,
    UnionAllPlan,
)

RANGE_OPS = {"=", "<", "<=", ">", ">="}


class Optimizer:
    """Applies the rewrite passes to a logical plan."""

    def optimize(self, plan: PlanNode) -> PlanNode:
        plan = self._rewrite_filters(plan)
        plan = self._swap_build_sides(plan)
        plan = self._fuse_top_n(plan)
        self._prune_projections(plan, required=None)
        return plan

    # -- passes 1 & 2: filter rewriting and push-down ---------------------------

    def _rewrite_filters(self, node: PlanNode) -> PlanNode:
        if isinstance(node, UnionAllPlan):
            node.inputs = [self._rewrite_filters(c) for c in node.inputs]
            return node
        for attr in ("input", "left", "right"):
            child = getattr(node, attr, None)
            if isinstance(child, PlanNode):
                setattr(node, attr, self._rewrite_filters(child))
        if isinstance(node, Filter):
            conjuncts = split_conjuncts(node.predicate)
            remaining = self._push_conjuncts(node.input, conjuncts)
            if not remaining:
                return node.input
            node.predicate = and_all(remaining)
        return node

    def _push_conjuncts(
        self, node: PlanNode, conjuncts: list[bound.BoundExpr]
    ) -> list[bound.BoundExpr]:
        """Push what we can into ``node``; return the conjuncts that could
        not be absorbed (they stay in the parent filter)."""
        if isinstance(node, Scan):
            for conjunct in conjuncts:
                self._absorb_into_scan(node, conjunct)
            return []
        if isinstance(node, HashJoin):
            return self._push_into_join(node, conjuncts)
        if isinstance(node, Filter):
            remaining = self._push_conjuncts(node.input, conjuncts)
            return remaining
        return conjuncts

    def _push_into_join(
        self, join: HashJoin, conjuncts: list[bound.BoundExpr]
    ) -> list[bound.BoundExpr]:
        left_columns = {name for name, _ in join.left.output_schema()}
        right_columns = {name for name, _ in join.right.output_schema()}
        remaining: list[bound.BoundExpr] = []
        to_left: list[bound.BoundExpr] = []
        to_right: list[bound.BoundExpr] = []
        for conjunct in conjuncts:
            pair = _equi_pair(conjunct, left_columns, right_columns)
            if pair is not None and join.join_type is JoinType.INNER:
                join.left_keys.append(pair[0])
                join.right_keys.append(pair[1])
                continue
            refs = conjunct.references()
            if refs and refs <= left_columns:
                to_left.append(conjunct)
            elif (
                refs
                and refs <= right_columns
                and join.join_type is JoinType.INNER
            ):
                to_right.append(conjunct)
            else:
                remaining.append(conjunct)
        if to_left:
            leftover = self._push_conjuncts(join.left, to_left)
            if leftover:
                join.left = Filter(join.left, and_all(leftover))
        if to_right:
            leftover = self._push_conjuncts(join.right, to_right)
            if leftover:
                join.right = Filter(join.right, and_all(leftover))
        return remaining

    def _absorb_into_scan(self, scan: Scan, conjunct: bound.BoundExpr) -> None:
        """Fold a conjunct into the scan: zone-map range + residual filter.

        The range is only a row-group pruning hint; the conjunct always
        also joins the residual so row-level semantics are exact.
        """
        range_hint = _range_hint(conjunct)
        if range_hint is not None:
            qualified, low, high = range_hint
            base = self._base_column(scan, qualified)
            if base is not None:
                current = scan.ranges.get(base, (None, None))
                scan.ranges[base] = _intersect_range(current, (low, high))
        scan.residual = (
            conjunct
            if scan.residual is None
            else bound.BoundLogical.bind("and", scan.residual, conjunct)
        )

    @staticmethod
    def _base_column(scan: Scan, qualified: str) -> str | None:
        for out_name, base_name in scan.columns:
            if out_name == qualified:
                return base_name
        return None

    # -- pass 3: build-side swap --------------------------------------------------

    def _swap_build_sides(self, node: PlanNode) -> PlanNode:
        if isinstance(node, UnionAllPlan):
            node.inputs = [self._swap_build_sides(c) for c in node.inputs]
            return node
        for attr in ("input", "left", "right"):
            child = getattr(node, attr, None)
            if isinstance(child, PlanNode):
                setattr(node, attr, self._swap_build_sides(child))
        if (
            isinstance(node, HashJoin)
            and node.join_type is JoinType.INNER
            and estimate_rows(node.right) > estimate_rows(node.left)
        ):
            node.left, node.right = node.right, node.left
            node.left_keys, node.right_keys = node.right_keys, node.left_keys
        return node

    # -- pass 4: Sort+Limit fusion ---------------------------------------------------

    def _fuse_top_n(self, node: PlanNode) -> PlanNode:
        if isinstance(node, UnionAllPlan):
            node.inputs = [self._fuse_top_n(c) for c in node.inputs]
            return node
        for attr in ("input", "left", "right"):
            child = getattr(node, attr, None)
            if isinstance(child, PlanNode):
                setattr(node, attr, self._fuse_top_n(child))
        if isinstance(node, Limit) and node.limit is not None:
            if isinstance(node.input, Sort):
                return TopN(
                    input=node.input.input,
                    keys=node.input.keys,
                    limit=node.limit,
                    offset=node.offset,
                )
            # The planner drops ``__sort_N`` helper columns with a Project
            # right above the Sort; a row-wise Project preserves order and
            # cardinality, so the fusion commutes through it.
            if isinstance(node.input, Project) and isinstance(
                node.input.input, Sort
            ):
                project = node.input
                sort = project.input
                project.input = TopN(
                    input=sort.input,
                    keys=sort.keys,
                    limit=node.limit,
                    offset=node.offset,
                )
                return project
        return node

    # -- pass 5: projection pruning ------------------------------------------------

    def _prune_projections(
        self, node: PlanNode, required: set[str] | None
    ) -> None:
        """``required=None`` means "all outputs are needed" (the root)."""
        if isinstance(node, Scan):
            if required is not None:
                if node.residual is not None:
                    required = required | node.residual.references()
                kept = [
                    (out, base) for out, base in node.columns if out in required
                ]
                if not kept:  # keep one column so row counts survive
                    kept = node.columns[:1]
                node.columns = kept
            return
        if isinstance(node, MaterializedView):
            return
        if isinstance(node, UnionAllPlan):
            # Branch outputs align positionally: every column is required.
            for child in node.inputs:
                self._prune_projections(child, None)
            return
        if isinstance(node, Project):
            child_required: set[str] = set()
            for _, expr in node.exprs:
                child_required |= expr.references()
            self._prune_projections(node.input, child_required)
            return
        if isinstance(node, Filter):
            child_required = (
                None
                if required is None
                else required | node.predicate.references()
            )
            self._prune_projections(node.input, child_required)
            return
        if isinstance(node, HashJoin):
            left_columns = {name for name, _ in node.left.output_schema()}
            right_columns = {name for name, _ in node.right.output_schema()}
            needed = set() if required is None else set(required)
            needed |= set(node.left_keys) | set(node.right_keys)
            if node.residual is not None:
                needed |= node.residual.references()
            left_required = None if required is None else needed & left_columns
            right_required = None if required is None else needed & right_columns
            self._prune_projections(node.left, left_required)
            self._prune_projections(node.right, right_required)
            return
        if isinstance(node, Aggregate):
            child_required = set(node.group_keys) | {
                spec.input_column
                for spec in node.aggregates
                if spec.input_column is not None
            }
            self._prune_projections(node.input, child_required)
            return
        if isinstance(node, (Sort, TopN)):
            child_required = (
                None
                if required is None
                else required | {key.column for key in node.keys}
            )
            self._prune_projections(node.input, child_required)
            return
        if isinstance(node, (Limit, Distinct)):
            self._prune_projections(node.input, required)
            return
        for child in node.children():  # pragma: no cover - future node types
            self._prune_projections(child, None)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def split_conjuncts(expr: bound.BoundExpr) -> list[bound.BoundExpr]:
    """Flatten a BoundLogical AND tree into conjuncts."""
    if isinstance(expr, bound.BoundLogical) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def and_all(conjuncts: list[bound.BoundExpr]) -> bound.BoundExpr:
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = bound.BoundLogical.bind("and", result, conjunct)
    return result


def _equi_pair(
    conjunct: bound.BoundExpr,
    left_columns: set[str],
    right_columns: set[str],
) -> tuple[str, str] | None:
    if not (
        isinstance(conjunct, bound.BoundComparison)
        and conjunct.op == "="
        and isinstance(conjunct.left, bound.BoundColumn)
        and isinstance(conjunct.right, bound.BoundColumn)
    ):
        return None
    a, b = conjunct.left.name, conjunct.right.name
    if a in left_columns and b in right_columns:
        return a, b
    if b in left_columns and a in right_columns:
        return b, a
    return None


def _range_hint(
    conjunct: bound.BoundExpr,
) -> tuple[str, object | None, object | None] | None:
    """Extract a (qualified column, low, high) zone-map hint, if any."""
    if not isinstance(conjunct, bound.BoundComparison):
        return None
    if conjunct.op not in RANGE_OPS:
        return None
    column, literal, op = None, None, conjunct.op
    if isinstance(conjunct.left, bound.BoundColumn) and isinstance(
        conjunct.right, bound.BoundLiteral
    ):
        column, literal = conjunct.left, conjunct.right
    elif isinstance(conjunct.right, bound.BoundColumn) and isinstance(
        conjunct.left, bound.BoundLiteral
    ):
        column, literal = conjunct.right, conjunct.left
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}[op]
    if column is None or literal is None or literal.value is None:
        return None
    value = literal.value
    if op == "=":
        return column.name, value, value
    if op in ("<", "<="):
        return column.name, None, value
    return column.name, value, None


def _intersect_range(
    a: tuple[object | None, object | None],
    b: tuple[object | None, object | None],
) -> tuple[object | None, object | None]:
    low_a, high_a = a
    low_b, high_b = b
    low = low_b if low_a is None else (low_a if low_b is None else max(low_a, low_b))  # type: ignore[type-var]
    high = (
        high_b if high_a is None else (high_a if high_b is None else min(high_a, high_b))  # type: ignore[type-var]
    )
    return low, high


def estimate_rows(node: PlanNode) -> float:
    """Crude cardinality estimate used for build-side selection."""
    if isinstance(node, Scan):
        return float(max(node.table.row_count, 1))
    if isinstance(node, MaterializedView):
        data = node.data
        return float(getattr(data, "num_rows", 1) or 1)
    if isinstance(node, Filter):
        return estimate_rows(node.input) / 3.0
    if isinstance(node, HashJoin):
        return max(estimate_rows(node.left), estimate_rows(node.right))
    if isinstance(node, Aggregate):
        return max(estimate_rows(node.input) ** 0.5, 1.0)
    if isinstance(node, Limit) and node.limit is not None:
        return float(min(node.limit, estimate_rows(node.input)))
    if isinstance(node, TopN):
        return float(min(node.limit, estimate_rows(node.input)))
    children = node.children()
    if not children:
        return 1.0
    return estimate_rows(children[0])
