"""The physical operator layer: a Volcano-style vectorized pipeline.

Every logical plan node lowers to exactly one :class:`PhysicalOperator`
with the classic ``open() / next_batch() / close()`` interface, pulling
:class:`~repro.engine.batch.RecordBatch` slices of at most ``batch_size``
rows.  Operators come in two kinds:

* **streaming** (Scan, Filter, Project, Limit, MaterializedView): one
  batch in, at most one batch out, nothing retained between calls — peak
  memory is bounded by the batch size.  Because the model is pull-based,
  LIMIT early-exit is structural: once a Limit stops pulling, the scan
  below it never fetches the remaining row groups, so a ``LIMIT 10`` over
  a billion-row table reads (and bills) only the leading row groups.
* **blocking** (Sort, TopN, Aggregate, Distinct, HashJoin, UnionAll):
  pipeline breakers that must see their whole input.  They drain their
  children, run the existing vectorized kernels from
  :mod:`repro.engine.physical` as sinks, and re-stream the result in
  batches — so a pipeline *above* a breaker is streaming again.

Operator timing is **virtual**: a deterministic per-operator cost derived
from the rows/bytes/batches it processed (the same modelling approach the
Turbo cost model uses for venues), never the wall clock.  EXPLAIN ANALYZE
output is therefore byte-reproducible across runs and machines, which the
deterministic-trace tests rely on.
"""

from __future__ import annotations

import time
from typing import Iterator

from repro.errors import ExecutionError
from repro.engine.batch import BatchStream, RecordBatch
from repro.engine.expr import mask_from_predicate
from repro.engine.physical import (
    execute_aggregate,
    execute_distinct,
    execute_hash_join,
    execute_limit,
    execute_semi_anti_join,
    execute_sort,
    execute_top_n,
    execute_union_all,
    join_tables,
)
from repro.engine.plan import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    JoinType,
    Limit,
    MaterializedView,
    PlanNode,
    Project,
    Scan,
    Sort,
    TopN,
    UnionAllPlan,
)
from repro.engine.source import DataSource, iter_source_batches
from repro.storage.table import TableData
from repro.storage.types import ColumnVector

# Virtual-time rates for per-operator EXPLAIN ANALYZE timing.  Aligned
# with the VM tier's modelled throughput (200 MB/s scan, 4M rows/s) so the
# numbers read like a plausible single-worker profile, but their real job
# is determinism: identical plans over identical data always produce
# identical timings.
VIRTUAL_SECONDS_PER_ROW = 2.5e-7
VIRTUAL_SECONDS_PER_SCANNED_BYTE = 5e-9
VIRTUAL_SECONDS_PER_BATCH = 1e-6

_SCAN_COUNTERS = (
    "bytes_scanned",
    "get_requests",
    "footer_gets",
    "chunk_gets",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "row_groups_skipped",
)


class PhysicalOperator:
    """Base class: an executable counterpart of one logical plan node.

    Subclasses implement :meth:`next_batch`; the base class manages the
    child lifecycle and the per-operator accounting every operator shares
    (rows in/out, batches emitted, peak materialized bytes, and — for
    scans — the storage-side counters).
    """

    def __init__(self, node: PlanNode, children: "list[PhysicalOperator]") -> None:
        self.node = node
        self.children = children
        self.rows_in = 0
        self.rows_out = 0
        self.batches_out = 0
        self.peak_bytes = 0
        # Inclusive wall-clock seconds spent in next_batch (self + children),
        # populated only when enable_wall_clock() wrapped this operator.
        self.wall_seconds = 0.0
        self.scan_counters = dict.fromkeys(_SCAN_COUNTERS, 0)

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> None:
        for child in self.children:
            child.open()

    def next_batch(self) -> RecordBatch | None:
        raise NotImplementedError  # pragma: no cover

    def close(self) -> None:
        for child in self.children:
            child.close()

    # -- accounting --------------------------------------------------------

    def _emit(self, batch: RecordBatch) -> RecordBatch:
        self.rows_out += batch.num_rows
        self.batches_out += 1
        self.peak_bytes = max(self.peak_bytes, batch.approx_nbytes())
        return batch

    def _pull(self, child: "PhysicalOperator") -> RecordBatch | None:
        batch = child.next_batch()
        if batch is not None:
            self.rows_in += batch.num_rows
        return batch

    def own_virtual_seconds(self) -> float:
        """Deterministic modelled execution time of this operator alone."""
        return (
            (self.rows_in + self.rows_out) * VIRTUAL_SECONDS_PER_ROW
            + self.scan_counters["bytes_scanned"] * VIRTUAL_SECONDS_PER_SCANNED_BYTE
            + self.batches_out * VIRTUAL_SECONDS_PER_BATCH
        )

    def count_operators(self) -> int:
        return 1 + sum(child.count_operators() for child in self.children)

    # -- helpers for blocking subclasses ------------------------------------

    def _drain_child(self, child: "PhysicalOperator") -> TableData:
        """Materialize a child's full output (the pipeline-breaker move)."""
        pieces: list[TableData] = []
        while True:
            batch = self._pull(child)
            if batch is None:
                break
            pieces.append(batch.data)
        if not pieces:
            return TableData.empty(child.node.output_schema())
        return TableData.concat_all(pieces)


class ScanOperator(PhysicalOperator):
    """Leaf: stream a table scan, one source granule at a time.

    Granules arrive at the source's natural fetch unit (a row group for
    object-store scans) and are re-sliced into record batches.  The
    granule iterator is advanced lazily, so a consumer that stops pulling
    ends the scan with the remaining row groups unfetched — the early-exit
    half of the billing story (§3.2: pay for bytes actually scanned).
    """

    def __init__(
        self, node: Scan, source: DataSource, stats, batch_size: int
    ) -> None:
        super().__init__(node, [])
        self._source = source
        self._stats = stats
        self._batch_size = batch_size
        self._granules: Iterator | None = None
        self._slices: Iterator[RecordBatch] | None = None

    def open(self) -> None:
        self._granules = iter_source_batches(self._source, self.node)

    def next_batch(self) -> RecordBatch | None:
        assert self._granules is not None, "operator not opened"
        while True:
            if self._slices is not None:
                batch = next(self._slices, None)
                if batch is not None:
                    return self._emit(batch)
                self._slices = None
            granule = next(self._granules, None)
            if granule is None:
                return None
            self._account(granule)
            data = granule.data
            node = self.node
            if node.residual is not None and data.num_rows:
                mask = mask_from_predicate(node.residual.evaluate(data))
                data = data.filter(mask)
            self._slices = RecordBatch.slices(data, self._batch_size)

    def _account(self, granule) -> None:
        self.rows_in += granule.data.num_rows
        stats = self._stats
        stats.bytes_scanned += granule.bytes_scanned
        stats.scan_latency_s += granule.latency_s
        stats.rows_scanned += granule.data.num_rows
        stats.get_requests += granule.get_requests
        stats.cache_hits += granule.cache_hits
        stats.cache_misses += granule.cache_misses
        stats.cache_evictions += granule.cache_evictions
        stats.row_groups_skipped += granule.row_groups_skipped
        counters = self.scan_counters
        counters["bytes_scanned"] += granule.bytes_scanned
        counters["get_requests"] += granule.get_requests
        counters["footer_gets"] += granule.footer_gets
        counters["chunk_gets"] += granule.chunk_gets
        counters["cache_hits"] += granule.cache_hits
        counters["cache_misses"] += granule.cache_misses
        counters["cache_evictions"] += granule.cache_evictions
        counters["row_groups_skipped"] += granule.row_groups_skipped

    def close(self) -> None:
        if self._granules is not None:
            closer = getattr(self._granules, "close", None)
            if closer is not None:
                closer()
            self._granules = None
        self._slices = None


class ViewOperator(PhysicalOperator):
    """Leaf serving a MaterializedView: a whole table (re-sliced) or an
    attached :class:`~repro.engine.batch.BatchStream` pulled incrementally
    (how the Turbo coordinator merges CF fragment results)."""

    def __init__(self, node: MaterializedView, batch_size: int) -> None:
        super().__init__(node, [])
        self._batch_size = batch_size
        self._slices: Iterator[RecordBatch] | None = None
        self._stream: BatchStream | None = None
        self._table_done = False

    def open(self) -> None:
        data = self.node.data
        if isinstance(data, BatchStream):
            self._stream = data
        elif isinstance(data, TableData):
            self._slices = RecordBatch.slices(data, self._batch_size)
        else:
            raise ExecutionError(
                f"materialized view {self.node.name!r} has no data attached"
            )

    def next_batch(self) -> RecordBatch | None:
        while True:
            if self._slices is not None:
                batch = next(self._slices, None)
                if batch is not None:
                    self.rows_in += batch.num_rows
                    return self._emit(batch)
                self._slices = None
                if self._stream is None:
                    return None
            elif self._stream is None:
                return None
            piece = self._stream.next_table()
            if piece is None:
                return None
            self._slices = RecordBatch.slices(piece, self._batch_size)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
        self._slices = None


class FilterOperator(PhysicalOperator):
    def next_batch(self) -> RecordBatch | None:
        (child,) = self.children
        while True:
            batch = self._pull(child)
            if batch is None:
                return None
            if batch.num_rows == 0:
                continue
            mask = mask_from_predicate(self.node.predicate.evaluate(batch.data))
            filtered = batch.data.filter(mask)
            if filtered.num_rows == 0:
                continue
            return self._emit(RecordBatch(filtered))


class ProjectOperator(PhysicalOperator):
    def next_batch(self) -> RecordBatch | None:
        (child,) = self.children
        batch = self._pull(child)
        if batch is None:
            return None
        columns: dict[str, ColumnVector] = {}
        for name, expr in self.node.exprs:
            columns[name] = expr.evaluate(batch.data)
        return self._emit(RecordBatch(TableData(columns)))


class LimitOperator(PhysicalOperator):
    """Streaming OFFSET/LIMIT with early exit.

    Once the limit is satisfied the operator never pulls its child again —
    in a pull pipeline that *is* the stop signal: every operator below,
    down to the object-store scan, simply stops being asked for work.
    """

    def __init__(self, node: Limit, children: list[PhysicalOperator]) -> None:
        super().__init__(node, children)
        self._to_skip = node.offset
        self._remaining = node.limit  # None = unbounded
        self._done = False

    def next_batch(self) -> RecordBatch | None:
        if self._done:
            return None
        (child,) = self.children
        while True:
            batch = self._pull(child)
            if batch is None:
                self._done = True
                return None
            data = batch.data
            if self._to_skip:
                skip = min(self._to_skip, data.num_rows)
                self._to_skip -= skip
                data = data.slice(skip, data.num_rows)
            if data.num_rows == 0:
                continue
            if self._remaining is not None:
                take = min(self._remaining, data.num_rows)
                self._remaining -= take
                if take < data.num_rows:
                    data = data.slice(0, take)
                if self._remaining == 0:
                    self._done = True
            return self._emit(RecordBatch(data))


class BlockingOperator(PhysicalOperator):
    """Base for pipeline breakers: drain inputs, run a sink kernel once,
    re-stream the result."""

    def __init__(
        self, node: PlanNode, children: list[PhysicalOperator], batch_size: int
    ) -> None:
        super().__init__(node, children)
        self._batch_size = batch_size
        self._slices: Iterator[RecordBatch] | None = None
        self._computed = False

    def _compute(self) -> TableData:
        raise NotImplementedError  # pragma: no cover

    def next_batch(self) -> RecordBatch | None:
        if not self._computed:
            result = self._compute()
            self._computed = True
            # Peak memory of a breaker is its materialized result (the
            # drained inputs were already released batch by batch).
            from repro.engine.batch import approx_table_nbytes

            self.peak_bytes = max(self.peak_bytes, approx_table_nbytes(result))
            self._slices = RecordBatch.slices(result, self._batch_size)
        assert self._slices is not None
        batch = next(self._slices, None)
        if batch is None:
            return None
        return self._emit(batch)


class SortOperator(BlockingOperator):
    def _compute(self) -> TableData:
        table = self._drain_child(self.children[0])
        return execute_sort(
            table, [(key.column, key.ascending) for key in self.node.keys]
        )


class TopNOperator(BlockingOperator):
    def _compute(self) -> TableData:
        table = self._drain_child(self.children[0])
        return execute_top_n(
            table,
            [(key.column, key.ascending) for key in self.node.keys],
            self.node.limit,
            self.node.offset,
        )


class AggregateOperator(BlockingOperator):
    def _compute(self) -> TableData:
        table = self._drain_child(self.children[0])
        return execute_aggregate(table, self.node.group_keys, self.node.aggregates)


class DistinctOperator(BlockingOperator):
    def _compute(self) -> TableData:
        return execute_distinct(self._drain_child(self.children[0]))


class HashJoinOperator(BlockingOperator):
    def _compute(self) -> TableData:
        node = self.node
        left = self._drain_child(self.children[0])
        right = self._drain_child(self.children[1])
        if node.join_type in (JoinType.SEMI, JoinType.ANTI):
            return execute_semi_anti_join(
                left, right, node.left_keys, node.right_keys,
                anti=node.join_type is JoinType.ANTI,
            )
        left_indices, right_indices = execute_hash_join(
            left, right, node.left_keys, node.right_keys,
            node.join_type is JoinType.LEFT,
        )
        return join_tables(
            left, right, left_indices, right_indices,
            node.join_type is JoinType.LEFT, node.residual,
        )


class UnionAllOperator(BlockingOperator):
    def _compute(self) -> TableData:
        return execute_union_all(
            [self._drain_child(child) for child in self.children],
            self.node.output_schema(),
        )


def enable_wall_clock(root: PhysicalOperator) -> None:
    """Opt-in wall-clock profiling of the real numpy kernels.

    Wraps every operator's ``next_batch`` so the *inclusive* time spent in
    it (self plus everything it pulled from children) accumulates into
    ``wall_seconds`` via ``time.perf_counter``.  The profiler later derives
    self time as inclusive minus the children's inclusive.  This is the
    one deliberately non-deterministic measurement in the engine: it never
    feeds EXPLAIN ANALYZE, billing, or the byte-reproducible exports —
    only the opt-in wall-clock flame graph.
    """

    def instrument(op: PhysicalOperator) -> None:
        inner = op.next_batch

        def timed_next_batch() -> RecordBatch | None:
            start = time.perf_counter()
            try:
                return inner()
            finally:
                op.wall_seconds += time.perf_counter() - start

        op.next_batch = timed_next_batch  # type: ignore[method-assign]
        for child in op.children:
            instrument(child)

    instrument(root)


def build_pipeline(
    plan: PlanNode, source: DataSource, stats, batch_size: int
) -> PhysicalOperator:
    """Lower a logical plan into its physical operator tree.

    The tree mirrors the plan node for node (EXPLAIN ANALYZE relies on
    this to zip the two trees).  Pipelines break exactly at the blocking
    operators; everything between two breaks streams in ``batch_size``
    batches.  ``stats`` is the shared :class:`~repro.engine.executor
    .QueryStats` the scan leaves account into as they fetch.
    """
    if isinstance(plan, Scan):
        return ScanOperator(plan, source, stats, batch_size)
    if isinstance(plan, MaterializedView):
        return ViewOperator(plan, batch_size)
    if isinstance(plan, Filter):
        return FilterOperator(
            plan, [build_pipeline(plan.input, source, stats, batch_size)]
        )
    if isinstance(plan, Project):
        return ProjectOperator(
            plan, [build_pipeline(plan.input, source, stats, batch_size)]
        )
    if isinstance(plan, Limit):
        return LimitOperator(
            plan, [build_pipeline(plan.input, source, stats, batch_size)]
        )
    if isinstance(plan, Sort):
        return SortOperator(
            plan, [build_pipeline(plan.input, source, stats, batch_size)], batch_size
        )
    if isinstance(plan, TopN):
        return TopNOperator(
            plan, [build_pipeline(plan.input, source, stats, batch_size)], batch_size
        )
    if isinstance(plan, Aggregate):
        return AggregateOperator(
            plan, [build_pipeline(plan.input, source, stats, batch_size)], batch_size
        )
    if isinstance(plan, Distinct):
        return DistinctOperator(
            plan, [build_pipeline(plan.input, source, stats, batch_size)], batch_size
        )
    if isinstance(plan, HashJoin):
        return HashJoinOperator(
            plan,
            [
                build_pipeline(plan.left, source, stats, batch_size),
                build_pipeline(plan.right, source, stats, batch_size),
            ],
            batch_size,
        )
    if isinstance(plan, UnionAllPlan):
        return UnionAllOperator(
            plan,
            [build_pipeline(child, source, stats, batch_size) for child in plan.inputs],
            batch_size,
        )
    raise ExecutionError(f"unknown plan node {type(plan).__name__}")
