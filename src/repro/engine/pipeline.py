"""The physical operator layer: a Volcano-style vectorized pipeline.

Every logical plan node lowers to exactly one :class:`PhysicalOperator`
with the classic ``open() / next_batch() / close()`` interface, pulling
:class:`~repro.engine.batch.RecordBatch` slices of at most ``batch_size``
rows.  Operators come in two kinds:

* **streaming** (Scan, Filter, Project, Limit, MaterializedView): one
  batch in, at most one batch out, nothing retained between calls — peak
  memory is bounded by the batch size.  Because the model is pull-based,
  LIMIT early-exit is structural: once a Limit stops pulling, the scan
  below it never fetches the remaining row groups, so a ``LIMIT 10`` over
  a billion-row table reads (and bills) only the leading row groups.
* **blocking** (Sort, TopN, Aggregate, Distinct, HashJoin, UnionAll):
  pipeline breakers that must see their whole input.  They drain their
  children, run the existing vectorized kernels from
  :mod:`repro.engine.physical` as sinks, and re-stream the result in
  batches — so a pipeline *above* a breaker is streaming again.

Operator timing is **virtual**: a deterministic per-operator cost derived
from the rows/bytes/batches it processed (the same modelling approach the
Turbo cost model uses for venues), never the wall clock.  EXPLAIN ANALYZE
output is therefore byte-reproducible across runs and machines, which the
deterministic-trace tests rely on.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator

from repro.errors import ExecutionError
from repro.engine.batch import BatchStream, RecordBatch
from repro.engine.expr import compile_expr, mask_from_predicate
from repro.engine.physical import (
    aggregate_supports_partial,
    execute_aggregate,
    execute_distinct,
    execute_hash_join,
    execute_limit,
    execute_semi_anti_join,
    execute_sort,
    execute_top_n,
    execute_union_all,
    final_aggregate,
    join_tables,
    partial_aggregate,
)
from repro.engine.plan import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    JoinType,
    Limit,
    MaterializedView,
    PlanNode,
    Project,
    Scan,
    Sort,
    TopN,
    UnionAllPlan,
)
from repro.engine.source import DataSource, SingleGranuleSource, iter_source_batches
from repro.storage.table import TableData
from repro.storage.types import ColumnVector

# Virtual-time rates for per-operator EXPLAIN ANALYZE timing.  Aligned
# with the VM tier's modelled throughput (200 MB/s scan, 4M rows/s) so the
# numbers read like a plausible single-worker profile, but their real job
# is determinism: identical plans over identical data always produce
# identical timings.
VIRTUAL_SECONDS_PER_ROW = 2.5e-7
VIRTUAL_SECONDS_PER_SCANNED_BYTE = 5e-9
VIRTUAL_SECONDS_PER_BATCH = 1e-6

_SCAN_COUNTERS = (
    "bytes_scanned",
    "get_requests",
    "footer_gets",
    "chunk_gets",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "row_groups_skipped",
)


class PhysicalOperator:
    """Base class: an executable counterpart of one logical plan node.

    Subclasses implement :meth:`next_batch`; the base class manages the
    child lifecycle and the per-operator accounting every operator shares
    (rows in/out, batches emitted, peak materialized bytes, and — for
    scans — the storage-side counters).
    """

    def __init__(self, node: PlanNode, children: "list[PhysicalOperator]") -> None:
        self.node = node
        self.children = children
        self.rows_in = 0
        self.rows_out = 0
        self.batches_out = 0
        self.peak_bytes = 0
        # Source granules processed (row groups for object-store scans).
        # Under the morsel driver each worker instance counts its single
        # morsel; accumulated counts equal the sequential granule count, so
        # the value is worker-count invariant.
        self.morsels = 0
        # Inclusive wall-clock seconds spent in next_batch (self + children),
        # populated only when enable_wall_clock() wrapped this operator.
        self.wall_seconds = 0.0
        self.scan_counters = dict.fromkeys(_SCAN_COUNTERS, 0)

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> None:
        for child in self.children:
            child.open()

    def next_batch(self) -> RecordBatch | None:
        raise NotImplementedError  # pragma: no cover

    def close(self) -> None:
        for child in self.children:
            child.close()

    # -- accounting --------------------------------------------------------

    def _emit(self, batch: RecordBatch) -> RecordBatch:
        self.rows_out += batch.num_rows
        self.batches_out += 1
        self.peak_bytes = max(self.peak_bytes, batch.approx_nbytes())
        return batch

    def _pull(self, child: "PhysicalOperator") -> RecordBatch | None:
        batch = child.next_batch()
        if batch is not None:
            self.rows_in += batch.num_rows
        return batch

    def own_virtual_seconds(self) -> float:
        """Deterministic modelled execution time of this operator alone."""
        return (
            (self.rows_in + self.rows_out) * VIRTUAL_SECONDS_PER_ROW
            + self.scan_counters["bytes_scanned"] * VIRTUAL_SECONDS_PER_SCANNED_BYTE
            + self.batches_out * VIRTUAL_SECONDS_PER_BATCH
        )

    def count_operators(self) -> int:
        return 1 + sum(child.count_operators() for child in self.children)

    # -- helpers for blocking subclasses ------------------------------------

    def _drain_child(self, child: "PhysicalOperator") -> TableData:
        """Materialize a child's full output (the pipeline-breaker move)."""
        pieces: list[TableData] = []
        while True:
            batch = self._pull(child)
            if batch is None:
                break
            pieces.append(batch.data)
        if not pieces:
            return TableData.empty(child.node.output_schema())
        return TableData.concat_all(pieces)


class ScanOperator(PhysicalOperator):
    """Leaf: stream a table scan, one source granule at a time.

    Granules arrive at the source's natural fetch unit (a row group for
    object-store scans) and are re-sliced into record batches.  The
    granule iterator is advanced lazily, so a consumer that stops pulling
    ends the scan with the remaining row groups unfetched — the early-exit
    half of the billing story (§3.2: pay for bytes actually scanned).
    """

    def __init__(
        self, node: Scan, source: DataSource, stats, batch_size: int
    ) -> None:
        super().__init__(node, [])
        self._source = source
        self._stats = stats
        self._batch_size = batch_size
        self._granules: Iterator | None = None
        self._slices: Iterator[RecordBatch] | None = None
        self._residual = (
            compile_expr(node.residual) if node.residual is not None else None
        )

    def open(self) -> None:
        self._granules = iter_source_batches(self._source, self.node)

    def next_batch(self) -> RecordBatch | None:
        assert self._granules is not None, "operator not opened"
        while True:
            if self._slices is not None:
                batch = next(self._slices, None)
                if batch is not None:
                    return self._emit(batch)
                self._slices = None
            granule = next(self._granules, None)
            if granule is None:
                return None
            self._account(granule)
            data = granule.data
            if self._residual is not None and data.num_rows:
                mask = mask_from_predicate(self._residual(data))
                data = data.filter(mask)
            self._slices = RecordBatch.slices(data, self._batch_size)

    def _account(self, granule) -> None:
        self.rows_in += granule.data.num_rows
        self.morsels += 1
        stats = self._stats
        stats.bytes_scanned += granule.bytes_scanned
        stats.scan_latency_s += granule.latency_s
        stats.rows_scanned += granule.data.num_rows
        stats.get_requests += granule.get_requests
        stats.footer_gets += granule.footer_gets
        stats.chunk_gets += granule.chunk_gets
        stats.cache_hits += granule.cache_hits
        stats.cache_misses += granule.cache_misses
        stats.cache_evictions += granule.cache_evictions
        stats.row_groups_skipped += granule.row_groups_skipped
        counters = self.scan_counters
        counters["bytes_scanned"] += granule.bytes_scanned
        counters["get_requests"] += granule.get_requests
        counters["footer_gets"] += granule.footer_gets
        counters["chunk_gets"] += granule.chunk_gets
        counters["cache_hits"] += granule.cache_hits
        counters["cache_misses"] += granule.cache_misses
        counters["cache_evictions"] += granule.cache_evictions
        counters["row_groups_skipped"] += granule.row_groups_skipped

    def close(self) -> None:
        if self._granules is not None:
            closer = getattr(self._granules, "close", None)
            if closer is not None:
                closer()
            self._granules = None
        self._slices = None


class ViewOperator(PhysicalOperator):
    """Leaf serving a MaterializedView: a whole table (re-sliced) or an
    attached :class:`~repro.engine.batch.BatchStream` pulled incrementally
    (how the Turbo coordinator merges CF fragment results)."""

    def __init__(self, node: MaterializedView, batch_size: int) -> None:
        super().__init__(node, [])
        self._batch_size = batch_size
        self._slices: Iterator[RecordBatch] | None = None
        self._stream: BatchStream | None = None
        self._table_done = False

    def open(self) -> None:
        data = self.node.data
        if isinstance(data, BatchStream):
            self._stream = data
        elif isinstance(data, TableData):
            self.morsels += 1
            self._slices = RecordBatch.slices(data, self._batch_size)
        else:
            raise ExecutionError(
                f"materialized view {self.node.name!r} has no data attached"
            )

    def next_batch(self) -> RecordBatch | None:
        while True:
            if self._slices is not None:
                batch = next(self._slices, None)
                if batch is not None:
                    self.rows_in += batch.num_rows
                    return self._emit(batch)
                self._slices = None
                if self._stream is None:
                    return None
            elif self._stream is None:
                return None
            piece = self._stream.next_table()
            if piece is None:
                return None
            self.morsels += 1
            self._slices = RecordBatch.slices(piece, self._batch_size)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
        self._slices = None


class FilterOperator(PhysicalOperator):
    def __init__(self, node: Filter, children: list[PhysicalOperator]) -> None:
        super().__init__(node, children)
        # One fused kernel per operator instance: the whole predicate tree
        # collapses to a single compiled closure, so per-batch dispatch is
        # one Python call instead of one per expression node.
        self._predicate = compile_expr(node.predicate)

    def next_batch(self) -> RecordBatch | None:
        (child,) = self.children
        while True:
            batch = self._pull(child)
            if batch is None:
                return None
            if batch.num_rows == 0:
                continue
            mask = mask_from_predicate(self._predicate(batch.data))
            filtered = batch.data.filter(mask)
            if filtered.num_rows == 0:
                continue
            return self._emit(RecordBatch(filtered))


class ProjectOperator(PhysicalOperator):
    def __init__(self, node: Project, children: list[PhysicalOperator]) -> None:
        super().__init__(node, children)
        self._exprs = [
            (name, compile_expr(expr)) for name, expr in node.exprs
        ]

    def next_batch(self) -> RecordBatch | None:
        (child,) = self.children
        batch = self._pull(child)
        if batch is None:
            return None
        columns: dict[str, ColumnVector] = {}
        for name, kernel in self._exprs:
            columns[name] = kernel(batch.data)
        return self._emit(RecordBatch(TableData(columns)))


class LimitOperator(PhysicalOperator):
    """Streaming OFFSET/LIMIT with early exit.

    Once the limit is satisfied the operator never pulls its child again —
    in a pull pipeline that *is* the stop signal: every operator below,
    down to the object-store scan, simply stops being asked for work.
    """

    def __init__(self, node: Limit, children: list[PhysicalOperator]) -> None:
        super().__init__(node, children)
        self._to_skip = node.offset
        self._remaining = node.limit  # None = unbounded
        self._done = False

    def next_batch(self) -> RecordBatch | None:
        if self._done:
            return None
        (child,) = self.children
        while True:
            batch = self._pull(child)
            if batch is None:
                self._done = True
                return None
            data = batch.data
            if self._to_skip:
                skip = min(self._to_skip, data.num_rows)
                self._to_skip -= skip
                data = data.slice(skip, data.num_rows)
            if data.num_rows == 0:
                continue
            if self._remaining is not None:
                take = min(self._remaining, data.num_rows)
                self._remaining -= take
                if take < data.num_rows:
                    data = data.slice(0, take)
                if self._remaining == 0:
                    self._done = True
            return self._emit(RecordBatch(data))


#: Plan-node names whose physical operators are pipeline breakers (the
#: :class:`BlockingOperator` subclasses below).  Profile nodes carry the
#: plan-node class name, so live progress reporting keys on this set to
#: decide which operators report a phase instead of a smooth fraction.
BLOCKING_PLAN_NODES = frozenset(
    {"Sort", "TopN", "Aggregate", "Distinct", "HashJoin", "UnionAllPlan"}
)


class BlockingOperator(PhysicalOperator):
    """Base for pipeline breakers: drain inputs, run a sink kernel once,
    re-stream the result."""

    def __init__(
        self, node: PlanNode, children: list[PhysicalOperator], batch_size: int
    ) -> None:
        super().__init__(node, children)
        self._batch_size = batch_size
        self._slices: Iterator[RecordBatch] | None = None
        self._computed = False

    def _compute(self) -> TableData:
        raise NotImplementedError  # pragma: no cover

    def next_batch(self) -> RecordBatch | None:
        if not self._computed:
            result = self._compute()
            self._computed = True
            # Peak memory of a breaker is its materialized result (the
            # drained inputs were already released batch by batch).
            from repro.engine.batch import approx_table_nbytes

            self.peak_bytes = max(self.peak_bytes, approx_table_nbytes(result))
            self._slices = RecordBatch.slices(result, self._batch_size)
        assert self._slices is not None
        batch = next(self._slices, None)
        if batch is None:
            return None
        return self._emit(batch)


class SortOperator(BlockingOperator):
    def _compute(self) -> TableData:
        table = self._drain_child(self.children[0])
        return execute_sort(
            table, [(key.column, key.ascending) for key in self.node.keys]
        )


class TopNOperator(BlockingOperator):
    def _compute(self) -> TableData:
        table = self._drain_child(self.children[0])
        return execute_top_n(
            table,
            [(key.column, key.ascending) for key in self.node.keys],
            self.node.limit,
            self.node.offset,
        )


class AggregateOperator(BlockingOperator):
    def _compute(self) -> TableData:
        table = self._drain_child(self.children[0])
        return execute_aggregate(table, self.node.group_keys, self.node.aggregates)


class DistinctOperator(BlockingOperator):
    def _compute(self) -> TableData:
        return execute_distinct(self._drain_child(self.children[0]))


class HashJoinOperator(BlockingOperator):
    def _compute(self) -> TableData:
        node = self.node
        left = self._drain_child(self.children[0])
        right = self._drain_child(self.children[1])
        if node.join_type in (JoinType.SEMI, JoinType.ANTI):
            return execute_semi_anti_join(
                left, right, node.left_keys, node.right_keys,
                anti=node.join_type is JoinType.ANTI,
            )
        left_indices, right_indices = execute_hash_join(
            left, right, node.left_keys, node.right_keys,
            node.join_type is JoinType.LEFT,
        )
        return join_tables(
            left, right, left_indices, right_indices,
            node.join_type is JoinType.LEFT, node.residual,
        )


class UnionAllOperator(BlockingOperator):
    def _compute(self) -> TableData:
        return execute_union_all(
            [self._drain_child(child) for child in self.children],
            self.node.output_schema(),
        )


# ---------------------------------------------------------------------------
# Morsel-driven parallel execution
# ---------------------------------------------------------------------------


class _LocalScanStats:
    """Private scan-stat sink for one morsel's pipeline instance.

    Mirrors exactly the fields :meth:`ScanOperator._account` touches on the
    shared query stats; the exchange merges these into the real stats in
    morsel order after the barrier, so totals equal the sequential run's.
    """

    def __init__(self) -> None:
        self.bytes_scanned = 0
        self.scan_latency_s = 0.0
        self.rows_scanned = 0
        self.get_requests = 0
        self.footer_gets = 0
        self.chunk_gets = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self.row_groups_skipped = 0


class ExchangeOperator(PhysicalOperator):
    """Runs a streaming segment (Filter/Project chain over a Scan) as
    parallel per-morsel pipeline instances and re-emits their output in
    morsel order.

    Determinism is the contract: results, billed bytes, and per-operator
    counters are invariant to the worker count because

    * morsels are enumerated in file/row-group order and results are
      gathered with ``pool.map`` (order-preserving);
    * each worker reads through a private
      :class:`~repro.storage.object_store.StoreView` whose metrics are
      merged into the shared store in morsel order after the barrier;
    * per-operator counters are integer sums over per-morsel instances, and
      virtual time is linear in those integers, so the accumulated profile
      is bit-identical to the sequential one.

    The operator *impersonates* the segment root in the profile tree: its
    ``node`` is the segment's root plan node and its ``children`` are the
    children of a never-executed "accumulator" operator chain built over the
    same segment, into which worker-instance counters are folded.  EXPLAIN
    ANALYZE therefore sees the exact plan-shaped tree it would see
    sequentially.
    """

    def __init__(
        self,
        segment_plan: PlanNode,
        scan_node: Scan,
        source: DataSource,
        stats,
        batch_size: int,
        workers: int,
    ) -> None:
        # Building the chain has no side effects; it exists only to hold
        # accumulated counters in plan-tree shape.
        accumulator = build_pipeline(segment_plan, source, stats, batch_size)
        super().__init__(segment_plan, accumulator.children)
        self._accumulator = accumulator
        self._segment_plan = segment_plan
        self._scan_node = scan_node
        self._source = source
        self._stats = stats
        self._batch_size = batch_size
        self._workers = workers
        # Set by build_pipeline for partial->final breakers: maps a worker's
        # segment output to its partial table (e.g. partial aggregates).
        self.partial_fn: Callable[[TableData], TableData] | None = None
        # Set by enable_wall_clock so worker instances also self-instrument.
        self.wall_clock_workers = False
        self._batches: Iterator[RecordBatch] | None = None
        self._started = False

    def open(self) -> None:
        # The accumulator chain never executes; nothing to open.
        pass

    def close(self) -> None:
        self._batches = None

    def next_batch(self) -> RecordBatch | None:
        if not self._started:
            self._started = True
            self._run()
        assert self._batches is not None
        # No _emit: rows_out/batches_out were adopted from the accumulated
        # worker counters, which already equal the sequential values.
        return next(self._batches, None)

    def _run(self) -> None:
        morsels = self._source.morsel_granules(self._scan_node)
        if morsels:
            with ThreadPoolExecutor(max_workers=self._workers) as pool:
                results = list(pool.map(self._run_morsel, morsels))
        else:
            results = []
        views = []
        output: list[RecordBatch] = []
        for root, batches, local, view in results:
            self._merge_local_stats(local)
            views.append(view)
            self._accumulate(self._accumulator, root)
            output.extend(batches)
        self._source.merge_view_metrics(views)
        self._adopt_counters()
        self._batches = iter(output)

    def _run_morsel(self, morsel):
        view = self._source.store_view()
        granule = self._source.read_morsel(self._scan_node, morsel, view)
        local = _LocalScanStats()
        root = build_pipeline(
            self._segment_plan, SingleGranuleSource(granule), local, self._batch_size
        )
        if self.wall_clock_workers:
            enable_wall_clock(root)
        root.open()
        batches: list[RecordBatch] = []
        try:
            while True:
                batch = root.next_batch()
                if batch is None:
                    break
                batches.append(batch)
        finally:
            root.close()
        if self.partial_fn is not None:
            if batches:
                table = TableData.concat_all([b.data for b in batches])
                partial = self.partial_fn(table)
                batches = [RecordBatch(partial)] if partial.num_rows else []
            else:
                # Empty morsel output contributes nothing; the merge side
                # reconstructs the empty-input result if *all* are empty.
                batches = []
        return root, batches, local, view

    def _merge_local_stats(self, local: _LocalScanStats) -> None:
        stats = self._stats
        stats.bytes_scanned += local.bytes_scanned
        stats.scan_latency_s += local.scan_latency_s
        stats.rows_scanned += local.rows_scanned
        stats.get_requests += local.get_requests
        stats.footer_gets += local.footer_gets
        stats.chunk_gets += local.chunk_gets
        stats.cache_hits += local.cache_hits
        stats.cache_misses += local.cache_misses
        stats.cache_evictions += local.cache_evictions
        stats.row_groups_skipped += local.row_groups_skipped

    @staticmethod
    def _accumulate(acc: PhysicalOperator, worker: PhysicalOperator) -> None:
        acc.rows_in += worker.rows_in
        acc.rows_out += worker.rows_out
        acc.batches_out += worker.batches_out
        acc.morsels += worker.morsels
        acc.wall_seconds += worker.wall_seconds
        acc.peak_bytes = max(acc.peak_bytes, worker.peak_bytes)
        for key, value in worker.scan_counters.items():
            acc.scan_counters[key] += value
        for acc_child, worker_child in zip(acc.children, worker.children):
            ExchangeOperator._accumulate(acc_child, worker_child)

    def _adopt_counters(self) -> None:
        # Present the accumulated segment-root counters as this operator's
        # own, completing the impersonation.  wall_seconds is *not* adopted:
        # the instrumentation wrapper measured the real barrier elapsed
        # time, which is what shows the parallel speedup.
        acc = self._accumulator
        self.rows_in = acc.rows_in
        self.rows_out = acc.rows_out
        self.batches_out = acc.batches_out
        self.morsels = acc.morsels
        self.peak_bytes = acc.peak_bytes
        self.scan_counters = acc.scan_counters


class MergeOperator(PhysicalOperator):
    """Final phase of a parallel pipeline breaker.

    Concatenates the per-morsel partial tables emitted by its
    :class:`ExchangeOperator` child (in morsel order) and runs the final
    kernel once — e.g. merging partial aggregates, or re-selecting the
    global top N from per-morsel candidates.  It impersonates the breaker
    plan node, with counters matching the sequential breaker's exactly.
    """

    def __init__(
        self,
        node: PlanNode,
        exchange: ExchangeOperator,
        batch_size: int,
        final_fn: Callable[[TableData], TableData],
        empty_fn: Callable[[], TableData],
    ) -> None:
        super().__init__(node, [exchange])
        self._batch_size = batch_size
        self._final_fn = final_fn
        self._empty_fn = empty_fn
        self._slices: Iterator[RecordBatch] | None = None
        self._computed = False

    def next_batch(self) -> RecordBatch | None:
        if not self._computed:
            self._computed = True
            (exchange,) = self.children
            pieces: list[TableData] = []
            while True:
                # Direct next_batch, not _pull: partial-table rows are an
                # implementation detail and must not pollute rows_in.
                batch = exchange.next_batch()
                if batch is None:
                    break
                pieces.append(batch.data)
            if pieces:
                result = self._final_fn(TableData.concat_all(pieces))
            else:
                result = self._empty_fn()
            # rows_in mirrors the sequential breaker: the segment's rows
            # (the exchange adopted the segment root's rows_out).
            self.rows_in = exchange.rows_out
            from repro.engine.batch import approx_table_nbytes

            self.peak_bytes = max(self.peak_bytes, approx_table_nbytes(result))
            self._slices = RecordBatch.slices(result, self._batch_size)
        assert self._slices is not None
        batch = next(self._slices, None)
        if batch is None:
            return None
        return self._emit(batch)


def enable_wall_clock(root: PhysicalOperator) -> None:
    """Opt-in wall-clock profiling of the real numpy kernels.

    Wraps every operator's ``next_batch`` so the *inclusive* time spent in
    it (self plus everything it pulled from children) accumulates into
    ``wall_seconds`` via ``time.perf_counter``.  The profiler later derives
    self time as inclusive minus the children's inclusive.  This is the
    one deliberately non-deterministic measurement in the engine: it never
    feeds EXPLAIN ANALYZE, billing, or the byte-reproducible exports —
    only the opt-in wall-clock flame graph.
    """

    def instrument(op: PhysicalOperator) -> None:
        if isinstance(op, ExchangeOperator):
            # Worker pipeline instances instrument themselves; their summed
            # wall time lands on the (plan-shaped) accumulator chain, while
            # the wrapper below captures the exchange's real barrier
            # elapsed — which is where the parallel speedup is visible.
            op.wall_clock_workers = True
        inner = op.next_batch

        def timed_next_batch() -> RecordBatch | None:
            start = time.perf_counter()
            try:
                return inner()
            finally:
                op.wall_seconds += time.perf_counter() - start

        op.next_batch = timed_next_batch  # type: ignore[method-assign]
        for child in op.children:
            instrument(child)

    instrument(root)


def _parallel_scan_leaf(plan: PlanNode) -> Scan | None:
    """The Scan at the bottom of a pure streaming segment, if any.

    A segment is parallelizable when it is a (possibly empty) chain of
    Filter/Project over a Scan: each morsel instance then produces output
    independent of every other morsel's rows.  Limits are deliberately
    excluded — parallelizing under a LIMIT would fetch row groups the
    sequential early-exit path never bills for.
    """
    node = plan
    while isinstance(node, (Filter, Project)):
        node = node.input
    return node if isinstance(node, Scan) else None


def _maybe_exchange(
    segment: PlanNode, source: DataSource, stats, batch_size: int, workers: int
) -> ExchangeOperator | None:
    """An exchange over ``segment`` when morsel parallelism applies."""
    if workers <= 1 or not hasattr(source, "morsel_granules"):
        return None
    scan = _parallel_scan_leaf(segment)
    if scan is None:
        return None
    return ExchangeOperator(segment, scan, source, stats, batch_size, workers)


def build_pipeline(
    plan: PlanNode, source: DataSource, stats, batch_size: int, workers: int = 1
) -> PhysicalOperator:
    """Lower a logical plan into its physical operator tree.

    The tree mirrors the plan node for node (EXPLAIN ANALYZE relies on
    this to zip the two trees).  Pipelines break exactly at the blocking
    operators; everything between two breaks streams in ``batch_size``
    batches.  ``stats`` is the shared :class:`~repro.engine.executor
    .QueryStats` the scan leaves account into as they fetch.

    With ``workers > 1`` (and a morsel-capable source), the streaming
    segment feeding each pipeline breaker runs as parallel per-morsel
    instances behind an :class:`ExchangeOperator`.  Breakers whose kernel
    decomposes exactly get a partial->final split (:class:`MergeOperator`);
    the rest gather the segment output — in morsel order, so every mode is
    bit-identical to the sequential plan.  The operator tree still mirrors
    the plan node for node: exchange and merge impersonate the nodes they
    replace.
    """
    if isinstance(plan, Scan):
        return ScanOperator(plan, source, stats, batch_size)
    if isinstance(plan, MaterializedView):
        return ViewOperator(plan, batch_size)
    if isinstance(plan, Filter):
        return FilterOperator(
            plan, [build_pipeline(plan.input, source, stats, batch_size, workers)]
        )
    if isinstance(plan, Project):
        return ProjectOperator(
            plan, [build_pipeline(plan.input, source, stats, batch_size, workers)]
        )
    if isinstance(plan, Limit):
        return LimitOperator(
            plan, [build_pipeline(plan.input, source, stats, batch_size, workers)]
        )
    if isinstance(plan, Sort):
        # Gather mode: global sort is order-sensitive, so workers stream
        # the segment and the coordinator runs the one sort kernel.
        child = _maybe_exchange(
            plan.input, source, stats, batch_size, workers
        ) or build_pipeline(plan.input, source, stats, batch_size, workers)
        return SortOperator(plan, [child], batch_size)
    if isinstance(plan, TopN):
        exchange = _maybe_exchange(plan.input, source, stats, batch_size, workers)
        if exchange is not None and plan.limit is not None:
            keys = [(key.column, key.ascending) for key in plan.keys]
            budget = plan.limit + plan.offset
            # Per-morsel top-(limit+offset) keeps every row the global
            # selection could need (ties included: execute_top_n retains
            # all boundary ties); the final pass re-selects exactly.
            exchange.partial_fn = lambda t: execute_top_n(t, keys, budget, 0)
            return MergeOperator(
                plan,
                exchange,
                batch_size,
                final_fn=lambda t: execute_top_n(t, keys, plan.limit, plan.offset),
                empty_fn=lambda: execute_top_n(
                    TableData.empty(plan.input.output_schema()),
                    keys,
                    plan.limit,
                    plan.offset,
                ),
            )
        child = exchange or build_pipeline(
            plan.input, source, stats, batch_size, workers
        )
        return TopNOperator(plan, [child], batch_size)
    if isinstance(plan, Aggregate):
        exchange = _maybe_exchange(plan.input, source, stats, batch_size, workers)
        if exchange is not None:
            input_types = dict(plan.input.output_schema())
            if aggregate_supports_partial(plan.aggregates, input_types):
                exchange.partial_fn = lambda t: partial_aggregate(
                    t, plan.group_keys, plan.aggregates
                )
                return MergeOperator(
                    plan,
                    exchange,
                    batch_size,
                    final_fn=lambda t: final_aggregate(
                        t, plan.group_keys, plan.aggregates
                    ),
                    empty_fn=lambda: execute_aggregate(
                        TableData.empty(plan.input.output_schema()),
                        plan.group_keys,
                        plan.aggregates,
                    ),
                )
            # Gather mode for order-sensitive kernels (DOUBLE SUM/AVG,
            # DISTINCT aggregates): workers scan/filter/project, the
            # coordinator aggregates exactly as the sequential plan would.
            return AggregateOperator(plan, [exchange], batch_size)
        return AggregateOperator(
            plan,
            [build_pipeline(plan.input, source, stats, batch_size, workers)],
            batch_size,
        )
    if isinstance(plan, Distinct):
        exchange = _maybe_exchange(plan.input, source, stats, batch_size, workers)
        if exchange is not None:
            exchange.partial_fn = execute_distinct
            return MergeOperator(
                plan,
                exchange,
                batch_size,
                final_fn=execute_distinct,
                empty_fn=lambda: execute_distinct(
                    TableData.empty(plan.input.output_schema())
                ),
            )
        return DistinctOperator(
            plan,
            [build_pipeline(plan.input, source, stats, batch_size, workers)],
            batch_size,
        )
    if isinstance(plan, HashJoin):
        children = []
        for side in (plan.left, plan.right):
            child = _maybe_exchange(
                side, source, stats, batch_size, workers
            ) or build_pipeline(side, source, stats, batch_size, workers)
            children.append(child)
        return HashJoinOperator(plan, children, batch_size)
    if isinstance(plan, UnionAllPlan):
        children = []
        for sub in plan.inputs:
            child = _maybe_exchange(
                sub, source, stats, batch_size, workers
            ) or build_pipeline(sub, source, stats, batch_size, workers)
            children.append(child)
        return UnionAllOperator(plan, children, batch_size)
    raise ExecutionError(f"unknown plan node {type(plan).__name__}")
