"""Logical plan nodes.

A plan is a tree of dataclass nodes; leaves are :class:`Scan`.  Column flow
is by qualified name: a scan of table ``orders`` bound as ``o`` produces
columns named ``o.o_orderkey`` etc., and every expression above references
those names.  The optimizer rewrites plans in place-free style (nodes are
plain dataclasses, rebuilt when changed).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.engine.expr import BoundExpr
from repro.storage.catalog import TableMeta
from repro.storage.types import DataType


class PlanNode:
    """Base class for logical plan nodes."""

    def children(self) -> list["PlanNode"]:
        return []

    def output_schema(self) -> list[tuple[str, DataType]]:
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        """Human-readable plan rendering (the ``EXPLAIN`` output)."""
        pad = "  " * indent
        lines = [pad + self._describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _describe(self) -> str:
        return type(self).__name__


@dataclass
class Scan(PlanNode):
    """Leaf: read a base table.

    ``columns`` is the projection (qualified output names mapped to base
    column names); ``ranges`` are zone-map bounds pushed down by the
    optimizer; ``residual`` is the part of the pushed predicate zone maps
    cannot fully decide, evaluated right after the read.
    """

    table: TableMeta
    schema_name: str
    binding: str
    columns: list[tuple[str, str]] = field(default_factory=list)  # (out, base)
    ranges: dict[str, tuple[object | None, object | None]] = field(
        default_factory=dict
    )  # keyed by base column name
    residual: BoundExpr | None = None

    def output_schema(self) -> list[tuple[str, DataType]]:
        return [
            (out_name, self.table.column(base_name).dtype)
            for out_name, base_name in self.columns
        ]

    def _describe(self) -> str:
        parts = [f"Scan {self.schema_name}.{self.table.name} AS {self.binding}"]
        if self.ranges:
            parts.append(f"ranges={self.ranges}")
        if self.residual is not None:
            parts.append(f"residual={self.residual.to_sql()}")
        return " ".join(parts)


@dataclass
class Filter(PlanNode):
    input: PlanNode
    predicate: BoundExpr

    def children(self) -> list[PlanNode]:
        return [self.input]

    def output_schema(self) -> list[tuple[str, DataType]]:
        return self.input.output_schema()

    def _describe(self) -> str:
        return f"Filter {self.predicate.to_sql()}"


@dataclass
class Project(PlanNode):
    """Compute named expressions over the input."""

    input: PlanNode
    exprs: list[tuple[str, BoundExpr]]  # (output name, expression)

    def children(self) -> list[PlanNode]:
        return [self.input]

    def output_schema(self) -> list[tuple[str, DataType]]:
        return [(name, expr.dtype) for name, expr in self.exprs]

    def _describe(self) -> str:
        inner = ", ".join(f"{expr.to_sql()} AS {name}" for name, expr in self.exprs)
        return f"Project {inner}"


class JoinType(enum.Enum):
    INNER = "inner"
    LEFT = "left"
    SEMI = "semi"  # IN (SELECT ...): left rows with >=1 match
    ANTI = "anti"  # NOT IN (SELECT ...): left rows with no match


@dataclass
class HashJoin(PlanNode):
    """Equi hash join; ``residual`` filters pairs after key matching."""

    left: PlanNode
    right: PlanNode
    join_type: JoinType
    left_keys: list[str]
    right_keys: list[str]
    residual: BoundExpr | None = None

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def output_schema(self) -> list[tuple[str, DataType]]:
        if self.join_type in (JoinType.SEMI, JoinType.ANTI):
            return self.left.output_schema()
        return self.left.output_schema() + self.right.output_schema()

    def _describe(self) -> str:
        keys = ", ".join(
            f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        text = f"HashJoin[{self.join_type.value}] {keys}"
        if self.residual is not None:
            text += f" residual={self.residual.to_sql()}"
        return text


class AggFunc(enum.Enum):
    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


@dataclass
class AggSpec:
    """One aggregate computation: ``func(input_column)`` → ``output``.

    ``input_column`` is None for ``COUNT(*)``.
    """

    func: AggFunc
    input_column: str | None
    output: str
    distinct: bool = False
    dtype: DataType = DataType.BIGINT

    def describe(self) -> str:
        arg = self.input_column or "*"
        maybe_distinct = "DISTINCT " if self.distinct else ""
        return f"{self.func.value}({maybe_distinct}{arg}) AS {self.output}"


@dataclass
class Aggregate(PlanNode):
    """Hash aggregation: group by ``group_keys`` (input column names),
    compute ``aggregates``.  With no group keys, produces one global row."""

    input: PlanNode
    group_keys: list[str]
    aggregates: list[AggSpec]

    def children(self) -> list[PlanNode]:
        return [self.input]

    def output_schema(self) -> list[tuple[str, DataType]]:
        input_schema = dict(self.input.output_schema())
        keys = [(key, input_schema[key]) for key in self.group_keys]
        aggs = [(spec.output, spec.dtype) for spec in self.aggregates]
        return keys + aggs

    def _describe(self) -> str:
        keys = ", ".join(self.group_keys) or "<global>"
        aggs = ", ".join(spec.describe() for spec in self.aggregates)
        return f"Aggregate keys=[{keys}] aggs=[{aggs}]"


@dataclass
class SortKey:
    column: str
    ascending: bool = True


@dataclass
class Sort(PlanNode):
    input: PlanNode
    keys: list[SortKey]

    def children(self) -> list[PlanNode]:
        return [self.input]

    def output_schema(self) -> list[tuple[str, DataType]]:
        return self.input.output_schema()

    def _describe(self) -> str:
        keys = ", ".join(
            f"{key.column} {'ASC' if key.ascending else 'DESC'}" for key in self.keys
        )
        return f"Sort {keys}"


@dataclass
class TopN(PlanNode):
    """Fused ``Sort`` + ``Limit``: the optimizer rewrites
    ``ORDER BY … LIMIT k [OFFSET m]`` into one node so the executor can use
    partial selection (argpartition over the top ``k + m``) instead of a
    full sort.  Semantics are exactly ``Limit(Sort(input))``."""

    input: PlanNode
    keys: list[SortKey]
    limit: int
    offset: int = 0

    def children(self) -> list[PlanNode]:
        return [self.input]

    def output_schema(self) -> list[tuple[str, DataType]]:
        return self.input.output_schema()

    def _describe(self) -> str:
        keys = ", ".join(
            f"{key.column} {'ASC' if key.ascending else 'DESC'}" for key in self.keys
        )
        return f"TopN {keys} LIMIT {self.limit} OFFSET {self.offset}"


@dataclass
class Limit(PlanNode):
    input: PlanNode
    limit: int | None
    offset: int = 0

    def children(self) -> list[PlanNode]:
        return [self.input]

    def output_schema(self) -> list[tuple[str, DataType]]:
        return self.input.output_schema()

    def _describe(self) -> str:
        return f"Limit {self.limit} OFFSET {self.offset}"


@dataclass
class UnionAllPlan(PlanNode):
    """Bag concatenation of branch plans; positional column alignment,
    output names from the first branch."""

    inputs: list[PlanNode]

    def children(self) -> list[PlanNode]:
        return list(self.inputs)

    def output_schema(self) -> list[tuple[str, DataType]]:
        return self.inputs[0].output_schema()

    def _describe(self) -> str:
        return f"UnionAll ({len(self.inputs)} branches)"


@dataclass
class MaterializedView(PlanNode):
    """Leaf holding already-computed rows.

    This is the seam the Turbo plan splitter uses: the expensive subtree of
    a query is executed by CF workers, and the top-level plan (running in
    the VM cluster) sees its result as a materialized view (§3.1).
    """

    name: str
    schema: list[tuple[str, DataType]]
    data: object = None  # TableData, typed loosely to avoid an import cycle

    def output_schema(self) -> list[tuple[str, DataType]]:
        return list(self.schema)

    def _describe(self) -> str:
        return f"MaterializedView {self.name}"


@dataclass
class Distinct(PlanNode):
    input: PlanNode

    def children(self) -> list[PlanNode]:
        return [self.input]

    def output_schema(self) -> list[tuple[str, DataType]]:
        return self.input.output_schema()


def walk_plan(node: PlanNode):
    """Yield every node in the tree, pre-order."""
    yield node
    for child in node.children():
        yield from walk_plan(child)


def plan_scans(node: PlanNode) -> list[Scan]:
    """All Scan leaves of the plan."""
    return [n for n in walk_plan(node) if isinstance(n, Scan)]
