"""The Query Server: per-level admission, queueing, and billing (§3.2).

The server fronts the Coordinator with a REST-like submit/status/result
API (Pixels-Rover is its client).  Admission per level:

* IMMEDIATE — forwarded to the Coordinator at once with CF enabled.
* RELAXED — forwarded with CF disabled while the VM cluster is below the
  high watermark; otherwise held in the relaxed queue.  When the grace
  period expires the query is forwarded anyway (it then waits in the VM
  queue rather than the server queue, still never invoking CF).
* BEST_EFFORT — forwarded only while the cluster is below the *low*
  watermark, i.e. exactly when the cluster would otherwise scale in; no
  deadline.

Held queries are re-evaluated on a periodic scheduler tick and whenever a
query completes.  On completion the server computes the user's bill:
TB-scanned × the level's rate ($5 / $1 / $0.5 per TB).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import NoSuchQueryError, PixelsError, QueryRejectedError
from repro.core.service_levels import QueryStatus, ServiceLevel
from repro.obs import ROOT, Span
from repro.obs.fingerprint import Fingerprint, fingerprint
from repro.obs.profiler import NANOS_PER_DOLLAR
from repro.obs.slo import SLACK_BUCKETS
from repro.sim import Simulator
from repro.turbo.coordinator import Coordinator, QueryExecution
from repro.turbo.config import TurboConfig


@dataclass
class ServerQuery:
    """The server's record of one submission — what Pixels-Rover renders
    as a status-and-result block (§4.3)."""

    query_id: str
    sql: str
    level: ServiceLevel
    submitted_at: float
    result_limit: int | None = None
    grace_deadline: float | None = None
    dispatched_at: float | None = None
    execution: QueryExecution | None = field(default=None, repr=False)
    price: float = 0.0
    #: The exact integer bill (``round(price × 1e9)``); the metering
    #: ledger's per-axis events sum to this, and the server's aggregate
    #: billing sums these so no float drift can accumulate.
    price_nanodollars: int = 0
    tenant: str = "default"
    cancelled: bool = False
    on_finish: Callable[["ServerQuery"], None] | None = field(
        default=None, repr=False
    )

    @property
    def status(self) -> QueryStatus:
        if self.cancelled and self.execution is None:
            # Cancelled while still held in the server queue.
            return QueryStatus.FAILED
        if self.execution is None:
            return QueryStatus.PENDING
        if self.execution.error is not None:
            return QueryStatus.FAILED
        if self.execution.finished_at is not None:
            return QueryStatus.FINISHED
        if self.execution.started_at is not None:
            return QueryStatus.RUNNING
        return QueryStatus.PENDING

    @property
    def pending_time_s(self) -> float | None:
        """Time from server submission to actual execution start."""
        if self.execution is None or self.execution.started_at is None:
            return None
        return self.execution.started_at - self.submitted_at

    @property
    def execution_time_s(self) -> float | None:
        if self.execution is None:
            return None
        return self.execution.execution_time_s

    @property
    def error(self) -> str | None:
        if self.execution is not None:
            return self.execution.error
        return "cancelled by user" if self.cancelled else None

    def result_rows(self) -> list[tuple]:
        """Finished query's rows, truncated to the submission's limit."""
        if self.execution is None or self.execution.result is None:
            return []
        rows = self.execution.result.rows()
        if self.result_limit is not None:
            rows = rows[: self.result_limit]
        return rows

    def result_columns(self) -> list[str]:
        if self.execution is None or self.execution.result is None:
            return []
        return self.execution.result.column_names


class QueryServer:
    """Admission control + billing in front of the Coordinator."""

    def __init__(
        self,
        sim: Simulator,
        coordinator: Coordinator,
        config: TurboConfig,
        max_queue_length: int = 10_000,
        batch_best_effort: bool = False,
        batch_size: int = 16,
    ) -> None:
        """``batch_best_effort`` enables the paper's §5 batch-optimization
        opportunity: held best-of-effort queries are dispatched together
        as one shared-scan batch instead of one by one."""
        self._sim = sim
        self._coordinator = coordinator
        self._config = config
        self._max_queue_length = max_queue_length
        self._batch_best_effort = batch_best_effort
        self._batch_size = batch_size
        self._queries: dict[str, ServerQuery] = {}
        self._relaxed_queue: list[ServerQuery] = []
        self._best_effort_queue: list[ServerQuery] = []
        self._query_counter = 0
        self.obs = coordinator.obs
        self._root_spans: dict[str, Span] = {}
        self._queue_spans: dict[str, Span] = {}
        # Statement fingerprints: one cache keyed by SQL text (normalizing
        # is per-shape work, not per-call work) plus the per-query mapping
        # journal/statement records are labelled with.
        self._fingerprint_cache: dict[str, Fingerprint] = {}
        self._fingerprints: dict[str, Fingerprint] = {}
        registry = self.obs.metrics
        self._m_submitted = registry.counter(
            "pixels_queries_submitted_total",
            "Queries accepted by the server, by service level",
        )
        self._m_rejected = registry.counter(
            "pixels_queries_rejected_total",
            "Queries refused by hold-queue back-pressure",
        )
        self._m_billed = registry.counter(
            "pixels_billed_dollars_total",
            "User-facing charges ($), by service level",
        )
        self._m_tenant_billed = registry.counter(
            "pixels_tenant_billed_dollars_total",
            "User-facing charges ($), by tenant "
            "(soft-budget alert rules select on this)",
        )
        self._m_pending = registry.histogram(
            "pixels_query_pending_seconds",
            "Submission-to-execution-start delay",
        )
        self._m_queue_depth = registry.gauge(
            "pixels_server_queue_depth",
            "Queries held in the server's per-level queues",
        )
        self._m_slack = registry.histogram(
            "pixels_query_deadline_slack_seconds",
            "Deadline minus pending time; negative buckets are violations",
            buckets=SLACK_BUCKETS,
        )
        registry.add_collector(self._collect_queue_depth)
        sim.schedule(config.scheduler_interval_s, self._tick)

    def _collect_queue_depth(self) -> None:
        self._m_queue_depth.set(len(self._relaxed_queue), level="relaxed")
        self._m_queue_depth.set(len(self._best_effort_queue), level="best_effort")

    # -- lookups ---------------------------------------------------------------

    def query(self, query_id: str) -> ServerQuery:
        try:
            return self._queries[query_id]
        except KeyError:
            raise NoSuchQueryError(f"no query {query_id!r}") from None

    @property
    def queries(self) -> list[ServerQuery]:
        return list(self._queries.values())

    @property
    def queued_relaxed(self) -> int:
        return len(self._relaxed_queue)

    @property
    def queued_best_effort(self) -> int:
        return len(self._best_effort_queue)

    def price_quote(self, level: ServiceLevel) -> float:
        """$/TB-scan rate shown on the submission form (Figure 3)."""
        return self._coordinator.cost_model.price_per_tb(level)

    def deadline_for(self, level: ServiceLevel) -> float | None:
        """The published pending-time deadline of ``level`` (§3.2):
        immediate starts at once, relaxed starts before the grace period
        expires, best-of-effort carries no deadline.  This is the SLO
        the tracker holds each completed query against."""
        if level is ServiceLevel.IMMEDIATE:
            return 0.0
        if level is ServiceLevel.RELAXED:
            return self._config.grace_period_s
        return None

    # -- submission ---------------------------------------------------------------

    def submit(
        self,
        sql: str,
        level: ServiceLevel,
        result_limit: int | None = None,
        query_id: str | None = None,
        on_finish: Callable[[ServerQuery], None] | None = None,
        tenant: str | None = None,
    ) -> ServerQuery:
        """Accept a query at ``level``; returns its server record.

        ``tenant`` tags the submission for spend accounting (span
        attributes, journal, statement store, metering ledger, and the
        per-tenant billed counter); it defaults to ``"default"``.
        Raises :class:`QueryRejectedError` if the relevant hold queue is
        full (back-pressure rather than unbounded growth).
        """
        if query_id is None:
            self._query_counter += 1
            query_id = f"sq-{self._query_counter}"
        record = ServerQuery(
            query_id=query_id,
            sql=sql,
            level=level,
            submitted_at=self._sim.now,
            result_limit=result_limit,
            on_finish=on_finish,
            tenant=tenant or "default",
        )
        self._queries[query_id] = record
        self._m_submitted.inc(level=level.value)
        fp: Fingerprint | None = None
        if self.obs.statements.enabled or self.obs.journal.enabled:
            fp = self._fingerprint_cache.get(sql)
            if fp is None:
                fp = fingerprint(sql)
                self._fingerprint_cache[sql] = fp
            self._fingerprints[query_id] = fp
        tracer = self.obs.tracer
        if tracer.enabled:
            # price_fraction + deadline_s let traces join SLO records by
            # query id without re-deriving level semantics.
            self._root_spans[query_id] = tracer.start(
                query_id,
                "query",
                parent=ROOT,
                level=level.value,
                sql=sql,
                tenant=record.tenant,
                price_fraction=level.price_fraction,
                deadline_s=self.deadline_for(level),
                fingerprint=fp.id if fp is not None else None,
            )
            tracer.start(query_id, "submit", level=level.value).finish(
                price_per_tb=self.price_quote(level)
            )
        if self.obs.journal.enabled:
            self.obs.journal.event(
                "submit",
                query_id,
                span_id=self._root_span_id(query_id),
                fingerprint=fp.id if fp is not None else None,
                level=level.value,
                tenant=record.tenant,
                price_per_tb=self.price_quote(level),
                deadline_s=self.deadline_for(level),
            )
        try:
            if level is ServiceLevel.IMMEDIATE:
                self._dispatch(record)
            elif level is ServiceLevel.RELAXED:
                record.grace_deadline = self._sim.now + self._config.grace_period_s
                if self._coordinator.below_high_watermark():
                    self._dispatch(record)
                else:
                    self._enqueue(self._relaxed_queue, record)
            else:  # BEST_EFFORT
                if self._coordinator.below_low_watermark():
                    self._dispatch(record)
                else:
                    self._enqueue(self._best_effort_queue, record)
        except QueryRejectedError as exc:
            self._m_rejected.inc(level=level.value)
            self._root_spans.pop(query_id, None)
            tracer.end_open(query_id, "error", error=str(exc))
            self._journal_event(record, "reject", error=str(exc))
            self._fingerprints.pop(query_id, None)
            raise
        return record

    def _root_span_id(self, query_id: str) -> int | None:
        span = self._root_spans.get(query_id)
        return span.span_id if span is not None else None

    def _journal_event(
        self, record: ServerQuery, event: str, **attrs: object
    ) -> None:
        if not self.obs.journal.enabled:
            return
        fp = self._fingerprints.get(record.query_id)
        self.obs.journal.event(
            event,
            record.query_id,
            span_id=self._root_span_id(record.query_id),
            fingerprint=fp.id if fp is not None else None,
            level=record.level.value,
            **attrs,
        )

    def _enqueue(self, queue: list[ServerQuery], record: ServerQuery) -> None:
        if len(queue) >= self._max_queue_length:
            del self._queries[record.query_id]
            raise QueryRejectedError(
                f"{record.level.value} queue is full "
                f"({self._max_queue_length} queries)"
            )
        queue.append(record)
        watermark = "high" if record.level is ServiceLevel.RELAXED else "low"
        if self.obs.tracer.enabled:
            self._queue_spans[record.query_id] = self.obs.tracer.start(
                record.query_id,
                "queue",
                level=record.level.value,
                reason=f"above_{watermark}_watermark",
            )
        self._journal_event(
            record, "queue", reason=f"above_{watermark}_watermark"
        )

    def _dispatch(self, record: ServerQuery) -> None:
        self._close_queue_span(record)
        if self.obs.tracer.enabled:
            self.obs.tracer.start(
                record.query_id, "dispatch", level=record.level.value
            ).finish()
        self._journal_event(
            record,
            "dispatch",
            held_s=round(self._sim.now - record.submitted_at, 9),
        )
        record.dispatched_at = self._sim.now
        record.execution = self._coordinator.submit(
            sql=record.sql,
            cf_enabled=record.level.cf_enabled,
            query_id=record.query_id,
            on_complete=lambda execution: self._completed(record, execution),
        )

    def cancel(self, query_id: str) -> bool:
        """Cancel a query at any pre-terminal stage.

        Works whether the query is still held in a server queue, waiting
        in the VM cluster's queue, or already running.  Returns False if
        it had already finished or failed.
        """
        record = self.query(query_id)
        if record.status.is_terminal:
            return False
        if record.execution is None:
            record.cancelled = True
            self._close_queue_span(record, status="cancelled")
            self._journal_event(record, "cancel", stage="held")
            self.obs.ledger.void(
                query_id,
                tenant=record.tenant,
                level=record.level.value,
                venue="none",
                span_id=self._root_span_id(query_id),
                reason="cancelled_held",
            )
            self._fingerprints.pop(query_id, None)
            self._root_spans.pop(query_id, None)
            self.obs.tracer.end_open(
                query_id, "cancelled", error="cancelled by user"
            )
            self._relaxed_queue = [
                q for q in self._relaxed_queue if q.query_id != query_id
            ]
            self._best_effort_queue = [
                q for q in self._best_effort_queue if q.query_id != query_id
            ]
            if record.on_finish is not None:
                record.on_finish(record)
            return True
        record.cancelled = True
        return self._coordinator.cancel(query_id)

    def _close_queue_span(
        self, record: ServerQuery, status: str = "ok"
    ) -> None:
        span = self._queue_spans.pop(record.query_id, None)
        if span is not None:
            span.finish(status, held_s=self._sim.now - record.submitted_at)

    # -- scheduling -----------------------------------------------------------------

    def _tick(self) -> None:
        self._sim.schedule(self._config.scheduler_interval_s, self._tick)
        self._drain()

    def _drain(self) -> None:
        """Re-evaluate held queries against the current load status."""
        # Relaxed queries: admit while below the high watermark; force out
        # those whose grace period expired (they then queue in the VM
        # cluster — the server guaranteed only the grace-period bound).
        still_held: list[ServerQuery] = []
        for record in self._relaxed_queue:
            expired = (
                record.grace_deadline is not None
                and self._sim.now >= record.grace_deadline
            )
            if expired or self._coordinator.below_high_watermark():
                self._dispatch(record)
            else:
                still_held.append(record)
        self._relaxed_queue = still_held
        if (
            self._batch_best_effort
            and len(self._best_effort_queue) >= 2
            and self._coordinator.below_low_watermark()
        ):
            self._dispatch_batch()
            return
        while self._best_effort_queue and self._coordinator.below_low_watermark():
            self._dispatch(self._best_effort_queue.pop(0))

    def _dispatch_batch(self) -> None:
        """Send held best-of-effort queries out as one shared-scan batch."""
        group = self._best_effort_queue[: self._batch_size]
        self._best_effort_queue = self._best_effort_queue[self._batch_size :]
        for record in group:
            self._close_queue_span(record)
            if self.obs.tracer.enabled:
                self.obs.tracer.start(
                    record.query_id,
                    "dispatch",
                    level=record.level.value,
                    batch=True,
                ).finish()
            self._journal_event(
                record,
                "dispatch",
                batch=True,
                held_s=round(self._sim.now - record.submitted_at, 9),
            )
        executions = self._coordinator.submit_shared_batch(
            [record.sql for record in group],
            [record.query_id for record in group],
        )
        now = self._sim.now
        for record, execution in zip(group, executions):
            record.dispatched_at = now
            record.execution = execution
            execution.on_complete = (
                lambda exec_, rec=record: self._completed(rec, exec_)
            )
            if execution.finished_at is not None:  # failed during planning
                self._completed(record, execution)

    def _completed(self, record: ServerQuery, execution: QueryExecution) -> None:
        span_id = self._root_span_id(record.query_id)
        deadline = self.deadline_for(record.level)
        pending = record.pending_time_s
        slack = (
            deadline - pending
            if deadline is not None and pending is not None
            else None
        )
        reading = None
        if execution.result is not None:
            stats = execution.result.stats
            venue = (
                execution.venue.value
                if execution.venue is not None
                else "none"
            )
            record.price = self._coordinator.cost_model.user_price(
                stats, record.level
            )
            if self.obs.ledger.enabled or self.obs.statements.enabled:
                # One meter reading feeds the ledger, the statement
                # store, and price_nanodollars, so the three surfaces
                # agree to the nanodollar by construction.
                reading = self._coordinator.cost_model.meter(
                    stats,
                    venue,
                    record.price,
                    get_price_per_1000=(
                        self._coordinator.store.profile.get_price_per_1000
                    ),
                )
                record.price_nanodollars = reading.billed_nanodollars
            else:
                record.price_nanodollars = round(
                    record.price * NANOS_PER_DOLLAR
                )
            if self.obs.ledger.enabled and reading is not None:
                self.obs.ledger.charge_query(
                    record.query_id,
                    axes=reading.axes,
                    billed_nanodollars=reading.billed_nanodollars,
                    tenant=record.tenant,
                    level=record.level.value,
                    venue=venue,
                    span_id=span_id,
                    bytes_scanned=stats.bytes_scanned,
                    data_inflation=self._coordinator.config.data_inflation,
                    price_per_tb=self.price_quote(record.level),
                )
            self._m_billed.inc(record.price, level=record.level.value)
            self._m_tenant_billed.inc(record.price, tenant=record.tenant)
            if slack is not None:
                self._m_slack.observe(slack, level=record.level.value)
            if pending is not None:
                self.obs.slo.record(
                    query_id=record.query_id,
                    level=record.level.value,
                    submitted_at=record.submitted_at,
                    finished_at=self._sim.now,
                    deadline_s=deadline,
                    actual_s=pending,
                    billed=record.price,
                )
            root = self._root_spans.pop(record.query_id, None)
            if root is not None:
                self.obs.tracer.start(
                    record.query_id,
                    "bill",
                    parent=root,
                    level=record.level.value,
                    price=record.price,
                    price_per_tb=self.price_quote(record.level),
                    price_fraction=record.level.price_fraction,
                    bytes_scanned=execution.result.stats.bytes_scanned,
                    deadline_s=deadline,
                    slack_s=slack,
                ).finish()
            self.obs.tracer.end_open(record.query_id, "ok")
        else:
            # The coordinator's failure path already closed the trace with
            # an error/cancelled status; this is only the safety net.
            self._root_spans.pop(record.query_id, None)
            self.obs.tracer.end_open(
                record.query_id, "error", error=execution.error or ""
            )
            if record.cancelled or execution.error == "cancelled by user":
                self.obs.ledger.void(
                    record.query_id,
                    tenant=record.tenant,
                    level=record.level.value,
                    venue=(
                        execution.venue.value
                        if execution.venue is not None
                        else "none"
                    ),
                    span_id=span_id,
                    reason="cancelled",
                )
        self._observe_statement(
            record,
            execution,
            span_id,
            slack,
            attribution=reading.attribution if reading is not None else None,
        )
        if record.pending_time_s is not None:
            self._m_pending.observe(
                record.pending_time_s, level=record.level.value
            )
        if record.on_finish is not None:
            record.on_finish(record)
        # A finished query frees capacity: give held queries a chance now
        # rather than waiting for the next tick.
        self._drain()

    def _observe_statement(
        self,
        record: ServerQuery,
        execution: QueryExecution,
        span_id: int | None,
        slack: float | None,
        attribution=None,
    ) -> None:
        """Fold one completion into the statement store and the journal
        (including the tail-based capture decision)."""
        obs = self.obs
        if not (obs.statements.enabled or obs.journal.enabled):
            return
        fp = self._fingerprints.pop(record.query_id, None)
        if fp is None:
            return
        error = execution.error is not None
        time_s = execution.execution_time_s or 0.0
        pending = record.pending_time_s
        stats = (
            execution.result.stats if execution.result is not None else None
        )
        venue = (
            execution.venue.value if execution.venue is not None else "none"
        )
        if obs.statements.enabled:
            if attribution is None and stats is not None:
                attribution = self._coordinator.cost_model.attribution(
                    stats,
                    venue,
                    record.price,
                    get_price_per_1000=(
                        self._coordinator.store.profile.get_price_per_1000
                    ),
                )
            obs.statements.record(
                fp,
                record.level.value,
                time_s=time_s,
                pending_s=pending or 0.0,
                billed=record.price,
                attribution=attribution,
                stats=stats,
                plan_shape=execution.plan_shape,
                error=error,
                tenant=record.tenant,
            )
        if not obs.journal.enabled:
            return
        journal = obs.journal
        attrs: dict[str, object] = {
            "venue": venue,
            "execution_s": round(time_s, 9),
            "pending_s": round(pending, 9) if pending is not None else None,
            "slack_s": round(slack, 9) if slack is not None else None,
            "billed_dollars": round(record.price, 12),
            "bytes_scanned": stats.bytes_scanned if stats is not None else 0,
            "rows_produced": (
                stats.rows_produced if stats is not None else 0
            ),
            "plan_shape": execution.plan_shape,
        }
        if error:
            attrs["error"] = execution.error
        journal.event(
            "error" if error else "finish",
            record.query_id,
            span_id=span_id,
            fingerprint=fp.id,
            level=record.level.value,
            **attrs,
        )
        reasons = journal.capture_reasons(
            time_s=execution.execution_time_s,
            billed=record.price if not error else None,
            slack_s=slack,
            error=error,
        )
        if reasons:
            try:
                profile = self.query_profile(record.query_id)
            except PixelsError:
                profile = None
            journal.capture(
                record.query_id,
                reasons,
                profile,
                span_id=span_id,
                fingerprint=fp.id,
                level=record.level.value,
                slack_s=round(slack, 9) if slack is not None else None,
                billed_dollars=round(record.price, 12),
            )

    # -- profiling ----------------------------------------------------------------------

    def query_profile(self, query_id: str):
        """The finished query's deterministic cost/time attribution profile.

        Fuses the tracer's span tree (when tracing is on), the executor's
        operator profile, and the billed price split by resource into one
        :class:`~repro.obs.profiler.QueryProfile` — the input for folded
        stacks and the time/$ flame graphs.  The server owns this endpoint
        because it is the one component that knows the bill.
        """
        from repro.engine.executor import QueryStats
        from repro.obs.profiler import build_query_profile

        record = self.query(query_id)
        execution = record.execution
        if execution is None or execution.finished_at is None:
            raise PixelsError(f"query {query_id!r} has not finished")
        timeline = (
            self.obs.tracer.timeline(query_id)
            if self.obs.tracer.enabled
            else None
        )
        venue = (
            execution.venue.value if execution.venue is not None else "none"
        )
        stats = (
            execution.result.stats
            if execution.result is not None
            else QueryStats()
        )
        attribution = self._coordinator.cost_model.attribution(
            stats,
            venue,
            record.price,
            get_price_per_1000=(
                self._coordinator.store.profile.get_price_per_1000
            ),
        )
        return build_query_profile(
            query_id, timeline, execution.profile, attribution
        )

    # -- aggregate statistics ----------------------------------------------------------

    def total_billed_nanodollars(self) -> int:
        """Sum of user-facing charges across finished queries, in exact
        integer nanodollars — the authoritative aggregate (no float
        accumulation drift, reconciled against the metering ledger)."""
        return sum(
            query.price_nanodollars for query in self._queries.values()
        )

    def total_billed(self) -> float:
        """Dollar view of :meth:`total_billed_nanodollars`."""
        return self.total_billed_nanodollars() / NANOS_PER_DOLLAR

    def status_counts(self) -> dict[QueryStatus, int]:
        counts = {status: 0 for status in QueryStatus}
        for query in self._queries.values():
            counts[query.status] += 1
        return counts
