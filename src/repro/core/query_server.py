"""The Query Server: per-level admission, queueing, and billing (§3.2).

The server fronts the Coordinator with a REST-like submit/status/result
API (Pixels-Rover is its client).  Admission per level:

* IMMEDIATE — forwarded to the Coordinator at once with CF enabled.
* RELAXED — forwarded with CF disabled while the VM cluster is below the
  high watermark; otherwise held in the relaxed queue.  When the grace
  period expires the query is forwarded anyway (it then waits in the VM
  queue rather than the server queue, still never invoking CF).
* BEST_EFFORT — forwarded only while the cluster is below the *low*
  watermark, i.e. exactly when the cluster would otherwise scale in; no
  deadline.

Since the scheduler refactor this class is a thin façade over the
layered :mod:`repro.core.scheduler` subsystem: an
:class:`~repro.core.scheduler.AdmissionController` judges every
submission (quotas, rate limits, pressure/budget downgrades — inert by
default), and a :class:`~repro.core.scheduler.LevelScheduler` holds the
queued work in per-tenant weighted-fair queues instead of the old FIFO
lists.  The façade keeps what only it can own: billing, observability
threading, and the watermark/grace *eligibility* rules; the scheduler
decides *who goes next* among the eligible.

Held queries are re-evaluated on a periodic scheduler tick and whenever a
query completes.  On completion the server computes the user's bill:
TB-scanned × the level's rate ($5 / $1 / $0.5 per TB).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import NoSuchQueryError, PixelsError, QueryRejectedError
from repro.core.scheduler import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    HELD_LEVELS,
    LevelScheduler,
)
from repro.core.service_levels import QueryStatus, ServiceLevel
from repro.obs import ROOT, Span
from repro.obs.activity import GuardDecision, GuardPolicy, ProjectionGuard
from repro.obs.fingerprint import Fingerprint, fingerprint
from repro.obs.metrics import (
    ADMISSION_DOWNGRADES_METRIC,
    ADMISSION_REJECTIONS_METRIC,
    GUARD_DECISIONS_METRIC,
    SCHEDULER_QUEUE_DEPTH_METRIC,
)
from repro.obs.profiler import NANOS_PER_DOLLAR
from repro.obs.slo import SLACK_BUCKETS
from repro.sim import Simulator
from repro.turbo.coordinator import Coordinator, QueryExecution
from repro.turbo.config import TurboConfig


@dataclass
class ServerQuery:
    """The server's record of one submission — what Pixels-Rover renders
    as a status-and-result block (§4.3)."""

    query_id: str
    sql: str
    #: Effective service level — what the query runs and bills at.  The
    #: admission layer may have downgraded it from ``requested_level``.
    level: ServiceLevel
    submitted_at: float
    result_limit: int | None = None
    grace_deadline: float | None = None
    dispatched_at: float | None = None
    execution: QueryExecution | None = field(default=None, repr=False)
    price: float = 0.0
    #: The exact integer bill (``round(price × 1e9)``); the metering
    #: ledger's per-axis events sum to this, and the server's aggregate
    #: billing sums these so no float drift can accumulate.
    price_nanodollars: int = 0
    tenant: str = "default"
    cancelled: bool = False
    on_finish: Callable[["ServerQuery"], None] | None = field(
        default=None, repr=False
    )
    #: The level the client asked for (== ``level`` unless downgraded).
    requested_level: ServiceLevel | None = None
    #: The admission layer's verdict on this submission.
    admission: AdmissionDecision | None = field(default=None, repr=False)
    #: Virtual finish tag the weighted-fair queue assigned while held.
    finish_tag: float | None = None

    @property
    def downgraded(self) -> bool:
        return (
            self.requested_level is not None
            and self.requested_level is not self.level
        )

    @property
    def status(self) -> QueryStatus:
        if self.cancelled and self.execution is None:
            # Cancelled while still held in the server queue.
            return QueryStatus.FAILED
        if self.execution is None:
            return QueryStatus.PENDING
        if self.execution.error is not None:
            return QueryStatus.FAILED
        if self.execution.finished_at is not None:
            return QueryStatus.FINISHED
        if self.execution.started_at is not None:
            return QueryStatus.RUNNING
        return QueryStatus.PENDING

    @property
    def pending_time_s(self) -> float | None:
        """Time from server submission to actual execution start."""
        if self.execution is None or self.execution.started_at is None:
            return None
        return self.execution.started_at - self.submitted_at

    @property
    def execution_time_s(self) -> float | None:
        if self.execution is None:
            return None
        return self.execution.execution_time_s

    @property
    def error(self) -> str | None:
        if self.execution is not None:
            return self.execution.error
        return "cancelled by user" if self.cancelled else None

    def result_rows(self) -> list[tuple]:
        """Finished query's rows, truncated to the submission's limit."""
        if self.execution is None or self.execution.result is None:
            return []
        rows = self.execution.result.rows()
        if self.result_limit is not None:
            rows = rows[: self.result_limit]
        return rows

    def result_columns(self) -> list[str]:
        if self.execution is None or self.execution.result is None:
            return []
        return self.execution.result.column_names


class QueryServer:
    """Admission control + billing in front of the Coordinator."""

    def __init__(
        self,
        sim: Simulator,
        coordinator: Coordinator,
        config: TurboConfig,
        max_queue_length: int = 10_000,
        batch_best_effort: bool = False,
        batch_size: int = 16,
        admission: AdmissionPolicy | None = None,
        shares: dict[str, float] | None = None,
        default_share: float = 1.0,
        guard: GuardPolicy | None = None,
    ) -> None:
        """``batch_best_effort`` enables the paper's §5 batch-optimization
        opportunity: held best-of-effort queries are dispatched together
        as one shared-scan batch instead of one by one.

        ``admission`` configures the front-end admission layer (quotas,
        rate limits, downgrades); the default policy admits everything.
        ``shares``/``default_share`` set per-tenant weighted-fair shares
        for the hold queues; with one tenant (or equal shares and equal
        load) dispatch order is exactly the old FIFO order.
        ``guard`` arms the projection guard: on every scheduler tick the
        live activity registry's bill/deadline projections are held
        against tenant budgets and service-level deadlines, with the
        policy's (opt-in) alert/downgrade/cancel actions audit-logged on
        :attr:`guard` (requires observability; inert otherwise).
        """
        self._sim = sim
        self._coordinator = coordinator
        self._config = config
        self._max_queue_length = max_queue_length
        self._batch_best_effort = batch_best_effort
        self._batch_size = batch_size
        self._queries: dict[str, ServerQuery] = {}
        self._scheduler = LevelScheduler(shares, default_share)
        self.obs = coordinator.obs
        self._admission = AdmissionController(
            admission, clock=lambda: sim.now, spend=self.obs.spend
        )
        #: Per-tenant held + executing query count (the quota basis).
        self._tenant_live: dict[str, int] = {}
        #: Min-heap of (grace_deadline, seq, record) for held relaxed
        #: queries; dispatched/cancelled entries are skipped lazily.
        self._grace_heap: list[tuple[float, int, ServerQuery]] = []
        self._grace_seq = 0
        self._query_counter = 0
        self._root_spans: dict[str, Span] = {}
        self._queue_spans: dict[str, Span] = {}
        # Statement fingerprints: one cache keyed by SQL text (normalizing
        # is per-shape work, not per-call work) plus the per-query mapping
        # journal/statement records are labelled with.
        self._fingerprint_cache: dict[str, Fingerprint] = {}
        self._fingerprints: dict[str, Fingerprint] = {}
        registry = self.obs.metrics
        self._m_submitted = registry.counter(
            "pixels_queries_submitted_total",
            "Queries accepted by the server, by service level",
        )
        self._m_rejected = registry.counter(
            "pixels_queries_rejected_total",
            "Queries refused by hold-queue back-pressure",
        )
        self._m_admission_rejected = registry.counter(
            ADMISSION_REJECTIONS_METRIC,
            "Submissions refused by the admission layer, by reason",
        )
        self._m_admission_downgraded = registry.counter(
            ADMISSION_DOWNGRADES_METRIC,
            "Relaxed submissions downgraded to best_effort, by reason",
        )
        self._m_billed = registry.counter(
            "pixels_billed_dollars_total",
            "User-facing charges ($), by service level",
        )
        self._m_tenant_billed = registry.counter(
            "pixels_tenant_billed_dollars_total",
            "User-facing charges ($), by tenant "
            "(soft-budget alert rules select on this)",
        )
        self._m_pending = registry.histogram(
            "pixels_query_pending_seconds",
            "Submission-to-execution-start delay",
        )
        self._m_queue_depth = registry.gauge(
            "pixels_server_queue_depth",
            "Queries held in the server's per-level queues",
        )
        self._m_tenant_queue_depth = registry.gauge(
            SCHEDULER_QUEUE_DEPTH_METRIC,
            "Held queries per tenant and service level "
            "(label sets capped by the cardinality guard)",
        )
        self._m_slack = registry.histogram(
            "pixels_query_deadline_slack_seconds",
            "Deadline minus pending time; negative buckets are violations",
            buckets=SLACK_BUCKETS,
        )
        self._m_guard = registry.counter(
            GUARD_DECISIONS_METRIC,
            "Projection-guard decisions, by rule and action",
        )
        # The activity registry projects bills with the same pricing the
        # server itself uses at completion, so a projection's terminal
        # value equals the billed price exactly.
        self.obs.activity.bind(pricer=self._projection_price)
        #: The armed :class:`ProjectionGuard` (None unless a policy was
        #: passed and observability is on); its ``audit_log`` is the
        #: guard's decision record, and ``alert_sink`` may be attached
        #: post-construction to route alerts into an alert engine.
        self.guard: ProjectionGuard | None = None
        if guard is not None and self.obs.activity.enabled:
            self.guard = ProjectionGuard(
                guard,
                self.obs.activity,
                self.obs.spend,
                canceller=self.cancel,
                downgrader=self.downgrade_query,
                on_decision=self._on_guard_decision,
            )
        #: (tenant, level) series last reported non-zero — zeroed on the
        #: next collection once the tenant drains, so the gauge never
        #: shows a stale depth.
        self._depth_series: set[tuple[str, str]] = set()
        registry.add_collector(self._collect_queue_depth)
        sim.schedule(config.scheduler_interval_s, self._tick)

    def _projection_price(self, stats, level_value: str, venue: str):
        """Price a (possibly hypothetical) execution for the activity
        registry's projections: the same ``user_price`` + ``meter`` pair
        :meth:`_completed` bills with, so projection and bill can never
        disagree at the terminal state."""
        level = ServiceLevel.from_string(level_value)
        price = self._coordinator.cost_model.user_price(stats, level)
        reading = self._coordinator.cost_model.meter(
            stats,
            venue,
            price,
            get_price_per_1000=(
                self._coordinator.store.profile.get_price_per_1000
            ),
        )
        return reading.billed_nanodollars, reading.axes

    def _on_guard_decision(self, decision: GuardDecision) -> None:
        self._m_guard.inc(rule=decision.rule, action=decision.action)
        record = self._queries.get(decision.query_id)
        if record is not None:
            self._journal_event(
                record,
                "guard",
                rule=decision.rule,
                action=decision.action,
                applied=decision.applied,
                reason=decision.reason,
            )

    def _collect_queue_depth(self) -> None:
        self._m_queue_depth.set(
            self._scheduler.depth(ServiceLevel.RELAXED), level="relaxed"
        )
        self._m_queue_depth.set(
            self._scheduler.depth(ServiceLevel.BEST_EFFORT),
            level="best_effort",
        )
        live: set[tuple[str, str]] = set()
        for level in HELD_LEVELS:
            for tenant, depth in self._scheduler.queue(level).depths().items():
                self._m_tenant_queue_depth.set(
                    depth, tenant=tenant, level=level.value
                )
                live.add((tenant, level.value))
        for tenant, level_name in self._depth_series - live:
            self._m_tenant_queue_depth.set(0, tenant=tenant, level=level_name)
        self._depth_series = live

    # -- lookups ---------------------------------------------------------------

    def query(self, query_id: str) -> ServerQuery:
        try:
            return self._queries[query_id]
        except KeyError:
            raise NoSuchQueryError(f"no query {query_id!r}") from None

    @property
    def queries(self) -> list[ServerQuery]:
        return list(self._queries.values())

    @property
    def queued_relaxed(self) -> int:
        """Derived view over the scheduler's relaxed hold queue.  The
        old FIFO list attributes are gone: queue state lives only in the
        :class:`LevelScheduler`, so no caller can observe (or mutate) a
        half-drained queue mid-tick."""
        return self._scheduler.depth(ServiceLevel.RELAXED)

    @property
    def queued_best_effort(self) -> int:
        """Derived view over the scheduler's best-effort hold queue."""
        return self._scheduler.depth(ServiceLevel.BEST_EFFORT)

    def held_queries(self, level: ServiceLevel) -> list[ServerQuery]:
        """Held queries at ``level`` in dispatch order — a snapshot, not
        the live queue."""
        return self._scheduler.records(level)

    def scheduler_snapshot(self) -> dict:
        """JSON-ready scheduler state: per-tenant/per-level queue depths,
        WFQ shares and fairness, admission verdicts, live counts.  The
        dashboard "Scheduler" panel and Rover's ``/scheduler`` endpoint
        render this."""
        snapshot = self._scheduler.snapshot()
        snapshot["admission"] = self._admission.snapshot()
        snapshot["tenant_live"] = {
            tenant: count
            for tenant, count in sorted(self._tenant_live.items())
            if count > 0
        }
        return snapshot

    def price_quote(self, level: ServiceLevel) -> float:
        """$/TB-scan rate shown on the submission form (Figure 3)."""
        return self._coordinator.cost_model.price_per_tb(level)

    def deadline_for(self, level: ServiceLevel) -> float | None:
        """The published pending-time deadline of ``level`` (§3.2):
        immediate starts at once, relaxed starts before the grace period
        expires, best-of-effort carries no deadline.  This is the SLO
        the tracker holds each completed query against."""
        if level is ServiceLevel.IMMEDIATE:
            return 0.0
        if level is ServiceLevel.RELAXED:
            return self._config.grace_period_s
        return None

    # -- submission ---------------------------------------------------------------

    def submit(
        self,
        sql: str,
        level: ServiceLevel,
        result_limit: int | None = None,
        query_id: str | None = None,
        on_finish: Callable[[ServerQuery], None] | None = None,
        tenant: str | None = None,
    ) -> ServerQuery:
        """Accept a query at ``level``; returns its server record.

        ``tenant`` tags the submission for spend accounting (span
        attributes, journal, statement store, metering ledger, and the
        per-tenant billed counter); it defaults to ``"default"``.
        The admission layer may downgrade a relaxed submission to
        best_effort under pressure (the record's ``requested_level``
        keeps the original).  Raises :class:`QueryRejectedError` if the
        admission layer refuses the submission or the relevant hold
        queue is full (back-pressure rather than unbounded growth).
        """
        if query_id is None:
            self._query_counter += 1
            query_id = f"sq-{self._query_counter}"
        tenant_name = tenant or "default"
        decision = self._admission.decide(
            tenant_name,
            level,
            tenant_live=self._tenant_live.get(tenant_name, 0),
            relaxed_depth=self._scheduler.depth(ServiceLevel.RELAXED),
        )
        record = ServerQuery(
            query_id=query_id,
            sql=sql,
            level=decision.level,
            submitted_at=self._sim.now,
            result_limit=result_limit,
            on_finish=on_finish,
            tenant=tenant_name,
            requested_level=level,
            admission=decision,
        )
        self._queries[query_id] = record
        self._m_submitted.inc(level=level.value)
        fp: Fingerprint | None = None
        if self.obs.statements.enabled or self.obs.journal.enabled:
            fp = self._fingerprint_cache.get(sql)
            if fp is None:
                fp = fingerprint(sql)
                self._fingerprint_cache[sql] = fp
            self._fingerprints[query_id] = fp
        if self.obs.activity.enabled:
            self.obs.activity.begin(
                query_id,
                tenant=record.tenant,
                level=record.level.value,
                requested_level=level.value,
                fingerprint=fp.id if fp is not None else None,
                deadline_s=self.deadline_for(record.level),
                admission=decision.action,
            )
        admission_attrs = (
            decision.to_attrs() if decision.action != "admit" else {}
        )
        tracer = self.obs.tracer
        if tracer.enabled:
            # price_fraction + deadline_s let traces join SLO records by
            # query id without re-deriving level semantics.
            self._root_spans[query_id] = tracer.start(
                query_id,
                "query",
                parent=ROOT,
                level=record.level.value,
                sql=sql,
                tenant=record.tenant,
                price_fraction=record.level.price_fraction,
                deadline_s=self.deadline_for(record.level),
                fingerprint=fp.id if fp is not None else None,
                **admission_attrs,
            )
            tracer.start(query_id, "submit", level=record.level.value).finish(
                price_per_tb=self.price_quote(record.level)
            )
        if self.obs.journal.enabled:
            self.obs.journal.event(
                "submit",
                query_id,
                span_id=self._root_span_id(query_id),
                fingerprint=fp.id if fp is not None else None,
                level=record.level.value,
                tenant=record.tenant,
                price_per_tb=self.price_quote(record.level),
                deadline_s=self.deadline_for(record.level),
                **admission_attrs,
            )
        live_counted = False
        try:
            if not decision.admitted:
                raise QueryRejectedError(
                    f"admission refused {level.value} submission "
                    f"({decision.reason})"
                )
            if decision.action == "downgrade":
                self._m_admission_downgraded.inc(reason=decision.reason)
                self._journal_event(
                    record,
                    "downgrade",
                    reason=decision.reason,
                    requested_level=level.value,
                )
            self._live_inc(record.tenant)
            live_counted = True
            if record.level is ServiceLevel.IMMEDIATE:
                self._dispatch(record)
            elif record.level is ServiceLevel.RELAXED:
                record.grace_deadline = (
                    self._sim.now + self._config.grace_period_s
                )
                if self._coordinator.below_high_watermark():
                    self._dispatch(record)
                else:
                    self._enqueue(record)
            else:  # BEST_EFFORT
                if self._coordinator.below_low_watermark():
                    self._dispatch(record)
                else:
                    self._enqueue(record)
        except QueryRejectedError as exc:
            reason = "queue_full" if decision.admitted else decision.reason
            self._m_rejected.inc(level=level.value)
            self._m_admission_rejected.inc(reason=reason)
            if live_counted:
                self._live_dec(record.tenant)
            self._queries.pop(query_id, None)
            self._root_spans.pop(query_id, None)
            tracer.end_open(query_id, "error", error=str(exc))
            self._journal_event(record, "reject", error=str(exc), reason=reason)
            self._fingerprints.pop(query_id, None)
            self.obs.activity.finish_rejected(query_id, reason)
            raise
        if self.guard is not None:
            # An idle cluster dispatches (and opens the execution window)
            # synchronously inside the submit above — faster than the
            # next scheduler tick.  One guard pass here means a doomed
            # projection trips before the query can outrun the ticker.
            self.guard.evaluate(self._sim.now)
        return record

    def _live_inc(self, tenant: str) -> None:
        self._tenant_live[tenant] = self._tenant_live.get(tenant, 0) + 1

    def _live_dec(self, tenant: str) -> None:
        count = self._tenant_live.get(tenant, 0) - 1
        if count > 0:
            self._tenant_live[tenant] = count
        else:
            self._tenant_live.pop(tenant, None)

    def _root_span_id(self, query_id: str) -> int | None:
        span = self._root_spans.get(query_id)
        return span.span_id if span is not None else None

    def _journal_event(
        self, record: ServerQuery, event: str, **attrs: object
    ) -> None:
        if not self.obs.journal.enabled:
            return
        fp = self._fingerprints.get(record.query_id)
        self.obs.journal.event(
            event,
            record.query_id,
            span_id=self._root_span_id(record.query_id),
            fingerprint=fp.id if fp is not None else None,
            level=record.level.value,
            **attrs,
        )

    def _enqueue(self, record: ServerQuery) -> None:
        if self._scheduler.depth(record.level) >= self._max_queue_length:
            self._admission.record_queue_full()
            raise QueryRejectedError(
                f"{record.level.value} queue is full "
                f"({self._max_queue_length} queries)"
            )
        finish_tag = self._scheduler.push(record)
        if record.level is ServiceLevel.RELAXED:
            self._grace_seq += 1
            heapq.heappush(
                self._grace_heap,
                (record.grace_deadline, self._grace_seq, record),
            )
        watermark = "high" if record.level is ServiceLevel.RELAXED else "low"
        share = self._scheduler.share_of(record.tenant)
        if self.obs.tracer.enabled:
            self._queue_spans[record.query_id] = self.obs.tracer.start(
                record.query_id,
                "queue",
                level=record.level.value,
                reason=f"above_{watermark}_watermark",
                share=share,
                finish_tag=round(finish_tag, 9),
            )
        self._journal_event(
            record,
            "queue",
            reason=f"above_{watermark}_watermark",
            share=share,
            finish_tag=round(finish_tag, 9),
        )
        self.obs.activity.mark_queued(record.query_id)

    def _dispatch(self, record: ServerQuery) -> None:
        self._close_queue_span(record)
        if self.obs.tracer.enabled:
            self.obs.tracer.start(
                record.query_id, "dispatch", level=record.level.value
            ).finish()
        self._journal_event(
            record,
            "dispatch",
            held_s=round(self._sim.now - record.submitted_at, 9),
        )
        record.dispatched_at = self._sim.now
        self.obs.activity.mark_dispatched(record.query_id)
        record.execution = self._coordinator.submit(
            sql=record.sql,
            cf_enabled=record.level.cf_enabled,
            query_id=record.query_id,
            on_complete=lambda execution: self._completed(record, execution),
            submit_context=self._pending_context(record),
        )

    def _pending_context(self, record: ServerQuery) -> dict[str, object]:
        """The scheduling story EXPLAIN ANALYZE prints in its ``pending:``
        header — how long the server held the query and what the
        admission layer ruled."""
        context: dict[str, object] = {
            "queue_wait_s": round(self._sim.now - record.submitted_at, 9),
            "admission": (
                record.admission.action
                if record.admission is not None
                else "admit"
            ),
        }
        if (
            record.admission is not None
            and record.admission.action != "admit"
        ):
            context["admission_reason"] = record.admission.reason
        return context

    def cancel(self, query_id: str) -> bool:
        """Cancel a query at any pre-terminal stage.

        Works whether the query is still held in a server queue, waiting
        in the VM cluster's queue, or already running.  Returns False if
        it had already finished or failed.
        """
        record = self.query(query_id)
        if record.status.is_terminal:
            return False
        if record.execution is None:
            record.cancelled = True
            self._close_queue_span(record, status="cancelled")
            self._journal_event(record, "cancel", stage="held")
            self.obs.ledger.void(
                query_id,
                tenant=record.tenant,
                level=record.level.value,
                venue="none",
                span_id=self._root_span_id(query_id),
                reason="cancelled_held",
            )
            self._fingerprints.pop(query_id, None)
            self._root_spans.pop(query_id, None)
            self.obs.tracer.end_open(
                query_id, "cancelled", error="cancelled by user"
            )
            self._scheduler.remove(query_id)
            self._live_dec(record.tenant)
            self.obs.activity.finish_cancelled(query_id, "cancelled_held")
            if record.on_finish is not None:
                record.on_finish(record)
            return True
        record.cancelled = True
        return self._coordinator.cancel(query_id)

    def downgrade_query(self, query_id: str, reason: str) -> bool:
        """Demote a held relaxed query to best-effort (the projection
        guard's gentler remedy).  Only a query still waiting in the
        server's relaxed queue is eligible — a dispatched query already
        runs and bills at its admitted rate.  Returns False if the query
        was ineligible."""
        record = self._queries.get(query_id)
        if (
            record is None
            or record.level is not ServiceLevel.RELAXED
            or record.cancelled
            or record.dispatched_at is not None
            or record.execution is not None
        ):
            return False
        self._scheduler.remove(query_id)
        self._close_queue_span(record, status="downgraded")
        record.level = ServiceLevel.BEST_EFFORT
        record.grace_deadline = None
        self._m_admission_downgraded.inc(reason=reason)
        self._journal_event(
            record,
            "downgrade",
            reason=reason,
            requested_level=(
                record.requested_level.value
                if record.requested_level is not None
                else None
            ),
        )
        self.obs.activity.downgrade(
            query_id, ServiceLevel.BEST_EFFORT.value, reason
        )
        if (
            self._coordinator.below_low_watermark()
            or self._scheduler.depth(ServiceLevel.BEST_EFFORT)
            >= self._max_queue_length
        ):
            # Dispatch now — immediately when capacity allows, and as the
            # back-pressure escape hatch when the best-effort queue is
            # full (a downgrade must never morph into a rejection).
            self._dispatch(record)
        else:
            self._enqueue(record)
        return True

    def _close_queue_span(
        self, record: ServerQuery, status: str = "ok"
    ) -> None:
        span = self._queue_spans.pop(record.query_id, None)
        if span is not None:
            span.finish(status, held_s=self._sim.now - record.submitted_at)

    # -- scheduling -----------------------------------------------------------------

    def _tick(self) -> None:
        self._sim.schedule(self._config.scheduler_interval_s, self._tick)
        self._drain()
        if self.guard is not None:
            self.guard.evaluate(self._sim.now)

    def _drain(self) -> None:
        """Re-evaluate held queries against the current load status.

        Grace-expired relaxed queries are forced out first regardless of
        WFQ order (the server guaranteed only the grace-period bound;
        they then queue in the VM cluster).  Then the weighted-fair
        queues drain in finish-tag order while the watermarks allow:
        relaxed below the high watermark, best-effort below the low one.
        """
        now = self._sim.now
        while self._grace_heap and self._grace_heap[0][0] <= now:
            _, _, record = heapq.heappop(self._grace_heap)
            if (
                record.dispatched_at is not None
                or record.cancelled
                or record.level is not ServiceLevel.RELAXED
            ):
                # Already dispatched, cancelled, or guard-downgraded out
                # of the relaxed class (its grace promise lapsed with it).
                continue
            if self._scheduler.claim(record):
                self._dispatch(record)
        while (
            self._scheduler.depth(ServiceLevel.RELAXED) > 0
            and self._coordinator.below_high_watermark()
        ):
            self._dispatch(self._scheduler.pop(ServiceLevel.RELAXED))
        if (
            self._batch_best_effort
            and self._scheduler.depth(ServiceLevel.BEST_EFFORT) >= 2
            and self._coordinator.below_low_watermark()
        ):
            self._dispatch_batch()
            return
        while (
            self._scheduler.depth(ServiceLevel.BEST_EFFORT) > 0
            and self._coordinator.below_low_watermark()
        ):
            self._dispatch(self._scheduler.pop(ServiceLevel.BEST_EFFORT))

    def _dispatch_batch(self) -> None:
        """Send held best-of-effort queries out as one shared-scan batch
        (taken in WFQ dispatch order)."""
        group: list[ServerQuery] = []
        while len(group) < self._batch_size:
            record = self._scheduler.pop(ServiceLevel.BEST_EFFORT)
            if record is None:
                break
            group.append(record)
        for record in group:
            self._close_queue_span(record)
            if self.obs.tracer.enabled:
                self.obs.tracer.start(
                    record.query_id,
                    "dispatch",
                    level=record.level.value,
                    batch=True,
                ).finish()
            self._journal_event(
                record,
                "dispatch",
                batch=True,
                held_s=round(self._sim.now - record.submitted_at, 9),
            )
            self.obs.activity.mark_dispatched(record.query_id)
        executions = self._coordinator.submit_shared_batch(
            [record.sql for record in group],
            [record.query_id for record in group],
        )
        now = self._sim.now
        for record, execution in zip(group, executions):
            record.dispatched_at = now
            record.execution = execution
            execution.on_complete = (
                lambda exec_, rec=record: self._completed(rec, exec_)
            )
            if execution.finished_at is not None:  # failed during planning
                self._completed(record, execution)

    def _completed(self, record: ServerQuery, execution: QueryExecution) -> None:
        span_id = self._root_span_id(record.query_id)
        self._live_dec(record.tenant)
        deadline = self.deadline_for(record.level)
        pending = record.pending_time_s
        slack = (
            deadline - pending
            if deadline is not None and pending is not None
            else None
        )
        reading = None
        if execution.result is not None:
            stats = execution.result.stats
            venue = (
                execution.venue.value
                if execution.venue is not None
                else "none"
            )
            record.price = self._coordinator.cost_model.user_price(
                stats, record.level
            )
            if self.obs.ledger.enabled or self.obs.statements.enabled:
                # One meter reading feeds the ledger, the statement
                # store, and price_nanodollars, so the three surfaces
                # agree to the nanodollar by construction.
                reading = self._coordinator.cost_model.meter(
                    stats,
                    venue,
                    record.price,
                    get_price_per_1000=(
                        self._coordinator.store.profile.get_price_per_1000
                    ),
                )
                record.price_nanodollars = reading.billed_nanodollars
            else:
                record.price_nanodollars = round(
                    record.price * NANOS_PER_DOLLAR
                )
            if self.obs.ledger.enabled and reading is not None:
                self.obs.ledger.charge_query(
                    record.query_id,
                    axes=reading.axes,
                    billed_nanodollars=reading.billed_nanodollars,
                    tenant=record.tenant,
                    level=record.level.value,
                    venue=venue,
                    span_id=span_id,
                    bytes_scanned=stats.bytes_scanned,
                    data_inflation=self._coordinator.config.data_inflation,
                    price_per_tb=self.price_quote(record.level),
                )
            self._m_billed.inc(record.price, level=record.level.value)
            self._m_tenant_billed.inc(record.price, tenant=record.tenant)
            if slack is not None:
                self._m_slack.observe(slack, level=record.level.value)
            if pending is not None:
                self.obs.slo.record(
                    query_id=record.query_id,
                    level=record.level.value,
                    submitted_at=record.submitted_at,
                    finished_at=self._sim.now,
                    deadline_s=deadline,
                    actual_s=pending,
                    billed=record.price,
                )
            root = self._root_spans.pop(record.query_id, None)
            if root is not None:
                self.obs.tracer.start(
                    record.query_id,
                    "bill",
                    parent=root,
                    level=record.level.value,
                    price=record.price,
                    price_per_tb=self.price_quote(record.level),
                    price_fraction=record.level.price_fraction,
                    bytes_scanned=execution.result.stats.bytes_scanned,
                    deadline_s=deadline,
                    slack_s=slack,
                ).finish()
            self.obs.tracer.end_open(record.query_id, "ok")
            if self.obs.activity.enabled:
                projection = self.obs.activity.finish_billed(
                    record.query_id,
                    record.price_nanodollars,
                    axes=reading.axes if reading is not None else None,
                )
                if projection is not None:
                    # Estimated-vs-actual goes to the journal before
                    # _observe_statement pops the fingerprint mapping.
                    self._journal_event(
                        record,
                        "projection",
                        estimated_nanodollars=(
                            projection.estimated_nanodollars
                        ),
                        actual_nanodollars=projection.actual_nanodollars,
                        ape=round(projection.ape, 9),
                        source=projection.source,
                    )
        else:
            # The coordinator's failure path already closed the trace with
            # an error/cancelled status; this is only the safety net.
            self._root_spans.pop(record.query_id, None)
            self.obs.tracer.end_open(
                record.query_id, "error", error=execution.error or ""
            )
            if record.cancelled or execution.error == "cancelled by user":
                self.obs.ledger.void(
                    record.query_id,
                    tenant=record.tenant,
                    level=record.level.value,
                    venue=(
                        execution.venue.value
                        if execution.venue is not None
                        else "none"
                    ),
                    span_id=span_id,
                    reason="cancelled",
                )
                self.obs.activity.finish_cancelled(record.query_id)
            else:
                self.obs.activity.finish_failed(
                    record.query_id, execution.error
                )
        self._observe_statement(
            record,
            execution,
            span_id,
            slack,
            attribution=reading.attribution if reading is not None else None,
        )
        if record.pending_time_s is not None:
            self._m_pending.observe(
                record.pending_time_s, level=record.level.value
            )
        if record.on_finish is not None:
            record.on_finish(record)
        # A finished query frees capacity: give held queries a chance now
        # rather than waiting for the next tick.
        self._drain()

    def _observe_statement(
        self,
        record: ServerQuery,
        execution: QueryExecution,
        span_id: int | None,
        slack: float | None,
        attribution=None,
    ) -> None:
        """Fold one completion into the statement store and the journal
        (including the tail-based capture decision)."""
        obs = self.obs
        if not (obs.statements.enabled or obs.journal.enabled):
            return
        fp = self._fingerprints.pop(record.query_id, None)
        if fp is None:
            return
        error = execution.error is not None
        time_s = execution.execution_time_s or 0.0
        pending = record.pending_time_s
        stats = (
            execution.result.stats if execution.result is not None else None
        )
        venue = (
            execution.venue.value if execution.venue is not None else "none"
        )
        if obs.statements.enabled:
            if attribution is None and stats is not None:
                attribution = self._coordinator.cost_model.attribution(
                    stats,
                    venue,
                    record.price,
                    get_price_per_1000=(
                        self._coordinator.store.profile.get_price_per_1000
                    ),
                )
            obs.statements.record(
                fp,
                record.level.value,
                time_s=time_s,
                pending_s=pending or 0.0,
                billed=record.price,
                attribution=attribution,
                stats=stats,
                plan_shape=execution.plan_shape,
                error=error,
                tenant=record.tenant,
            )
        if not obs.journal.enabled:
            return
        journal = obs.journal
        attrs: dict[str, object] = {
            "venue": venue,
            "execution_s": round(time_s, 9),
            "pending_s": round(pending, 9) if pending is not None else None,
            "slack_s": round(slack, 9) if slack is not None else None,
            "billed_dollars": round(record.price, 12),
            "bytes_scanned": stats.bytes_scanned if stats is not None else 0,
            "rows_produced": (
                stats.rows_produced if stats is not None else 0
            ),
            "plan_shape": execution.plan_shape,
        }
        if error:
            attrs["error"] = execution.error
        journal.event(
            "error" if error else "finish",
            record.query_id,
            span_id=span_id,
            fingerprint=fp.id,
            level=record.level.value,
            **attrs,
        )
        reasons = journal.capture_reasons(
            time_s=execution.execution_time_s,
            billed=record.price if not error else None,
            slack_s=slack,
            error=error,
            downgraded=record.downgraded,
        )
        if reasons:
            try:
                profile = self.query_profile(record.query_id)
            except PixelsError:
                profile = None
            journal.capture(
                record.query_id,
                reasons,
                profile,
                span_id=span_id,
                fingerprint=fp.id,
                level=record.level.value,
                slack_s=round(slack, 9) if slack is not None else None,
                billed_dollars=round(record.price, 12),
            )

    # -- profiling ----------------------------------------------------------------------

    def query_profile(self, query_id: str):
        """The finished query's deterministic cost/time attribution profile.

        Fuses the tracer's span tree (when tracing is on), the executor's
        operator profile, and the billed price split by resource into one
        :class:`~repro.obs.profiler.QueryProfile` — the input for folded
        stacks and the time/$ flame graphs.  The server owns this endpoint
        because it is the one component that knows the bill.
        """
        from repro.engine.executor import QueryStats
        from repro.obs.profiler import build_query_profile

        record = self.query(query_id)
        execution = record.execution
        if execution is None or execution.finished_at is None:
            raise PixelsError(f"query {query_id!r} has not finished")
        timeline = (
            self.obs.tracer.timeline(query_id)
            if self.obs.tracer.enabled
            else None
        )
        venue = (
            execution.venue.value if execution.venue is not None else "none"
        )
        stats = (
            execution.result.stats
            if execution.result is not None
            else QueryStats()
        )
        attribution = self._coordinator.cost_model.attribution(
            stats,
            venue,
            record.price,
            get_price_per_1000=(
                self._coordinator.store.profile.get_price_per_1000
            ),
        )
        return build_query_profile(
            query_id, timeline, execution.profile, attribution
        )

    # -- aggregate statistics ----------------------------------------------------------

    def total_billed_nanodollars(self) -> int:
        """Sum of user-facing charges across finished queries, in exact
        integer nanodollars — the authoritative aggregate (no float
        accumulation drift, reconciled against the metering ledger)."""
        return sum(
            query.price_nanodollars for query in self._queries.values()
        )

    def total_billed(self) -> float:
        """Dollar view of :meth:`total_billed_nanodollars`."""
        return self.total_billed_nanodollars() / NANOS_PER_DOLLAR

    def status_counts(self) -> dict[QueryStatus, int]:
        counts = {status: 0 for status in QueryStatus}
        for query in self._queries.values():
            counts[query.status] += 1
        return counts
