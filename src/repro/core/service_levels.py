"""Service levels and query statuses (paper §3.2 and §4.3)."""

from __future__ import annotations

import enum

from repro.errors import InvalidServiceLevelError


class ServiceLevel(enum.Enum):
    """The three service levels a query can be submitted at (§3.2).

    Each level fixes (a) whether CF acceleration may be used, (b) the
    admission rule against the VM cluster's load, and (c) the price rate.
    The level bounds *pending time only*; execution itself is identical.
    """

    IMMEDIATE = "immediate"
    RELAXED = "relaxed"
    BEST_EFFORT = "best_effort"

    @property
    def cf_enabled(self) -> bool:
        """Only immediate queries may invoke cloud functions (§3.2(1))."""
        return self is ServiceLevel.IMMEDIATE

    @property
    def price_fraction(self) -> float:
        """Price relative to the immediate level (§3.2: 100 %/20 %/10 %)."""
        return {
            ServiceLevel.IMMEDIATE: 1.0,
            ServiceLevel.RELAXED: 0.2,
            ServiceLevel.BEST_EFFORT: 0.1,
        }[self]

    @property
    def display_color(self) -> str:
        """Background colour of the query's result block in Pixels-Rover
        (§4.3 distinguishes the levels by block colour)."""
        return {
            ServiceLevel.IMMEDIATE: "#f8d7da",  # red-ish: most urgent
            ServiceLevel.RELAXED: "#fff3cd",  # amber
            ServiceLevel.BEST_EFFORT: "#d4edda",  # green: most economical
        }[self]

    @staticmethod
    def from_string(name: str) -> "ServiceLevel":
        """Parse a user-supplied level name (several spellings accepted)."""
        normalized = name.strip().lower().replace("-", "_").replace(" ", "_")
        aliases = {
            "best_of_effort": "best_effort",
            "besteffort": "best_effort",
        }
        normalized = aliases.get(normalized, normalized)
        try:
            return ServiceLevel(normalized)
        except ValueError:
            raise InvalidServiceLevelError(
                f"unknown service level {name!r}; expected one of "
                "'immediate', 'relaxed', 'best-of-effort'"
            ) from None


class QueryStatus(enum.Enum):
    """The four statuses a submitted query moves through (§4.3)."""

    PENDING = "pending"  # waiting to execute
    RUNNING = "running"  # executing
    FINISHED = "finished"
    FAILED = "failed"

    @property
    def is_terminal(self) -> bool:
        return self in (QueryStatus.FINISHED, QueryStatus.FAILED)
