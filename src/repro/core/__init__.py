"""The paper's primary contribution: flexible service levels and prices.

:class:`~repro.core.service_levels.ServiceLevel` defines the three
user-facing levels (§3.2) — Immediate, Relaxed, Best-of-effort — and
:class:`~repro.core.query_server.QueryServer` implements their admission
semantics on top of the Coordinator's load-status and CF-enable APIs:

* **Immediate** — submit now with CF acceleration enabled; guaranteed
  immediate execution, $5/TB-scan.
* **Relaxed** — CF disabled; admitted while the VM cluster is below the
  high watermark, otherwise queued up to a grace period (default 5 min)
  so the cluster can scale out; $1/TB-scan.
* **Best-of-effort** — only admitted while the cluster is below the low
  watermark (when it would otherwise scale in); no pending-time
  guarantee; $0.5/TB-scan.

A level bounds pending time only — a relaxed or best-of-effort query still
runs immediately when the cluster is free (§3.2, last paragraph).
"""

from repro.core.query_server import QueryServer, ServerQuery
from repro.core.service_levels import QueryStatus, ServiceLevel

__all__ = ["QueryServer", "QueryStatus", "ServerQuery", "ServiceLevel"]
