"""The layered query-scheduling subsystem behind :class:`QueryServer`.

Three layers, each independently testable:

* :mod:`.admission` — per-tenant quotas, token-bucket rate limits, and
  pressure/budget downgrades applied *before* a query touches a queue;
* :mod:`.wfq` — virtual-time weighted-fair queueing across tenant flows
  within each holdable service level, replacing the old FIFO lists;
* :mod:`.sessions` — deterministic tenant-sharded session fleets that
  drive 10⁴+ simulated clients against the server.

`QueryServer` itself stays a thin façade over these: it owns billing,
observability threading, and the watermark/grace eligibility rules, and
delegates *who waits and who goes next* to this package.
"""

from repro.core.scheduler.admission import (
    ADMIT,
    DOWNGRADE,
    REJECT,
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.core.scheduler.sessions import (
    SessionFleet,
    SessionShard,
    SessionSpec,
    shard_of,
)
from repro.core.scheduler.wfq import (
    DEFAULT_SHARE,
    HELD_LEVELS,
    FairQueue,
    LevelScheduler,
    jain_index,
)

__all__ = [
    "ADMIT",
    "DOWNGRADE",
    "REJECT",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "DEFAULT_SHARE",
    "FairQueue",
    "HELD_LEVELS",
    "LevelScheduler",
    "SessionFleet",
    "SessionShard",
    "SessionSpec",
    "jain_index",
    "shard_of",
]
