"""Virtual-time weighted-fair queueing across tenant flows.

One :class:`FairQueue` arbitrates the held queries of a single service
level.  Every tenant is a *flow*; the queue assigns each arriving query
a virtual **finish tag** (start-time fair queueing):

    start  = max(virtual_now, last_finish[tenant])
    finish = start + cost / share[tenant]

and always dispatches the globally smallest finish tag.  Because tags
are monotone *within* a flow, the smallest tag overall is always some
flow's head, so a single heap implements per-flow FIFO + cross-flow
weighted fairness in O(log n).  With a single tenant the tags collapse
to arrival order and the queue degenerates to exactly the FIFO list it
replaced — which is what keeps the pre-scheduler benchmark baselines
byte-identical.

Everything is driven by the simulation thread and uses integer sequence
numbers for tie-breaks, so dispatch order is deterministic and invariant
to ``REPRO_WORKERS``.

The service levels themselves stay strict *priority classes* on top of
this (the paper's §3.2 admission rules): immediate never queues, relaxed
drains before best-of-effort.  :class:`LevelScheduler` bundles one
FairQueue per holdable level and owns the cross-level accounting
(per-tenant dispatch counts, Jain fairness index, snapshots).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Iterable

from repro.core.service_levels import ServiceLevel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.query_server import ServerQuery

#: Default per-tenant share weight when no explicit share is configured.
DEFAULT_SHARE = 1.0


class FairQueue:
    """Weighted-fair queue over tenant flows for one service level."""

    def __init__(
        self,
        shares: dict[str, float] | None = None,
        default_share: float = DEFAULT_SHARE,
    ) -> None:
        self._shares: dict[str, float] = dict(shares or {})
        self._default_share = float(default_share)
        #: Virtual clock: finish tag of the last dispatched query.
        self._virtual_now = 0.0
        #: Per-flow finish tag of the last *arrived* query.
        self._last_finish: dict[str, float] = {}
        #: Min-heap of (finish_tag, seq, record); cancelled entries are
        #: lazily skipped via the tombstone set.
        self._heap: list[tuple[float, int, "ServerQuery"]] = []
        self._tombstones: set[str] = set()
        self._seq = 0
        self._depths: dict[str, int] = {}
        self._live = 0

    # -- shares ---------------------------------------------------------------

    def share_of(self, tenant: str) -> float:
        return self._shares.get(tenant, self._default_share)

    def set_share(self, tenant: str, share: float) -> None:
        if share <= 0:
            raise ValueError(f"share must be positive, got {share}")
        self._shares[tenant] = float(share)

    # -- queue ops ------------------------------------------------------------

    def __len__(self) -> int:
        return self._live

    def push(self, record: "ServerQuery", cost: float = 1.0) -> float:
        """Enqueue ``record`` under its tenant's flow; returns the
        virtual finish tag the scheduler assigned it."""
        tenant = record.tenant
        share = self.share_of(tenant)
        start = max(self._virtual_now, self._last_finish.get(tenant, 0.0))
        finish = start + cost / share
        self._last_finish[tenant] = finish
        self._seq += 1
        heapq.heappush(self._heap, (finish, self._seq, record))
        record.finish_tag = finish
        self._depths[tenant] = self._depths.get(tenant, 0) + 1
        self._live += 1
        return finish

    def _drop(self, record: "ServerQuery") -> None:
        depth = self._depths.get(record.tenant, 0) - 1
        if depth > 0:
            self._depths[record.tenant] = depth
        else:
            self._depths.pop(record.tenant, None)
        self._live -= 1

    def peek(self) -> "ServerQuery | None":
        """The query the scheduler would dispatch next (or None)."""
        while self._heap:
            _, _, record = self._heap[0]
            if record.query_id in self._tombstones:
                heapq.heappop(self._heap)
                self._tombstones.discard(record.query_id)
                continue
            return record
        return None

    def pop(self) -> "ServerQuery | None":
        """Dequeue the smallest-finish-tag query, advancing virtual time."""
        while self._heap:
            finish, _, record = heapq.heappop(self._heap)
            if record.query_id in self._tombstones:
                self._tombstones.discard(record.query_id)
                continue
            self._virtual_now = max(self._virtual_now, finish)
            self._drop(record)
            return record
        return None

    def remove(self, query_id: str) -> bool:
        """Lazily remove a held query (cancellation path)."""
        for _, _, record in self._heap:
            if (
                record.query_id == query_id
                and query_id not in self._tombstones
            ):
                self._tombstones.add(query_id)
                self._drop(record)
                return True
        return False

    def records(self) -> list["ServerQuery"]:
        """Held queries in dispatch (finish-tag) order — a *view*; the
        heap itself is never exposed, so callers cannot observe or mutate
        a half-drained queue."""
        live = [
            entry
            for entry in self._heap
            if entry[2].query_id not in self._tombstones
        ]
        return [record for _, _, record in sorted(live, key=lambda e: e[:2])]

    def depths(self) -> dict[str, int]:
        """Tenant → held-query count, tenant-sorted (JSON-ready)."""
        return {tenant: self._depths[tenant] for tenant in sorted(self._depths)}


def jain_index(values: Iterable[float]) -> float | None:
    """Jain's fairness index over per-tenant allocations.

    ``(Σx)² / (n · Σx²)`` — 1.0 when every tenant got the same service,
    approaching ``1/n`` under total capture by one tenant.  ``None`` when
    there is nothing to compare (fewer than one tenant or zero service).
    """
    xs = [float(v) for v in values]
    if not xs:
        return None
    square_sum = sum(x * x for x in xs)
    if square_sum == 0.0:
        return None
    total = sum(xs)
    return (total * total) / (len(xs) * square_sum)


#: The two service levels whose queries can be held by the server;
#: dispatch preference follows this order (relaxed before best-effort),
#: which is exactly the paper's watermark semantics: held relaxed exists
#: only above the high watermark, held best-effort dispatches only below
#: the low one, so the strict ordering never starves best-effort.
HELD_LEVELS = (ServiceLevel.RELAXED, ServiceLevel.BEST_EFFORT)


class LevelScheduler:
    """One FairQueue per holdable service level + cross-level accounting.

    This is the weighted-fair core the query server delegates to: it
    owns every held query, assigns virtual finish tags, tracks per-tenant
    dispatch counts for the fairness index, and renders the snapshot the
    dashboard/Rover scheduler panels consume.  It never talks to the
    coordinator — eligibility (watermarks, grace deadlines) stays with
    the caller, which feeds admitted queries in and asks for the next
    dispatchable one.
    """

    def __init__(
        self,
        shares: dict[str, float] | None = None,
        default_share: float = DEFAULT_SHARE,
    ) -> None:
        self._queues: dict[ServiceLevel, FairQueue] = {
            level: FairQueue(shares, default_share) for level in HELD_LEVELS
        }
        self._shares = dict(shares or {})
        self._default_share = float(default_share)
        #: Tenant → queries dispatched *from a hold queue* (WFQ decisions
        #: only; immediate queries never enter the contended queues and
        #: would otherwise drown the fairness signal).
        self._dispatched: dict[str, int] = {}

    # -- queue access ---------------------------------------------------------

    def queue(self, level: ServiceLevel) -> FairQueue:
        try:
            return self._queues[level]
        except KeyError:
            raise ValueError(
                f"service level {level.value!r} has no hold queue"
            ) from None

    def depth(self, level: ServiceLevel) -> int:
        return len(self._queues[level])

    def total_depth(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def push(self, record: "ServerQuery") -> float:
        return self.queue(record.level).push(record)

    def pop(self, level: ServiceLevel) -> "ServerQuery | None":
        record = self._queues[level].pop()
        if record is not None:
            self._dispatched[record.tenant] = (
                self._dispatched.get(record.tenant, 0) + 1
            )
        return record

    def peek(self, level: ServiceLevel) -> "ServerQuery | None":
        return self._queues[level].peek()

    def claim(self, record: "ServerQuery") -> bool:
        """Remove a *specific* held record out of WFQ order (the
        grace-expiry force dispatch), still counting it as a dispatch
        for fairness accounting."""
        queue = self._queues.get(record.level)
        if queue is None or not queue.remove(record.query_id):
            return False
        self._dispatched[record.tenant] = (
            self._dispatched.get(record.tenant, 0) + 1
        )
        return True

    def remove(self, query_id: str) -> bool:
        return any(queue.remove(query_id) for queue in self._queues.values())

    def records(self, level: ServiceLevel) -> list["ServerQuery"]:
        return self.queue(level).records()

    def share_of(self, tenant: str) -> float:
        return self._shares.get(tenant, self._default_share)

    # -- accounting -----------------------------------------------------------

    def dispatched_by_tenant(self) -> dict[str, int]:
        return {
            tenant: self._dispatched[tenant]
            for tenant in sorted(self._dispatched)
        }

    def fairness_index(self) -> float | None:
        """Jain index over per-tenant WFQ dispatch counts."""
        return jain_index(self._dispatched.values())

    def snapshot(self) -> dict:
        """JSON-ready scheduler state (deterministic key order)."""
        shares = {
            tenant: self._shares[tenant] for tenant in sorted(self._shares)
        }
        fairness = self.fairness_index()
        return {
            "queues": {
                level.value: self._queues[level].depths()
                for level in HELD_LEVELS
            },
            "queue_depths": {
                level.value: len(self._queues[level]) for level in HELD_LEVELS
            },
            "dispatched_by_tenant": self.dispatched_by_tenant(),
            "fairness": {
                "jain_dispatched": (
                    round(fairness, 9) if fairness is not None else None
                ),
            },
            "shares": {"default": self._default_share, **shares},
        }
