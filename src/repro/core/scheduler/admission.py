"""The admission layer: per-tenant quotas, rate limits, and downgrades.

Sits in front of the weighted-fair core.  Every submission gets exactly
one :class:`AdmissionDecision` before it touches a queue:

* **admit** — proceed at the requested level (the default policy admits
  everything, so a server built without an explicit
  :class:`AdmissionPolicy` behaves exactly like the pre-scheduler one);
* **downgrade** — proceed, but at ``best_effort`` instead of the
  requested ``relaxed`` level: the query keeps running and bills at the
  *downgraded* level's $/TB rate, it just loses its grace-deadline
  claim.  Triggered by hold-queue pressure, and earlier for tenants over
  their soft spend budget (the :mod:`repro.obs.spend` accountant is
  consulted, never mutated);
* **reject** — refuse with :class:`~repro.errors.QueryRejectedError`
  before anything is queued or billed: a rejected query never reaches
  the coordinator, bills exactly $0, and leaves no ledger events, so it
  reconciles trivially.

Token buckets run on the simulation clock, so every decision is
deterministic and worker-count-invariant.  Immediate queries are never
downgraded — they are the product's hard-deadline tier — but they are
subject to quotas and rate limits like everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.service_levels import ServiceLevel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.spend import SpendAccountant

#: Decision actions, in increasing severity.
ADMIT = "admit"
DOWNGRADE = "downgrade"
REJECT = "reject"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs of the admission layer (all off by default).

    The default instance is inert: no quotas, no rate limits, no
    downgrades — submissions flow to the scheduler untouched, which is
    what keeps every pre-scheduler test and benchmark baseline valid.
    """

    #: Max live (held or executing) queries one tenant may have; None
    #: disables the quota.
    tenant_quota: int | None = None
    #: Token-bucket refill rate per tenant (queries/second); None
    #: disables rate limiting.
    tenant_rate_per_s: float | None = None
    #: Token-bucket capacity (burst size) when rate limiting is on.
    tenant_burst: float = 16.0
    #: Downgrade relaxed → best_effort once the relaxed hold queue holds
    #: at least this many queries; None disables pressure downgrades.
    downgrade_queue_depth: int | None = None
    #: Over-budget tenants (per the spend accountant's soft budgets)
    #: downgrade at this fraction of ``downgrade_queue_depth`` — they
    #: shed load first.  Only meaningful with both a downgrade depth and
    #: a live spend accountant.
    over_budget_fraction: float = 0.5


@dataclass(frozen=True)
class AdmissionDecision:
    """The verdict on one submission."""

    action: str  # admit | downgrade | reject
    level: ServiceLevel  # effective level after the decision
    requested: ServiceLevel
    reason: str

    @property
    def admitted(self) -> bool:
        return self.action != REJECT

    def to_attrs(self) -> dict:
        """Span/journal attribute view of the decision."""
        return {
            "verdict": self.action,
            "reason": self.reason,
            "requested_level": self.requested.value,
        }


class AdmissionController:
    """Stateless policy + per-tenant token buckets on the sim clock."""

    def __init__(
        self,
        policy: AdmissionPolicy | None = None,
        clock: Callable[[], float] | None = None,
        spend: "SpendAccountant | None" = None,
    ) -> None:
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._spend = spend
        #: tenant -> (tokens, last refill timestamp)
        self._buckets: dict[str, tuple[float, float]] = {}
        self.admitted = 0
        self.rejections: dict[str, int] = {}
        self.downgrades: dict[str, int] = {}

    # -- token bucket ---------------------------------------------------------

    def _take_token(self, tenant: str) -> bool:
        rate = self.policy.tenant_rate_per_s
        if rate is None:
            return True
        now = self._clock()
        tokens, last = self._buckets.get(
            tenant, (self.policy.tenant_burst, now)
        )
        tokens = min(self.policy.tenant_burst, tokens + (now - last) * rate)
        if tokens < 1.0:
            self._buckets[tenant] = (tokens, now)
            return False
        self._buckets[tenant] = (tokens - 1.0, now)
        return True

    # -- budgets --------------------------------------------------------------

    def _over_budget(self, tenant: str) -> bool:
        if self._spend is None or not self._spend.enabled:
            return False
        return tenant in self._spend.over_budget()

    # -- the verdict ----------------------------------------------------------

    def decide(
        self,
        tenant: str,
        level: ServiceLevel,
        tenant_live: int,
        relaxed_depth: int,
    ) -> AdmissionDecision:
        """Judge one submission.

        Args:
            tenant: Billing tenant of the submission.
            level: Requested service level.
            tenant_live: The tenant's current held + executing queries.
            relaxed_depth: Current relaxed hold-queue depth (the
                pressure signal for downgrades).
        """
        policy = self.policy
        quota = policy.tenant_quota
        if quota is not None and tenant_live >= quota:
            return self._reject(level, "tenant_quota")
        if not self._take_token(tenant):
            return self._reject(level, "rate_limit")
        if (
            level is ServiceLevel.RELAXED
            and policy.downgrade_queue_depth is not None
        ):
            threshold = policy.downgrade_queue_depth
            reason = "queue_pressure"
            if self._over_budget(tenant):
                threshold = max(
                    1, int(threshold * policy.over_budget_fraction)
                )
                reason = "over_budget"
            if relaxed_depth >= threshold:
                self.downgrades[reason] = self.downgrades.get(reason, 0) + 1
                return AdmissionDecision(
                    DOWNGRADE, ServiceLevel.BEST_EFFORT, level, reason
                )
        self.admitted += 1
        return AdmissionDecision(ADMIT, level, level, "ok")

    def _reject(self, level: ServiceLevel, reason: str) -> AdmissionDecision:
        self.rejections[reason] = self.rejections.get(reason, 0) + 1
        return AdmissionDecision(REJECT, level, level, reason)

    def record_queue_full(self) -> None:
        """Fold the enqueue-time back-pressure rejection into the
        verdict counters (it happens after `decide`, at hold time)."""
        self.rejections["queue_full"] = self.rejections.get("queue_full", 0) + 1

    # -- snapshot -------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready verdict counters (deterministic key order)."""
        return {
            "admitted": self.admitted,
            "rejected": {
                reason: self.rejections[reason]
                for reason in sorted(self.rejections)
            },
            "downgraded": {
                reason: self.downgrades[reason]
                for reason in sorted(self.downgrades)
            },
        }
