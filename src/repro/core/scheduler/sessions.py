"""The sharded session layer: fleets of simulated client sessions.

The *Extensible Database Simulator* line of work (PAPERS.md) motivates
driving 10⁴–10⁶ concurrent sessions against the discrete-event
simulator: each session is pure data (a tenant, a service level, a list
of arrival offsets, and the SQL it replays), so a fleet costs one heap
event per submission, not a thread or coroutine per user.

Sessions are partitioned into **shards** by a deterministic hash of
their tenant (:func:`shard_of` uses CRC-32, never Python's salted
``hash``), so the same tenant always lands on the same shard regardless
of interpreter, worker count, or insertion order.  Shards are an
accounting and back-pressure boundary: each shard counts its own
submissions, rejections, and downgrades, which is what lets the fleet
benchmark report per-shard balance without a central lock — exactly the
structure a real sharded front end would have, collapsed onto one
simulator.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.service_levels import ServiceLevel
from repro.errors import QueryRejectedError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.query_server import QueryServer, ServerQuery
    from repro.sim import Simulator


def shard_of(tenant: str, num_shards: int) -> int:
    """Deterministic shard index for ``tenant`` (CRC-32, not ``hash``,
    which is salted per interpreter run and would break determinism)."""
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    return zlib.crc32(tenant.encode("utf-8")) % num_shards


@dataclass(frozen=True)
class SessionSpec:
    """One simulated client session — pure data, replayed by its shard."""

    session_id: str
    tenant: str
    level: ServiceLevel
    #: Arrival offsets (seconds) at which this session submits ``sql``.
    arrivals: tuple[float, ...]
    sql: str
    result_limit: int | None = None


@dataclass
class SessionShard:
    """One shard's sessions and its local submission accounting."""

    index: int
    sessions: list[SessionSpec] = field(default_factory=list)
    submitted: int = 0
    rejected: int = 0
    downgraded: int = 0

    @property
    def tenants(self) -> list[str]:
        return sorted({spec.tenant for spec in self.sessions})

    def snapshot(self) -> dict:
        return {
            "sessions": len(self.sessions),
            "tenants": len(self.tenants),
            "submitted": self.submitted,
            "rejected": self.rejected,
            "downgraded": self.downgraded,
        }


class SessionFleet:
    """A fleet of sessions sharded by tenant, driven on the simulator.

    ``start()`` schedules every arrival as one simulator event; each
    firing submits through the shared :class:`QueryServer` façade (whose
    admission layer may downgrade or reject it) and updates the owning
    shard's counters.  Everything is deterministic: shard placement is
    CRC-hashed, arrivals come from the caller's seeded generator, and
    the simulator orders equal-time events by insertion sequence.
    """

    def __init__(
        self,
        sim: "Simulator",
        server: "QueryServer",
        num_shards: int = 8,
        on_finish: Callable[["ServerQuery"], None] | None = None,
    ) -> None:
        self._sim = sim
        self._server = server
        self._on_finish = on_finish
        self.shards = [SessionShard(index=i) for i in range(num_shards)]
        self._started = False

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_sessions(self) -> int:
        return sum(len(shard.sessions) for shard in self.shards)

    def add(self, spec: SessionSpec) -> SessionShard:
        """Place ``spec`` on its tenant's shard (deterministic)."""
        if self._started:
            raise RuntimeError("fleet already started")
        shard = self.shards[shard_of(spec.tenant, self.num_shards)]
        shard.sessions.append(spec)
        return shard

    def start(self) -> int:
        """Schedule every session arrival; returns the event count."""
        self._started = True
        scheduled = 0
        for shard in self.shards:
            for spec in shard.sessions:
                for offset in spec.arrivals:
                    self._sim.schedule_at(offset, self._arrival(shard, spec))
                    scheduled += 1
        return scheduled

    def _arrival(
        self, shard: SessionShard, spec: SessionSpec
    ) -> Callable[[], None]:
        return lambda: self._submit(shard, spec)

    def _submit(self, shard: SessionShard, spec: SessionSpec) -> None:
        try:
            record = self._server.submit(
                spec.sql,
                spec.level,
                result_limit=spec.result_limit,
                tenant=spec.tenant,
                on_finish=self._on_finish,
            )
        except QueryRejectedError:
            shard.rejected += 1
            return
        shard.submitted += 1
        if record.level is not record.requested_level:
            shard.downgraded += 1

    # -- accounting -----------------------------------------------------------

    def totals(self) -> dict:
        return {
            "submitted": sum(s.submitted for s in self.shards),
            "rejected": sum(s.rejected for s in self.shards),
            "downgraded": sum(s.downgraded for s in self.shards),
        }

    def snapshot(self) -> dict:
        """JSON-ready fleet state (deterministic ordering)."""
        return {
            "num_shards": self.num_shards,
            "num_sessions": self.num_sessions,
            "totals": self.totals(),
            "shards": [shard.snapshot() for shard in self.shards],
        }
