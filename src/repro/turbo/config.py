"""All tunables of the Turbo runtime, with the paper's numbers as defaults.

Where the paper states a value, the default *is* that value and the field
comment cites the section:

* high watermark 5, low watermark 0.75 (§3.1)
* VM scale-out lag 1–2 minutes (§2, §3.1) — default 90 s
* CF workers: "hundreds in 1 second" (§2) — default 1 s startup
* CF unit price 9–24× VM (§2) — default 12×
* relaxed grace period "e.g. 5 minutes" (§3.2) — default 300 s
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.cache import CacheConfig


@dataclass(frozen=True)
class VmConfig:
    """VM cluster sizing, speed, and autoscaling parameters."""

    min_workers: int = 1
    max_workers: int = 64
    slots_per_worker: int = 2  # concurrent queries one VM executes
    scale_out_lag_s: float = 90.0  # §2: "requires 1-2 minutes to scale"
    high_watermark: float = 5.0  # §3.1: per-worker concurrency ceiling
    low_watermark: float = 0.75  # §3.1: per-worker concurrency floor
    evaluation_interval_s: float = 10.0  # autoscaler check period
    scale_in_window_s: float = 300.0  # averaging window for the low watermark
    scale_in_cooldown_s: float = 300.0  # lazy scale-in (paper footnote 2)
    price_per_worker_s: float = 0.0000236  # ~c5.large on-demand per second
    scan_throughput_bytes_per_s: float = 200e6
    row_throughput_rows_per_s: float = 4e6
    startup_overhead_s: float = 0.2  # per-query dispatch cost on a warm VM


@dataclass(frozen=True)
class CfConfig:
    """Cloud-function service parameters."""

    startup_s: float = 1.0  # §2: "create hundreds of workers in 1 second"
    max_workers_per_query: int = 64
    bytes_per_worker: int = 256 * 1024 * 1024  # scan split granularity
    price_multiplier: float = 12.0  # §2: 9-24x the VM unit price
    scan_throughput_bytes_per_s: float = 150e6  # slightly below a VM core
    row_throughput_rows_per_s: float = 3e6
    merge_overhead_s: float = 0.5  # assembling the materialized view

    def price_per_worker_s(self, vm: VmConfig) -> float:
        return vm.price_per_worker_s * self.price_multiplier


@dataclass(frozen=True)
class PriceTable:
    """User-facing prices per service level (§3.2), $/TB scanned.

    Immediate matches AWS Athena's $5/TB [2]; relaxed is 20 % and
    best-of-effort 10 % of that, exactly as set in the demo.
    """

    immediate_per_tb: float = 5.0
    relaxed_per_tb: float = 1.0
    best_effort_per_tb: float = 0.5


@dataclass(frozen=True)
class TurboConfig:
    """Bundle of every runtime parameter."""

    vm: VmConfig = field(default_factory=VmConfig)
    cf: CfConfig = field(default_factory=CfConfig)
    prices: PriceTable = field(default_factory=PriceTable)
    # Buffer pool fronting the object store.  The VM cluster shares one
    # long-lived (warm) pool; every CF invocation gets a fresh (cold) pool
    # — the same elasticity asymmetry the paper builds on.  Billed
    # bytes-scanned are logical and unaffected by cache hits.
    cache: CacheConfig = field(default_factory=CacheConfig)
    grace_period_s: float = 300.0  # §3.2: relaxed-level grace period
    scheduler_interval_s: float = 5.0  # query-server queue drain period
    # Rows per record batch in the vectorized pipeline executor.  Purely a
    # memory/laziness knob: results are bit-identical for any value >= 1.
    batch_size: int = 4096
    # Morsel-driven parallel scan workers per executor.  0 falls back to
    # the REPRO_WORKERS environment variable (default sequential); like
    # batch_size, results/billing/EXPLAIN are identical for any value.
    workers: int = 0
    # Experiments execute MB-scale generated data but model TB-scale
    # workloads: the cost model multiplies observed bytes/rows by this
    # factor for durations AND billing, so query *shapes* stay real while
    # durations/prices land at the paper's operating point.
    data_inflation: float = 1.0

    @staticmethod
    def experiment(data_inflation: float = 3000.0) -> "TurboConfig":
        """Paper parameters with workload inflation.

        With the default factor, a TPC-H scale-0.3 aggregation scans a few
        modelled GB and takes tens of seconds on one VM slot — long enough
        that a 40-query spike genuinely overloads the cluster during its
        90-second scale-out lag, which is the regime every scheduling
        experiment in the paper lives in.
        """
        return TurboConfig(data_inflation=data_inflation)

    @staticmethod
    def fast() -> "TurboConfig":
        """A variant with short lags for quick unit tests (same ratios)."""
        return TurboConfig(
            vm=VmConfig(
                scale_out_lag_s=9.0,
                evaluation_interval_s=1.0,
                scale_in_window_s=30.0,
                scale_in_cooldown_s=30.0,
            ),
            cf=CfConfig(startup_s=0.1),
            grace_period_s=30.0,
            scheduler_interval_s=0.5,
        )
