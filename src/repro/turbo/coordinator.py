"""The Coordinator: Pixels-Turbo's only long-running component (paper §2).

It manages metadata, parses/plans queries, coordinates execution tasks,
and collects results and statistics (execution time, resource
consumption).  This reproduction adds the two interfaces the paper
contributes (§2, §3.1): the query server can

* check the system's load status (query concurrency vs the watermarks) and
* specify per query whether CF acceleration is enabled.

Execution paths:

* a free VM slot → run the whole plan on that VM;
* no free slot and CF enabled → split the plan, fan the expensive
  sub-plan out to CF workers, feed the result to the cheap top-level plan
  as a materialized view (the query never loads the VM cluster further);
* no free slot and CF disabled → wait in the VM queue (cheaper, slower).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import NoSuchQueryError, PixelsError
from repro.engine.executor import (
    OperatorProfile,
    QueryExecutor,
    QueryResult,
    QueryStats,
)
from repro.engine.optimizer import Optimizer
from repro.engine.planner import Planner
from repro.engine.source import ObjectStoreSource
from repro.obs import Instrumentation, render_analyzed_plan
from repro.sim import Simulator, Trace
from repro.storage.cache import BufferPool
from repro.storage.catalog import Catalog
from repro.storage.object_store import ObjectStore
from repro.turbo.cf_service import CfService
from repro.turbo.config import TurboConfig
from repro.turbo.cost import CostModel
from repro.turbo.faults import FaultConfig, FaultInjector
from repro.turbo.plan_split import split_plan
from repro.turbo.vm_cluster import VmCluster, VmTask, VmWorker


class ExecutionVenue(enum.Enum):
    """Where a query's heavy work ran."""

    VM = "vm"
    CF = "cf"


@dataclass
class QueryExecution:
    """The Coordinator's record of one query (status + statistics)."""

    query_id: str
    sql: str
    submitted_at: float
    cf_enabled: bool
    started_at: float | None = None
    finished_at: float | None = None
    venue: ExecutionVenue | None = None
    result: QueryResult | None = None
    error: str | None = None
    provider_cost: float = 0.0
    cf_workers: int = 0
    retries: int = 0
    explain_text: str | None = None
    #: Per-operator profile of the final successful attempt, captured when
    #: observability is on (the profiler's input); None otherwise.
    profile: OperatorProfile | None = None
    #: Shape hash of the optimized plan (statement-store plan identity),
    #: captured when the statement store or journal is live.
    plan_shape: str | None = None
    #: Scheduling context the submitter (the query server) attached —
    #: queue wait + admission verdict; EXPLAIN ANALYZE's ``pending:``
    #: header renders it next to the execution header.
    submit_context: dict | None = field(default=None, repr=False)
    on_complete: Callable[["QueryExecution"], None] | None = field(
        default=None, repr=False
    )

    @property
    def succeeded(self) -> bool:
        return self.finished_at is not None and self.error is None

    @property
    def pending_time_s(self) -> float | None:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def execution_time_s(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def bytes_scanned(self) -> int:
        return self.result.stats.bytes_scanned if self.result else 0


def _graft_cf_profile(
    top: OperatorProfile, sub: OperatorProfile
) -> OperatorProfile:
    """Attach the CF sub-plan's operator profile under the top plan's
    MaterializedView leaf, rebuilding one end-to-end tree for the profiler.

    Only the per-operator ``self_time_s`` (and self storage deltas) stay
    meaningful across the graft — the top tree's cumulative fields predate
    the splice — which is exactly why the profiler works from selfs.
    """
    anchor = None
    stack = [top]
    while stack:
        node = stack.pop()
        if node.name == "MaterializedView":
            anchor = node
        stack.extend(node.children)
    (anchor if anchor is not None else top).children.append(sub)
    return top


def _self_time_total(profile: OperatorProfile) -> float:
    """Sum of per-operator self times over a profile tree — the additive
    work measure (cumulative times predate a CF graft; selfs survive)."""
    total = profile.self_time_s
    for child in profile.children:
        total += _self_time_total(child)
    return total


def _text_table(text: str):
    """A one-column VARCHAR table whose rows are ``text``'s lines — the
    result-set form of EXPLAIN output, renderable by any result surface."""
    from repro.storage.table import TableData
    from repro.storage.types import ColumnVector, DataType

    return TableData(
        {"plan": ColumnVector.from_values(DataType.VARCHAR, text.split("\n"))}
    )


class Coordinator:
    """Metadata + scheduling brain of Pixels-Turbo."""

    def __init__(
        self,
        sim: Simulator,
        config: TurboConfig,
        catalog: Catalog,
        store: ObjectStore,
        default_schema: str,
        trace: Trace | None = None,
        faults: FaultConfig | None = None,
        obs: Instrumentation | None = None,
    ) -> None:
        self._sim = sim
        self._config = config
        self.catalog = catalog
        self._store = store
        self._default_schema = default_schema
        self.trace = trace if trace is not None else Trace()
        self.obs = obs if obs is not None else Instrumentation.disabled()
        # The VM tier's buffer pool: VMs are long-running, so one pool
        # stays warm across every VM-executed query.  CF invocations get a
        # fresh pool each (see _run_on_cf) — functions cold-start.
        self.vm_buffer_pool = BufferPool.from_config(store, config.cache)
        self.vm_cluster = VmCluster(sim, config.vm, self.trace, obs=self.obs)
        self.cf_service = CfService(
            sim, config.cf, config.vm, self.trace, obs=self.obs
        )
        self.cost_model = CostModel(config)
        self._optimizer = Optimizer()
        self._executions: dict[str, QueryExecution] = {}
        self._query_counter = 0
        # query_id -> (pending completion/crash event, worker) for queries
        # currently occupying a VM slot; used by cancel().
        self._vm_running: dict[str, tuple[object, VmWorker]] = {}
        self.fault_injector = (
            FaultInjector(faults, sim.rng.stream("faults"))
            if faults is not None
            else None
        )
        registry = self.obs.metrics
        self._m_queries = registry.counter(
            "pixels_queries_total", "Finished queries by venue and status"
        )
        self._m_bytes = registry.counter(
            "pixels_bytes_scanned_total", "Logical bytes scanned (billing basis)"
        )
        self._m_provider = registry.counter(
            "pixels_provider_cost_dollars_total",
            "Infrastructure spend accrued by venue",
        )
        self._m_retries = registry.counter(
            "pixels_query_retries_total", "Execution retries by venue"
        )
        self._m_exec_seconds = registry.histogram(
            "pixels_query_execution_seconds", "Simulated execution time by venue"
        )
        registry.add_collector(self._collect_storage_metrics)

    def _meter_provider(self, query_id: str, cost: float, venue: str) -> None:
        """Accrue provider-side spend: the metric plus a provider-account
        meter event in the ledger (the operator's worker-second bill for
        this query at this venue)."""
        self._m_provider.inc(cost, venue=venue)
        if self.obs.ledger.enabled:
            from repro.obs.profiler import NANOS_PER_DOLLAR

            self.obs.ledger.charge(
                query_id,
                axis="compute",
                nanodollars=round(cost * NANOS_PER_DOLLAR),
                account="provider",
                venue=venue,
            )

    def _collect_storage_metrics(self) -> None:
        """Mirror storage/cache counters into the registry at scrape time."""
        registry = self.obs.metrics
        metrics = self._store.metrics
        store_total = registry.counter(
            "pixels_store_requests_total", "Object store requests by kind"
        )
        store_total.set_total(metrics.get_requests, kind="get")
        store_total.set_total(metrics.put_requests, kind="put")
        store_bytes = registry.counter(
            "pixels_store_bytes_total", "Object store payload bytes by direction"
        )
        store_bytes.set_total(metrics.bytes_read, direction="read")
        store_bytes.set_total(metrics.bytes_written, direction="written")
        registry.counter(
            "pixels_logical_bytes_scanned_total",
            "Logical (billed) bytes scanned across every reader",
        ).set_total(metrics.logical_bytes_scanned)
        cache_events = registry.counter(
            "pixels_cache_events_total", "Buffer-pool events by kind and outcome"
        )
        cache_events.set_total(metrics.footer_cache_hits, kind="footer", outcome="hit")
        cache_events.set_total(
            metrics.footer_cache_misses, kind="footer", outcome="miss"
        )
        cache_events.set_total(metrics.chunk_cache_hits, kind="chunk", outcome="hit")
        cache_events.set_total(metrics.chunk_cache_misses, kind="chunk", outcome="miss")
        cache_events.set_total(
            metrics.chunk_cache_evictions, kind="chunk", outcome="eviction"
        )
        if self.vm_buffer_pool is not None:
            registry.gauge(
                "pixels_vm_pool_chunk_bytes", "VM buffer pool occupancy in bytes"
            ).set(self.vm_buffer_pool.cached_chunk_bytes)
            registry.gauge(
                "pixels_vm_pool_entries", "VM buffer pool entries by kind"
            ).set(self.vm_buffer_pool.cached_footers, kind="footer")
            registry.gauge("pixels_vm_pool_entries", "").set(
                self.vm_buffer_pool.cached_chunks, kind="chunk"
            )

    @property
    def config(self) -> TurboConfig:
        return self._config

    @property
    def store(self) -> ObjectStore:
        return self._store

    # -- load-status API (paper §2: "check the system's load status") -----------

    @property
    def concurrency(self) -> int:
        return self.vm_cluster.concurrency

    @property
    def concurrency_per_worker(self) -> float:
        return self.vm_cluster.concurrency_per_worker

    def below_high_watermark(self) -> bool:
        """Whether a new VM-only query would not overload the cluster."""
        return self.concurrency_per_worker < self._config.vm.high_watermark

    def below_low_watermark(self) -> bool:
        """Whether the cluster is idle enough that it would otherwise
        scale in (the best-of-effort admission condition)."""
        return self.concurrency_per_worker < self._config.vm.low_watermark

    # -- queries -------------------------------------------------------------------

    def execution(self, query_id: str) -> QueryExecution:
        try:
            return self._executions[query_id]
        except KeyError:
            raise NoSuchQueryError(f"no query {query_id!r}") from None

    @property
    def executions(self) -> list[QueryExecution]:
        return list(self._executions.values())

    def submit(
        self,
        sql: str,
        cf_enabled: bool,
        query_id: str | None = None,
        on_complete: Callable[[QueryExecution], None] | None = None,
        submit_context: dict | None = None,
    ) -> QueryExecution:
        """Accept a query for execution at the current simulated time.

        ``cf_enabled`` is the per-query switch this paper adds to
        Pixels-Turbo (§3.1): enabled → the query may be accelerated with
        CFs when the VM cluster is overloaded (immediate execution);
        disabled → the query waits for VM capacity.  ``submit_context``
        carries the submitter's scheduling story (queue wait, admission
        verdict) into EXPLAIN ANALYZE's ``pending:`` header.
        """
        if query_id is None:
            self._query_counter += 1
            query_id = f"q-{self._query_counter}"
        if query_id in self._executions:
            raise PixelsError(f"duplicate query id {query_id!r}")
        execution = QueryExecution(
            query_id=query_id,
            sql=sql,
            submitted_at=self._sim.now,
            cf_enabled=cf_enabled,
            submit_context=submit_context,
            on_complete=on_complete,
        )
        self._executions[query_id] = execution
        plan_span = self.obs.tracer.start(query_id, "plan")
        try:
            plan, explain_mode = self._prepare(sql)
        except PixelsError as error:
            plan_span.finish("error", error=str(error))
            self._fail(execution, str(error))
            return execution
        plan_span.finish("ok")
        if self.obs.statements.enabled or self.obs.journal.enabled:
            from repro.obs.fingerprint import plan_shape_hash

            execution.plan_shape = plan_shape_hash(plan)
        if explain_mode == "plan":
            # Pure EXPLAIN renders without occupying any venue and bills
            # nothing (no bytes are scanned).
            execution.explain_text = self._render_plan_report(plan, cf_enabled)
            self._succeed(
                execution,
                QueryResult(_text_table(execution.explain_text), QueryStats()),
            )
            return execution
        if explain_mode == "analyze":
            # EXPLAIN ANALYZE really executes; it is pinned to the VM path
            # so the profile covers one executor run end-to-end.
            self._run_on_vm(execution, plan, analyze=True)
        elif self._choose_cf(cf_enabled):
            self._run_on_cf(execution, plan)
        else:
            self._run_on_vm(execution, plan)
        return execution

    def _choose_cf(self, cf_enabled: bool) -> bool:
        """The adaptive-acceleration decision (§3.1): CF only when the
        query allows it *and* the VM cluster has no free slot.  Baselines
        override this to force one venue."""
        return cf_enabled and not self.vm_cluster.has_free_slot()

    def _prepare(self, sql: str) -> tuple[object, str | None]:
        """Parse + plan; returns ``(plan, explain_mode)`` where the mode is
        None for a plain query, ``"plan"`` for EXPLAIN, ``"analyze"`` for
        EXPLAIN ANALYZE."""
        from repro.engine.sql import ast as sql_ast
        from repro.engine.sql.parser import parse_sql

        statement = parse_sql(sql)
        explain_mode: str | None = None
        if isinstance(statement, sql_ast.Explain):
            explain_mode = "analyze" if statement.analyze else "plan"
            statement = statement.statement
        planner = Planner(self.catalog, self._default_schema)
        return self._optimizer.optimize(planner.plan(statement)), explain_mode

    def _plan(self, sql: str):
        plan, explain_mode = self._prepare(sql)
        if explain_mode is not None:
            raise PixelsError("EXPLAIN is not supported on this execution path")
        return plan

    def execute_ddl(self, sql: str) -> str:
        """Run a DDL statement against the coordinator's metadata.

        ``CREATE TABLE`` registers the table (with a storage location under
        the warehouse bucket) and writes an empty columnar file so the table
        is immediately scannable; ``DROP TABLE`` removes the catalog entry
        and deletes its files.  Returns a human-readable confirmation.
        """
        from repro.engine.sql import ast as sql_ast
        from repro.engine.sql.parser import parse_sql
        from repro.storage.catalog import ColumnMeta
        from repro.storage.table import TableData, TableWriter
        from repro.storage.types import DataType

        statement = parse_sql(sql)
        if isinstance(statement, sql_ast.CreateTable):
            try:
                columns = [
                    ColumnMeta(name, DataType.from_string(type_name))
                    for name, type_name in statement.columns
                ]
            except ValueError as exc:
                raise PixelsError(str(exc)) from exc
            bucket = "warehouse"
            prefix = f"{self._default_schema}/{statement.name}"
            self._store.create_bucket(bucket)
            self.catalog.create_table(
                self._default_schema,
                statement.name,
                columns,
                bucket=bucket,
                prefix=prefix,
            )
            schema = [(c.name, c.dtype) for c in columns]
            TableWriter(self._store, bucket, prefix).write(TableData.empty(schema))
            return f"created table {statement.name}"
        if isinstance(statement, sql_ast.DropTable):
            table = self.catalog.table(self._default_schema, statement.name)
            if table.bucket and table.prefix:
                for key in self._store.list_keys(
                    table.bucket, table.prefix + "/"
                ):
                    self._store.delete(table.bucket, key)
            self.catalog.drop_table(self._default_schema, statement.name)
            return f"dropped table {statement.name}"
        raise PixelsError("execute_ddl expects CREATE TABLE or DROP TABLE")

    def explain(self, sql: str, cf_enabled: bool = True) -> str:
        """The optimized physical plan plus an execution annotation: the
        venue the coordinator would choose right now, the cost-model
        estimates for both venues, and the CF fan-out from the plan
        splitter — what an operator looks at before choosing a service
        level for an expensive query."""
        plan, _ = self._prepare(sql)
        return self._render_plan_report(plan, cf_enabled)

    def explain_analyze(self, sql: str) -> str:
        """Execute ``sql`` inline (VM buffer pool, no queueing or venue
        scheduling) and render the plan annotated with each operator's
        actual rows, batches, bytes, GETs, cache hits, and deterministic
        virtual execution time."""
        plan, _ = self._prepare(sql)
        executor = QueryExecutor(
            ObjectStoreSource(self._store, cache=self.vm_buffer_pool),
            batch_size=self._config.batch_size,
            workers=self._config.workers or None,
        )
        result = executor.execute(plan, analyze=True)
        assert result.profile is not None
        return render_analyzed_plan(
            plan,
            result.profile,
            result.stats,
            context={
                "workers": executor.workers,
                "batch_size": executor.batch_size,
            },
        )

    def _estimate_stats(self, plan) -> QueryStats:
        """Pre-execution scan-size estimate from catalog storage sizes,
        scaled by each scan's projected column fraction.  Row counts are
        unknown before execution, so the estimate covers the byte terms
        of the cost model only."""
        from repro.engine.plan import plan_scans

        estimated = 0
        for scan in plan_scans(plan):
            if not scan.table.bucket or not scan.table.prefix:
                continue
            total = self._store.total_bytes(scan.table.bucket, scan.table.prefix)
            width = max(len(scan.table.columns), 1)
            estimated += int(total * len(scan.columns) / width)
        return QueryStats(bytes_scanned=estimated)

    def _render_plan_report(self, plan, cf_enabled: bool) -> str:
        estimate = self._estimate_stats(plan)
        vm_estimate = self.cost_model.vm_execution(estimate)
        cf_estimate = self.cost_model.cf_execution(estimate)
        use_cf = self._choose_cf(cf_enabled)
        if use_cf:
            venue_reason = (
                "cf — cf acceleration enabled and the vm cluster has no free slot"
            )
        elif cf_enabled:
            venue_reason = "vm — a vm slot is free"
        else:
            venue_reason = "vm — cf acceleration disabled for this query"
        lines = [plan.explain(), "", "-- execution --", f"venue: {venue_reason}"]
        lines.append(
            f"estimated bytes scanned: {estimate.bytes_scanned}"
            " (from catalog storage sizes x projection width)"
        )
        lines.append(
            f"vm estimate: duration {vm_estimate.duration_s:.3f}s,"
            f" provider cost ${vm_estimate.provider_cost:.6f}"
        )
        lines.append(
            f"cf estimate: {cf_estimate.num_workers} workers,"
            f" duration {cf_estimate.duration_s:.3f}s,"
            f" provider cost ${cf_estimate.provider_cost:.6f}"
        )
        split = split_plan(plan)
        lines.append(
            f"cf fan-out: {cf_estimate.num_workers} workers execute the"
            f" sub-plan rooted at {type(split.sub).__name__}; the top-level"
            f" plan consumes it as {split.view.name}"
        )
        return "\n".join(lines)

    # -- VM path ---------------------------------------------------------------------

    def _run_on_vm(
        self, execution: QueryExecution, plan, analyze: bool = False
    ) -> None:
        queue_span = self.obs.tracer.start(execution.query_id, "vm_queue")
        task = VmTask(
            task_id=execution.query_id,
            on_start=lambda worker: self._vm_started(
                execution, plan, worker, analyze, queue_span
            ),
        )
        self.vm_cluster.submit(task)

    def _vm_started(
        self,
        execution: QueryExecution,
        plan,
        worker: VmWorker,
        analyze: bool = False,
        queue_span=None,
    ) -> None:
        if queue_span is not None:
            queue_span.finish("ok")
        if execution.started_at is None:
            execution.started_at = self._sim.now
        execution.venue = ExecutionVenue.VM
        tracer = self.obs.tracer
        execute_span = tracer.start(
            execution.query_id, "execute", venue="vm", worker=worker.worker_id
        )
        # Profiles are captured whenever tracing is on (the profiler fuses
        # them with the span tree); building one changes neither the result
        # nor the stats billing derives from, preserving observe-invariance.
        capture_profile = analyze or tracer.enabled
        try:
            executor = QueryExecutor(
                ObjectStoreSource(self._store, cache=self.vm_buffer_pool),
                batch_size=self._config.batch_size,
                workers=self._config.workers or None,
            )
            result = executor.execute(plan, analyze=capture_profile)
        except PixelsError as error:
            execute_span.finish("error", error=str(error))
            self.vm_cluster.release(worker)
            self._fail(execution, str(error))
            return
        execution.profile = result.profile
        if analyze and result.profile is not None:
            pending = None
            if execution.submit_context is not None:
                # Server-submitted ANALYZE: print the scheduling story
                # (server queue wait, admission verdict, VM queue) so a
                # slow query is attributable without opening the trace.
                pending = dict(execution.submit_context)
                pending["vm_queue_s"] = round(
                    self._sim.now - execution.submitted_at, 9
                )
            execution.explain_text = render_analyzed_plan(
                plan,
                result.profile,
                result.stats,
                context={
                    "workers": executor.workers,
                    "batch_size": executor.batch_size,
                },
                pending=pending,
            )
            result = QueryResult(
                _text_table(execution.explain_text), result.stats, result.profile
            )
        self._record_scan_span(execution.query_id, execute_span, result.stats)
        estimate = self.cost_model.vm_execution(result.stats)
        # Register the execution window with the live activity registry:
        # progress and bill projections are derived from this window (a
        # no-op for queries never submitted through a query server).
        self.obs.activity.begin_execution(
            execution.query_id,
            venue="vm",
            duration_s=estimate.duration_s,
            profile=result.profile,
            stats=result.stats,
        )
        if self.fault_injector is not None and self.fault_injector.vm_task_fails():
            # The worker crashes partway through; the partial work is still
            # paid for, the worker is retired, and the query retries on the
            # remaining capacity.
            fraction = self.fault_injector.failure_point()
            partial_cost = estimate.provider_cost * fraction
            execution.provider_cost += partial_cost
            self._meter_provider(execution.query_id, partial_cost, venue="vm")

            def crash() -> None:
                execute_span.finish("retry", reason="vm worker crashed")
                self._vm_running.pop(execution.query_id, None)
                self.vm_cluster.release(worker)
                self.vm_cluster.fail_worker(worker)
                self._retry(execution, plan, reason="VM worker crashed")

            event = self._sim.schedule(estimate.duration_s * fraction, crash)
            self._vm_running[execution.query_id] = (event, worker)
            return
        execution.provider_cost += estimate.provider_cost
        self._meter_provider(
            execution.query_id, estimate.provider_cost, venue="vm"
        )

        def finish() -> None:
            execute_span.finish(
                "ok",
                bytes_scanned=result.stats.bytes_scanned,
                provider_cost=estimate.provider_cost,
            )
            self._vm_running.pop(execution.query_id, None)
            self.vm_cluster.release(worker)
            self._succeed(execution, result)

        event = self._sim.schedule(estimate.duration_s, finish)
        self._vm_running[execution.query_id] = (event, worker)

    def _record_scan_span(
        self, query_id: str, parent, stats: QueryStats
    ) -> None:
        """An instant child span carrying the scan-side accounting."""
        if not self.obs.tracer.enabled:
            return
        self.obs.tracer.start(
            query_id,
            "scan",
            parent=parent,
            bytes_scanned=stats.bytes_scanned,
            rows_scanned=stats.rows_scanned,
            get_requests=stats.get_requests,
            cache_hits=stats.cache_hits,
            cache_misses=stats.cache_misses,
            row_groups_skipped=stats.row_groups_skipped,
        ).finish("ok")

    def _retry(self, execution: QueryExecution, plan, reason: str) -> None:
        assert self.fault_injector is not None
        if execution.retries >= self.fault_injector.config.max_retries:
            self._fail(
                execution,
                f"{reason}; gave up after {execution.retries} retries",
            )
            return
        execution.retries += 1
        self._m_retries.inc(venue="vm")
        self._run_on_vm(execution, plan)

    # -- CF path ---------------------------------------------------------------------

    def _run_on_cf(self, execution: QueryExecution, plan) -> None:
        execution.started_at = self._sim.now
        execution.venue = ExecutionVenue.CF
        execute_span = self.obs.tracer.start(
            execution.query_id, "execute", venue="cf"
        )
        split = split_plan(plan)
        try:
            # Each CF invocation starts with a cold, invocation-private
            # pool: it still coalesces range-GETs and reuses chunks within
            # the query, but no warmth carries across invocations.
            cf_pool = BufferPool.from_config(self._store, self._config.cache)
            executor = QueryExecutor(
                ObjectStoreSource(self._store, cache=cf_pool),
                batch_size=self._config.batch_size,
                workers=self._config.workers or None,
            )
            # Incremental merge: the sub-plan's result flows into the
            # top-level plan as a batch stream, so the merge step consumes
            # fragment output as it is produced instead of waiting for the
            # whole materialized view — and a top that stops early (LIMIT)
            # stops the sub-plan's remaining scan work.
            sub_exec = executor.execute_stream(split.sub)
            split.attach_stream(sub_exec.batches())
            capture_profile = self.obs.tracer.enabled
            top_result = executor.execute(split.top, analyze=capture_profile)
        except PixelsError as error:
            execute_span.finish("error", error=str(error))
            self._fail(execution, str(error))
            return
        merge_at = None
        if capture_profile and top_result.profile is not None:
            sub_profile = sub_exec.profile()
            # The fraction of the execution window spent in the fanned-out
            # sub-plan; past it the query is in its VM-side merge phase
            # (the activity registry's "merging" lifecycle state).
            sub_work = _self_time_total(sub_profile)
            top_work = _self_time_total(top_result.profile)
            if sub_work + top_work > 0:
                merge_at = round(sub_work / (sub_work + top_work), 9)
            execution.profile = _graft_cf_profile(
                top_result.profile, sub_profile
            )
        # ``sub_exec.stats`` is read after the top plan drained (or
        # abandoned) the stream, so it reflects exactly the sub-plan work
        # performed — the CF billing basis.
        sub_stats = sub_exec.stats
        # The top-level plan consumes the materialized view; the heavy
        # statistics (bytes scanned, GETs, cache traffic) come from the CF
        # sub-plan; the merge step contributes its own operator counts.
        merged_stats = QueryStats(
            bytes_scanned=sub_stats.bytes_scanned,
            scan_latency_s=sub_stats.scan_latency_s,
            rows_scanned=sub_stats.rows_scanned,
            rows_produced=top_result.stats.rows_produced,
            operators=sub_stats.operators + top_result.stats.operators,
            get_requests=sub_stats.get_requests
            + top_result.stats.get_requests,
            footer_gets=sub_stats.footer_gets + top_result.stats.footer_gets,
            chunk_gets=sub_stats.chunk_gets + top_result.stats.chunk_gets,
            cache_hits=sub_stats.cache_hits + top_result.stats.cache_hits,
            cache_misses=sub_stats.cache_misses
            + top_result.stats.cache_misses,
            cache_evictions=sub_stats.cache_evictions
            + top_result.stats.cache_evictions,
            row_groups_skipped=sub_stats.row_groups_skipped
            + top_result.stats.row_groups_skipped,
        )
        result = QueryResult(top_result.data, merged_stats)
        estimate = self.cost_model.cf_execution(sub_stats)
        execution.cf_workers = estimate.num_workers
        self._record_scan_span(execution.query_id, execute_span, sub_stats)
        if self.obs.tracer.enabled:
            self.obs.tracer.start(
                execution.query_id,
                "merge",
                parent=execute_span,
                rows_produced=top_result.stats.rows_produced,
                batches=sub_exec.batches_emitted,
            ).finish("ok")
        execute_span.set(cf_workers=estimate.num_workers)
        self._launch_cf(execution, result, estimate, execute_span, merge_at)

    def _launch_cf(
        self,
        execution: QueryExecution,
        result,
        estimate,
        execute_span=None,
        merge_at: float | None = None,
    ) -> None:
        tracer = self.obs.tracer
        invoke_span = tracer.start(
            execution.query_id,
            "cf_invoke",
            parent=execute_span,
            workers=estimate.num_workers,
            attempt=execution.retries,
        )
        if (
            self.fault_injector is not None
            and self.fault_injector.cf_invocation_fails()
        ):
            # Failed function time is still billed; retry the fan-out.
            fraction = self.fault_injector.failure_point()
            partial = estimate.duration_s * fraction
            partial_cost = estimate.provider_cost * fraction
            execution.provider_cost += partial_cost
            self._meter_provider(execution.query_id, partial_cost, venue="cf")
            # The partial attempt's window (it dies before the merge; the
            # retry re-registers a fresh full window).
            self.obs.activity.begin_execution(
                execution.query_id,
                venue="cf",
                duration_s=partial,
                profile=execution.profile,
                stats=result.stats,
            )

            def retry() -> None:
                if execution.retries >= self.fault_injector.config.max_retries:
                    invoke_span.finish("error", error="cf invocation failed")
                    if execute_span is not None:
                        execute_span.finish("error", error="cf invocation failed")
                    self._fail(
                        execution,
                        "CF invocation failed; gave up after "
                        f"{execution.retries} retries",
                    )
                    return
                invoke_span.finish("retry", reason="cf invocation failed")
                execution.retries += 1
                self._m_retries.inc(venue="cf")
                self._launch_cf(
                    execution, result, estimate, execute_span, merge_at
                )

            self.cf_service.invoke(
                execution.query_id, estimate.num_workers, partial,
                on_complete=retry,
            )
            return
        execution.provider_cost += estimate.provider_cost
        self._meter_provider(
            execution.query_id, estimate.provider_cost, venue="cf"
        )
        self.obs.activity.begin_execution(
            execution.query_id,
            venue="cf",
            duration_s=estimate.duration_s,
            profile=execution.profile,
            stats=result.stats,
            merge_at=merge_at,
        )

        def completed() -> None:
            invoke_span.finish("ok")
            if execute_span is not None:
                execute_span.finish(
                    "ok",
                    bytes_scanned=result.stats.bytes_scanned,
                    provider_cost=execution.provider_cost,
                )
            self._succeed(execution, result)

        self.cf_service.invoke(
            execution.query_id,
            estimate.num_workers,
            estimate.duration_s,
            on_complete=completed,
        )

    # -- batch optimization (paper §5: "opportunities for batch query
    #    optimization") -----------------------------------------------------------------

    def submit_shared_batch(
        self,
        sqls: list[str],
        query_ids: list[str] | None = None,
        on_complete: Callable[[QueryExecution], None] | None = None,
    ) -> list[QueryExecution]:
        """Execute several non-urgent queries as one shared-scan batch.

        The batch occupies a single VM slot; base tables referenced by
        more than one member are fetched once (see
        :mod:`repro.turbo.batching`).  Every member gets its own
        QueryExecution with its own result and bill; the shared fetch
        shows up as a lower combined provider cost, split evenly.
        """
        from repro.turbo.batching import execute_shared_batch

        if query_ids is None:
            query_ids = []
            for _ in sqls:
                self._query_counter += 1
                query_ids.append(f"q-{self._query_counter}")
        executions = []
        plans = []
        members: list[QueryExecution] = []
        for sql, query_id in zip(sqls, query_ids):
            execution = QueryExecution(
                query_id=query_id,
                sql=sql,
                submitted_at=self._sim.now,
                cf_enabled=False,
                on_complete=on_complete,
            )
            self._executions[query_id] = execution
            executions.append(execution)
            plan_span = self.obs.tracer.start(query_id, "plan", batch=True)
            try:
                plans.append(self._plan(sql))
                members.append(execution)
                plan_span.finish("ok")
                if self.obs.statements.enabled or self.obs.journal.enabled:
                    from repro.obs.fingerprint import plan_shape_hash

                    execution.plan_shape = plan_shape_hash(plans[-1])
            except PixelsError as error:
                plan_span.finish("error", error=str(error))
                self._fail(execution, str(error))
        if not members:
            return executions
        batch = execute_shared_batch(
            plans,
            self._store,
            ObjectStoreSource(self._store, cache=self.vm_buffer_pool),
            cache=self.vm_buffer_pool,
        )
        estimate = self.cost_model.vm_execution(batch.combined)
        per_member_cost = estimate.provider_cost / len(members)
        self.trace.record(
            "batch.bytes_saved", self._sim.now, batch.shared_stats.bytes_saved
        )

        def started(worker: VmWorker) -> None:
            member_spans = []
            for execution, result in zip(members, batch.results):
                execution.started_at = self._sim.now
                execution.venue = ExecutionVenue.VM
                execution.provider_cost += per_member_cost
                self._meter_provider(
                    execution.query_id, per_member_cost, venue="vm"
                )
                self.obs.activity.begin_execution(
                    execution.query_id,
                    venue="vm",
                    duration_s=estimate.duration_s,
                    stats=result.stats,
                )
                member_spans.append(
                    self.obs.tracer.start(
                        execution.query_id,
                        "execute",
                        venue="vm",
                        batch=True,
                        batch_size=len(members),
                        bytes_saved=batch.shared_stats.bytes_saved,
                    )
                )

            def finish() -> None:
                self.vm_cluster.release(worker)
                for execution, result, span in zip(
                    members, batch.results, member_spans
                ):
                    span.finish(
                        "ok", bytes_scanned=result.stats.bytes_scanned
                    )
                    self._succeed(execution, result)

            self._sim.schedule(estimate.duration_s, finish)

        self.vm_cluster.submit(
            VmTask(task_id=f"batch-{members[0].query_id}", on_start=started)
        )
        return executions

    # -- cancellation --------------------------------------------------------------------

    def cancel(self, query_id: str) -> bool:
        """Cancel a pending or running query.

        Pending VM-queued queries are removed from the queue; running VM
        queries have their slot freed at once; CF-accelerated queries are
        marked failed immediately but their invocations run (and bill) to
        completion — functions cannot be recalled once launched.  Returns
        False if the query had already finished.
        """
        execution = self.execution(query_id)
        if execution.finished_at is not None:
            return False
        running = self._vm_running.pop(query_id, None)
        if running is not None:
            event, worker = running
            self._sim.cancel(event)  # type: ignore[arg-type]
            self.vm_cluster.release(worker)
        else:
            self.vm_cluster.cancel_task(query_id)
        self._fail(execution, "cancelled by user")
        return True

    # -- completion --------------------------------------------------------------------

    def _succeed(self, execution: QueryExecution, result: QueryResult) -> None:
        if execution.finished_at is not None:
            return  # e.g. cancelled while a CF invocation was in flight
        execution.finished_at = self._sim.now
        execution.result = result
        self.trace.record(
            "query.finished", self._sim.now, 1, tag=execution.query_id
        )
        venue = execution.venue.value if execution.venue is not None else "none"
        self._m_queries.inc(venue=venue, status="ok")
        self._m_bytes.inc(result.stats.bytes_scanned)
        if execution.execution_time_s is not None:
            self._m_exec_seconds.observe(execution.execution_time_s, venue=venue)
        if execution.on_complete is not None:
            execution.on_complete(execution)

    def _fail(self, execution: QueryExecution, message: str) -> None:
        execution.finished_at = self._sim.now
        if execution.started_at is None:
            execution.started_at = self._sim.now
        execution.error = message
        self.trace.record("query.failed", self._sim.now, 1, tag=execution.query_id)
        venue = execution.venue.value if execution.venue is not None else "none"
        status = "cancelled" if "cancelled" in message else "error"
        self._m_queries.inc(venue=venue, status=status)
        # Safety net: no failure path may leak an open span — close
        # whatever remains (execute attempts, queue spans, the root) with
        # the failure status.
        self.obs.tracer.end_open(execution.query_id, status, error=message)
        if execution.on_complete is not None:
            execution.on_complete(execution)

    # -- aggregate accounting -------------------------------------------------------------

    def total_provider_cost(self) -> float:
        """Infrastructure cost so far: VM uptime + CF invocations."""
        return self.vm_cluster.provider_cost() + self.cf_service.provider_cost()
