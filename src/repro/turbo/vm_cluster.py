"""The auto-scaled VM cluster (paper §2 and §3.1).

The cluster executes query tasks in worker slots, queues tasks when full,
and runs the paper's watermark autoscaler:

* **scale-out** — when per-worker query concurrency exceeds the high
  watermark (default 5), new workers are requested; they become usable
  only after ``scale_out_lag_s`` (1–2 simulated minutes), which is the
  elasticity gap CF acceleration papers over.
* **scale-in** — when the *average* per-worker concurrency over a trailing
  window stays below the low watermark (default 0.75), idle workers are
  released gracefully.  A cooldown implements the lazy scale-in policy of
  footnote 2 (avoid scaling in right before the next spike).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

from repro.errors import ScalingError
from repro.obs import Instrumentation
from repro.sim import Simulator, Trace
from repro.turbo.config import VmConfig


@dataclass(frozen=True)
class ScalingDecision:
    """Audit record of one autoscaler action (scale-out or scale-in).

    Exactly one record is appended per
    ``pixels_vm_watermark_crossings_total`` increment, carrying the
    metric values the decision was made on — so a burn-rate alert at
    time *t* can be joined to the scaling decision that caused (or
    failed to prevent) it.
    """

    time: float
    action: str  # "scale_out" | "scale_in"
    watermark: str  # "high" | "low"
    trigger_value: float  # per-worker concurrency the rule evaluated
    threshold: float  # the watermark it crossed
    concurrency: int
    queue_depth: int
    workers_before: int
    pending_before: int  # workers already requested but not yet arrived
    delta: int  # +requested / -released
    workers_target: int  # desired cluster size after the action

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "action": self.action,
            "watermark": self.watermark,
            "trigger_value": self.trigger_value,
            "threshold": self.threshold,
            "concurrency": self.concurrency,
            "queue_depth": self.queue_depth,
            "workers_before": self.workers_before,
            "pending_before": self.pending_before,
            "delta": self.delta,
            "workers_target": self.workers_target,
        }


@dataclass
class VmWorker:
    """One VM: a fixed number of query slots plus uptime accounting."""

    worker_id: int
    started_at: float
    slots: int
    busy_slots: int = 0
    stopping: bool = False
    stopped_at: float | None = None

    @property
    def is_active(self) -> bool:
        return self.stopped_at is None

    def free_slots(self) -> int:
        if self.stopping or not self.is_active:
            return 0
        return self.slots - self.busy_slots

    def uptime(self, now: float) -> float:
        end = self.stopped_at if self.stopped_at is not None else now
        return end - self.started_at


@dataclass
class VmTask:
    """A unit of VM work: started by the cluster, finished by the caller."""

    task_id: str
    on_start: Callable[["VmWorker"], None]
    enqueued_at: float = 0.0


class VmCluster:
    """Worker pool + FIFO task queue + watermark autoscaler."""

    def __init__(
        self,
        sim: Simulator,
        config: VmConfig,
        trace: Trace | None = None,
        obs: Instrumentation | None = None,
    ) -> None:
        self._sim = sim
        self._config = config
        self.trace = trace if trace is not None else Trace()
        self.obs = obs if obs is not None else Instrumentation.disabled()
        registry = self.obs.metrics
        self._m_workers = registry.gauge(
            "pixels_vm_workers", "Active VM workers"
        )
        self._m_queue = registry.gauge(
            "pixels_vm_queue_depth", "Tasks waiting for a VM slot"
        )
        self._m_concurrency = registry.gauge(
            "pixels_vm_concurrency", "Running + queued VM tasks"
        )
        self._m_watermark = registry.counter(
            "pixels_vm_watermark_crossings_total",
            "Autoscaler actions by watermark crossed",
        )
        self._workers: list[VmWorker] = []
        self._queue: list[VmTask] = []
        self._running_tasks = 0
        self._next_worker_id = 0
        self._pending_arrivals = 0
        self._last_scale_event = -float("inf")
        self._retired_worker_seconds = 0.0
        self.scale_out_events = 0
        self.scale_in_events = 0
        #: Autoscaler decision audit log — 1:1 with watermark-crossing
        #: counter increments; always recorded (a list append per scale
        #: event, which is rare and deterministic).
        self.audit_log: list[ScalingDecision] = []
        for _ in range(config.min_workers):
            self._add_worker()
        self._record_gauges()
        self._autoscaler_enabled = True
        sim.schedule(config.evaluation_interval_s, self._evaluate)

    # -- public state -------------------------------------------------------------

    @property
    def num_workers(self) -> int:
        return sum(1 for worker in self._workers if worker.is_active)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def running_tasks(self) -> int:
        return self._running_tasks

    @property
    def concurrency(self) -> int:
        """Query concurrency as the paper uses it: running + waiting."""
        return self._running_tasks + len(self._queue)

    @property
    def concurrency_per_worker(self) -> float:
        return self.concurrency / max(self.num_workers, 1)

    def has_free_slot(self) -> bool:
        return any(worker.free_slots() > 0 for worker in self._workers)

    def total_worker_seconds(self, now: float | None = None) -> float:
        """Cumulative VM uptime — the basis of provider cost."""
        at = self._sim.now if now is None else now
        running = sum(w.uptime(at) for w in self._workers if w.is_active)
        return self._retired_worker_seconds + running

    def provider_cost(self, now: float | None = None) -> float:
        return self.total_worker_seconds(now) * self._config.price_per_worker_s

    # -- task lifecycle ------------------------------------------------------------

    def submit(self, task: VmTask) -> bool:
        """Run ``task`` now if a slot is free, else queue it (FIFO).

        Returns True if the task started immediately.
        """
        task.enqueued_at = self._sim.now
        worker = self._pick_worker()
        if worker is not None:
            self._start_task(task, worker)
            self._record_gauges()
            return True
        self._queue.append(task)
        self._record_gauges()
        return False

    def release(self, worker: VmWorker) -> None:
        """Signal task completion on ``worker``; frees the slot and drains
        the queue."""
        if worker.busy_slots <= 0:
            raise ScalingError(f"worker {worker.worker_id} has no busy slots")
        worker.busy_slots -= 1
        self._running_tasks -= 1
        if worker.stopping and worker.busy_slots == 0:
            self._stop_worker(worker)
        self._drain_queue()
        self._record_gauges()

    def _pick_worker(self) -> VmWorker | None:
        candidates = [w for w in self._workers if w.free_slots() > 0]
        if not candidates:
            return None
        # Least-loaded first spreads queries across the cluster.
        return min(candidates, key=lambda w: w.busy_slots)

    def _start_task(self, task: VmTask, worker: VmWorker) -> None:
        worker.busy_slots += 1
        self._running_tasks += 1
        task.on_start(worker)

    def _drain_queue(self) -> None:
        while self._queue:
            worker = self._pick_worker()
            if worker is None:
                return
            task = self._queue.pop(0)
            self._start_task(task, worker)

    def cancel_task(self, task_id: str) -> bool:
        """Remove a not-yet-started task from the queue.

        Returns False when no queued task has that id (it already started
        or never existed) — the caller then cancels at the running level.
        """
        for index, task in enumerate(self._queue):
            if task.task_id == task_id:
                del self._queue[index]
                self._record_gauges()
                return True
        return False

    def fail_worker(self, worker: VmWorker) -> None:
        """Retire a crashed worker and keep the fleet above the minimum.

        The caller releases its own slot first; the worker then drains any
        remaining tasks and stops.  If the loss would leave fewer than
        ``min_workers`` healthy-or-incoming workers, a replacement is
        requested — it arrives only after the usual boot lag, which is why
        crashes hurt latency even with retries.
        """
        if not worker.stopping:
            worker.stopping = True
            if worker.busy_slots == 0:
                self._stop_worker(worker)
        healthy = sum(
            1 for w in self._workers if w.is_active and not w.stopping
        )
        deficit = self._config.min_workers - healthy - self._pending_arrivals
        if deficit > 0:
            self._pending_arrivals += deficit
            self.trace.record("vm.replacement", self._sim.now, deficit)
            self._sim.schedule(
                self._config.scale_out_lag_s, lambda: self._arrive(deficit)
            )
        self._record_gauges()

    # -- scaling -------------------------------------------------------------------

    def _add_worker(self) -> VmWorker:
        worker = VmWorker(
            worker_id=self._next_worker_id,
            started_at=self._sim.now,
            slots=self._config.slots_per_worker,
        )
        self._next_worker_id += 1
        self._workers.append(worker)
        return worker

    def _stop_worker(self, worker: VmWorker) -> None:
        worker.stopped_at = self._sim.now
        self._retired_worker_seconds += worker.uptime(self._sim.now)

    def disable_autoscaler(self) -> None:
        """Freeze the cluster at its current size (used by baselines)."""
        self._autoscaler_enabled = False

    @property
    def target_per_worker(self) -> float:
        """Desired steady-state concurrency per worker: the midpoint of the
        watermark band."""
        return (self._config.high_watermark + self._config.low_watermark) / 2

    def _evaluate(self) -> None:
        """One autoscaler tick."""
        self._sim.schedule(self._config.evaluation_interval_s, self._evaluate)
        self._record_gauges()
        if not self._autoscaler_enabled:
            return
        now = self._sim.now
        per_worker = self.concurrency / max(self.num_workers + self._pending_arrivals, 1)
        # ">=", not ">": the query server admits relaxed queries only while
        # strictly below the high watermark, so sustained demand parks the
        # cluster exactly *at* the watermark — that state must scale out,
        # or held queries would wait forever without ever triggering it.
        if per_worker >= self._config.high_watermark:
            self._scale_out()
            return
        window_start = max(0.0, now - self._config.scale_in_window_s)
        avg_concurrency = self.trace.time_weighted_mean(
            "vm.concurrency", window_start, now
        )
        avg_per_worker = avg_concurrency / max(self.num_workers, 1)
        if (
            avg_per_worker < self._config.low_watermark
            and self.num_workers > self._config.min_workers
            and now - self._last_scale_event >= self._config.scale_in_cooldown_s
            and now >= self._config.scale_in_window_s
        ):
            self._scale_in(avg_concurrency)

    def _scale_out(self) -> None:
        desired = max(
            self._config.min_workers,
            -(-self.concurrency // max(int(self.target_per_worker), 1)),
        )
        desired = min(desired, self._config.max_workers)
        to_add = desired - self.num_workers - self._pending_arrivals
        if to_add <= 0:
            return
        self.scale_out_events += 1
        self._last_scale_event = self._sim.now
        pending_before = self._pending_arrivals
        self.audit_log.append(
            ScalingDecision(
                time=self._sim.now,
                action="scale_out",
                watermark="high",
                trigger_value=self.concurrency
                / max(self.num_workers + pending_before, 1),
                threshold=self._config.high_watermark,
                concurrency=self.concurrency,
                queue_depth=len(self._queue),
                workers_before=self.num_workers,
                pending_before=pending_before,
                delta=to_add,
                workers_target=desired,
            )
        )
        self._pending_arrivals += to_add
        self._m_watermark.inc(watermark="high")
        self.trace.record("vm.scale_out", self._sim.now, to_add)
        self._sim.schedule(
            self._config.scale_out_lag_s, lambda: self._arrive(to_add)
        )

    def _arrive(self, count: int) -> None:
        """Workers requested ``scale_out_lag_s`` ago come online."""
        self._pending_arrivals -= count
        for _ in range(count):
            if self.num_workers < self._config.max_workers:
                self._add_worker()
        self._drain_queue()
        self._record_gauges()

    def _scale_in(self, avg_concurrency: float) -> None:
        desired = max(
            self._config.min_workers,
            -(-int(avg_concurrency) // max(int(self.target_per_worker), 1)),
        )
        to_remove = self.num_workers - desired
        if to_remove <= 0:
            return
        self.scale_in_events += 1
        self._last_scale_event = self._sim.now
        self.audit_log.append(
            ScalingDecision(
                time=self._sim.now,
                action="scale_in",
                watermark="low",
                trigger_value=avg_concurrency / max(self.num_workers, 1),
                threshold=self._config.low_watermark,
                concurrency=self.concurrency,
                queue_depth=len(self._queue),
                workers_before=self.num_workers,
                pending_before=self._pending_arrivals,
                delta=-to_remove,
                workers_target=desired,
            )
        )
        self._m_watermark.inc(watermark="low")
        self.trace.record("vm.scale_in", self._sim.now, to_remove)
        # Prefer idle workers; mark busy ones to stop when they drain.
        removable = sorted(
            (w for w in self._workers if w.is_active and not w.stopping),
            key=lambda w: w.busy_slots,
        )
        for worker in removable[:to_remove]:
            if self.num_workers <= self._config.min_workers:
                break
            worker.stopping = True
            if worker.busy_slots == 0:
                self._stop_worker(worker)
        self._record_gauges()

    def export_audit_jsonl(self) -> str:
        """The scaling-decision log, one JSON object per line, in
        decision order — deterministic across same-seed runs."""
        lines = [
            json.dumps(decision.to_dict(), sort_keys=True)
            for decision in self.audit_log
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def _record_gauges(self) -> None:
        now = self._sim.now
        self.trace.record("vm.workers", now, self.num_workers)
        self.trace.record("vm.concurrency", now, self.concurrency)
        self.trace.record("vm.queue", now, len(self._queue))
        self._m_workers.set(self.num_workers)
        self._m_queue.set(len(self._queue))
        self._m_concurrency.set(self.concurrency)
