"""The cloud-function service (paper §2).

CF workers are the elastic-but-expensive resource: hundreds can start
within ~a second, but the unit price is 9–24× the VM price and every
invocation pays a startup toll.  The service tracks active workers and
accumulates invocation accounting; the Coordinator decides *when* to use
it (only for CF-enabled queries while the VM cluster is overloaded).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.obs import Instrumentation
from repro.sim import Simulator, Trace
from repro.turbo.config import CfConfig, VmConfig


@dataclass(frozen=True)
class CfInvocation:
    """Accounting record of one fan-out of CF workers."""

    query_id: str
    started_at: float
    num_workers: int
    duration_s: float
    worker_seconds: float
    provider_cost: float


class CfService:
    """Spawns ephemeral cloud-function workers and accounts for them."""

    def __init__(
        self,
        sim: Simulator,
        config: CfConfig,
        vm_config: VmConfig,
        trace: Trace | None = None,
        obs: Instrumentation | None = None,
    ) -> None:
        self._sim = sim
        self._config = config
        self._vm_config = vm_config
        self.trace = trace if trace is not None else Trace()
        self.obs = obs if obs is not None else Instrumentation.disabled()
        registry = self.obs.metrics
        self._m_invocations = registry.counter(
            "pixels_cf_invocations_total", "CF fan-outs launched"
        )
        self._m_worker_seconds = registry.counter(
            "pixels_cf_worker_seconds_total", "Billed CF worker-seconds"
        )
        self._m_active = registry.gauge(
            "pixels_cf_active_workers", "Currently running CF workers"
        )
        self._active_workers = 0
        self._invocations: list[CfInvocation] = []

    @property
    def config(self) -> CfConfig:
        return self._config

    @property
    def active_workers(self) -> int:
        return self._active_workers

    @property
    def invocations(self) -> list[CfInvocation]:
        return list(self._invocations)

    def total_worker_seconds(self) -> float:
        return sum(invocation.worker_seconds for invocation in self._invocations)

    def provider_cost(self) -> float:
        return sum(invocation.provider_cost for invocation in self._invocations)

    def invoke(
        self,
        query_id: str,
        num_workers: int,
        duration_s: float,
        on_complete: Callable[[], None],
    ) -> CfInvocation:
        """Launch ``num_workers`` CFs for ``duration_s`` simulated seconds.

        The duration (already including CF startup and merge overhead, see
        :meth:`~repro.turbo.cost.CostModel.cf_execution`) is charged to
        every worker — AWS bills function time per invocation, which is
        why CF acceleration has a price floor even for tiny queries.
        """
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        worker_seconds = num_workers * duration_s
        invocation = CfInvocation(
            query_id=query_id,
            started_at=self._sim.now,
            num_workers=num_workers,
            duration_s=duration_s,
            worker_seconds=worker_seconds,
            provider_cost=worker_seconds
            * self._config.price_per_worker_s(self._vm_config),
        )
        self._invocations.append(invocation)
        self._active_workers += num_workers
        self._m_invocations.inc()
        self._m_worker_seconds.inc(worker_seconds)
        self._m_active.set(self._active_workers)
        self.trace.record("cf.active_workers", self._sim.now, self._active_workers)

        def finish() -> None:
            self._active_workers -= num_workers
            self._m_active.set(self._active_workers)
            self.trace.record(
                "cf.active_workers", self._sim.now, self._active_workers
            )
            on_complete()

        self._sim.schedule(duration_s, finish)
        return invocation

    def provisioning_curve(self, demand: int, horizon_s: float = 5.0) -> list[tuple[float, int]]:
        """Workers available over time after a step demand of ``demand``.

        Used by experiment C3 to contrast CF elasticity (full fleet in
        ``startup_s``) against the VM cluster's minutes-long ramp.
        """
        return [(0.0, 0), (self._config.startup_s, demand), (horizon_s, demand)]
