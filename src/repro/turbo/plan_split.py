"""Plan splitting for CF acceleration (paper §3.1).

"This is done by pushing down the expensive operators (e.g., table scans,
joins, and aggregations) from the top-level plan of the new coming query
into a sub-plan.  The ephemeral CF workers are then launched to execute
the sub-plan and return its result as a materialized view to the top-level
plan running in the VM cluster."

The splitter peels cheap tail operators (projection over aggregated rows,
HAVING filters, sort, distinct, limit) off the root until it reaches the
first expensive operator (scan, join, or aggregate).  Everything from that
operator down becomes the CF sub-plan; its seat in the top-level plan is
taken by a :class:`~repro.engine.plan.MaterializedView` leaf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.engine.batch import BatchStream
from repro.engine.plan import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    MaterializedView,
    PlanNode,
    Project,
    Scan,
    Sort,
    TopN,
)
from repro.storage.table import TableData

EXPENSIVE_NODES = (Scan, HashJoin, Aggregate)
CHEAP_TAIL_NODES = (Project, Filter, Sort, TopN, Limit, Distinct)


@dataclass
class SplitPlan:
    """Result of splitting a query plan for CF acceleration.

    Attributes:
        top: The (cheap) top-level plan that runs in the VM cluster; its
            leaf is ``view``.
        sub: The expensive sub-plan to execute in CF workers.
        view: The MaterializedView node inside ``top``; call
            :meth:`attach` with the sub-plan's result before running
            ``top``.
    """

    top: PlanNode
    sub: PlanNode
    view: MaterializedView

    def attach(self, data: TableData) -> None:
        """Wire the CF workers' result into the top-level plan."""
        self.view.data = data

    def attach_stream(
        self,
        batches: Iterator[TableData],
        on_close: "Callable[[], None] | None" = None,
    ) -> None:
        """Wire the CF workers' result in as a batch stream.

        The top-level plan then pulls the sub-plan's output incrementally
        (the coordinator's merge step consumes fragment batches as they
        arrive instead of waiting for a whole materialized table), and a
        top that stops early — e.g. a LIMIT above the view — stops the
        sub-plan's remaining work via generator close.
        """
        self.view.data = BatchStream(batches, self.sub.output_schema(), on_close)


def split_plan(plan: PlanNode) -> SplitPlan:
    """Split ``plan`` at the boundary between cheap tail and expensive core.

    Always succeeds: when the root itself is expensive (the common case —
    e.g. a bare aggregation), the top-level plan degenerates to the
    materialized view itself, i.e. CF computes everything and the VM
    merely returns it.
    """
    tail: list[PlanNode] = []
    node = plan
    while isinstance(node, CHEAP_TAIL_NODES) and not isinstance(
        node, EXPENSIVE_NODES
    ):
        tail.append(node)
        node = node.input  # every cheap tail node is unary

    view = MaterializedView(
        name="cf_subplan_result",
        schema=node.output_schema(),
    )
    if not tail:
        return SplitPlan(top=view, sub=node, view=view)
    tail[-1].input = view  # type: ignore[attr-defined]
    return SplitPlan(top=plan, sub=node, view=view)
