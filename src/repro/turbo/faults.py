"""Fault injection for the Turbo runtime.

Cloud workers fail: Lambda invocations get killed, spot VMs disappear.
The production Pixels-Turbo retries; this module gives the reproduction
the same resilience surface so it can be tested.

The model is task-scoped: with probability ``vm_crash_rate`` the worker
executing a VM query crashes partway through (the worker is retired and
the query retried on remaining capacity); with probability
``cf_failure_rate`` a CF fan-out fails partway (the invocation is billed —
clouds charge for failed function time — and retried).  After
``max_retries`` failed attempts the query fails with an error the client
can display (§4.3's *failed* status).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FaultConfig:
    """Failure probabilities and the retry budget."""

    vm_crash_rate: float = 0.0
    cf_failure_rate: float = 0.0
    max_retries: int = 3

    def __post_init__(self) -> None:
        for name in ("vm_crash_rate", "cf_failure_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")


class FaultInjector:
    """Draws fault decisions from a dedicated deterministic RNG stream."""

    def __init__(self, config: FaultConfig, rng: np.random.Generator) -> None:
        self.config = config
        self._rng = rng
        self.vm_crashes_injected = 0
        self.cf_failures_injected = 0

    def vm_task_fails(self) -> bool:
        if self._rng.uniform() < self.config.vm_crash_rate:
            self.vm_crashes_injected += 1
            return True
        return False

    def cf_invocation_fails(self) -> bool:
        if self._rng.uniform() < self.config.cf_failure_rate:
            self.cf_failures_injected += 1
            return True
        return False

    def failure_point(self) -> float:
        """Fraction of the attempt's duration elapsed before it dies."""
        return float(self._rng.uniform(0.1, 0.9))
