"""Pixels-Turbo: the hybrid serverless query runtime (paper §2–§3.1).

Components map one-to-one onto Figure 1:

* :class:`~repro.turbo.coordinator.Coordinator` — the only long-running
  component: metadata, query planning/tracking, concurrency accounting,
  and the decision of where each query runs.
* :class:`~repro.turbo.vm_cluster.VmCluster` — the auto-scaled VM pool:
  cost-efficient, but scale-out takes 1–2 minutes (watermark autoscaling
  with lazy scale-in, §3.1).
* :class:`~repro.turbo.cf_service.CfService` — the cloud-function pool:
  workers in ~1 second, 9–24× higher unit price.
* :mod:`~repro.turbo.plan_split` — pushes expensive operators into a CF
  sub-plan whose result returns as a materialized view.
* :class:`~repro.turbo.cost.CostModel` — execution-time and dollar-cost
  model calibrated to the paper's published ratios.
"""

from repro.turbo.config import TurboConfig
from repro.turbo.coordinator import Coordinator, QueryExecution
from repro.turbo.cost import CostModel
from repro.turbo.cf_service import CfService
from repro.turbo.plan_split import split_plan
from repro.turbo.vm_cluster import VmCluster

__all__ = [
    "CfService",
    "Coordinator",
    "CostModel",
    "QueryExecution",
    "TurboConfig",
    "VmCluster",
    "split_plan",
]
