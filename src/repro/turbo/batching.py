"""Batch query optimization: shared scans for non-urgent queries.

The paper's conclusion calls out that delaying non-urgent queries
"provides opportunities for batch query optimization".  This module
implements the classic instance of that opportunity — **scan sharing**:
when several queued queries read the same base table, the batch fetches
each table once (the union of the queries' column projections) and every
query is evaluated against the shared in-memory copy.

Correctness relies on a property of the engine's scans: zone-map
``ranges`` are pruning *hints* only — every scan re-applies its exact
``residual`` predicate row by row — so serving a scan from an unpruned
shared superset of its columns cannot change its result.  Per-query
user billing is unchanged (each query is still billed for the bytes *it*
scans, per §3.2); what sharing reduces is the provider-side work, which
is exactly the batch-optimization dividend the paper anticipates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.executor import QueryExecutor, QueryResult, QueryStats
from repro.engine.plan import PlanNode, Scan, plan_scans
from repro.engine.source import DataSource, InMemorySource, SourceResult
from repro.storage.cache import BufferPool
from repro.storage.object_store import ObjectStore
from repro.storage.table import TableReader


@dataclass
class SharedScanStats:
    """What the batch saved."""

    tables_shared: int = 0
    shared_bytes_scanned: int = 0
    unshared_bytes_scanned: int = 0  # what N independent scans would read

    @property
    def bytes_saved(self) -> int:
        return max(self.unshared_bytes_scanned - self.shared_bytes_scanned, 0)


@dataclass
class BatchExecution:
    """Results of a shared-scan batch: one entry per input plan."""

    results: list[QueryResult] = field(default_factory=list)
    shared_stats: SharedScanStats = field(default_factory=SharedScanStats)
    combined: QueryStats = field(default_factory=QueryStats)


class _SharedSource:
    """A DataSource serving scans from pre-fetched shared tables, falling
    back to the object store for tables the batch did not share."""

    def __init__(
        self, shared: InMemorySource, fallback: DataSource
    ) -> None:
        self._shared = shared
        self._fallback = fallback

    def scan(self, node: Scan) -> SourceResult:
        try:
            return self._shared.scan(node)
        except Exception:
            return self._fallback.scan(node)

    def scan_batches(self, node: Scan):
        # Resolve the venue eagerly (a lazy generator would defer the
        # shared-vs-fallback probe to first pull); shared tables stream as
        # one in-memory granule, everything else keeps the fallback's
        # laziness.
        from repro.engine.source import iter_source_batches

        try:
            result = self._shared.scan(node)
        except Exception:
            return iter_source_batches(self._fallback, node)
        return iter([result])


def union_columns(plans: list[PlanNode]) -> dict[tuple[str, str], set[str]]:
    """Per (schema, table): the union of base columns any plan scans."""
    needed: dict[tuple[str, str], set[str]] = {}
    for plan in plans:
        for scan in plan_scans(plan):
            key = (scan.schema_name, scan.table.name)
            needed.setdefault(key, set()).update(
                base for _, base in scan.columns
            )
    return needed


def execute_shared_batch(
    plans: list[PlanNode],
    store: ObjectStore,
    fallback: DataSource,
    cache: "BufferPool | None" = None,
) -> BatchExecution:
    """Execute ``plans`` with each base table fetched exactly once.

    Only tables referenced by **two or more** plans are shared (sharing a
    single-reader table would just move bytes around); the rest scan the
    object store directly through ``fallback``.  ``cache`` (the VM tier's
    buffer pool, when batches run on VMs) serves the shared fetches.
    """
    needed = union_columns(plans)
    reference_counts: dict[tuple[str, str], int] = {}
    for plan in plans:
        for key in {
            (scan.schema_name, scan.table.name) for scan in plan_scans(plan)
        }:
            reference_counts[key] = reference_counts.get(key, 0) + 1

    shared = InMemorySource()
    stats = SharedScanStats()
    table_bytes: dict[tuple[str, str], int] = {}
    for plan in plans:
        for scan in plan_scans(plan):
            key = (scan.schema_name, scan.table.name)
            if reference_counts.get(key, 0) < 2 or key in table_bytes:
                continue
            reader = TableReader(
                store, scan.table.bucket, scan.table.prefix, cache=cache
            )
            result = reader.scan(columns=sorted(needed[key]))
            shared.add_table(key[0], key[1], result.data)
            table_bytes[key] = result.bytes_scanned
            stats.tables_shared += 1
            stats.shared_bytes_scanned += result.bytes_scanned

    source = _SharedSource(shared, fallback)
    executor = QueryExecutor(source)
    batch = BatchExecution(shared_stats=stats)
    for plan in plans:
        result = executor.execute(plan)
        batch.results.append(result)
        batch.combined.rows_scanned += result.stats.rows_scanned
        batch.combined.operators += result.stats.operators
        # What this plan would have read on its own (for the savings line).
        for scan in plan_scans(plan):
            key = (scan.schema_name, scan.table.name)
            if key in table_bytes:
                # Approximate: the per-query share of the table's columns.
                fraction = len(scan.columns) / max(len(needed[key]), 1)
                batch.shared_stats.unshared_bytes_scanned += int(
                    table_bytes[key] * fraction
                )
        batch.combined.bytes_scanned += result.stats.bytes_scanned
    # The provider pays the shared fetch once; queries served from memory
    # report in-memory sizes, so replace the byte total with the real one.
    batch.combined.bytes_scanned = stats.shared_bytes_scanned + sum(
        result.stats.bytes_scanned
        for result, plan in zip(batch.results, plans)
        if not _fully_shared(plan, table_bytes)
    )
    return batch


def _fully_shared(plan: PlanNode, table_bytes: dict) -> bool:
    return all(
        (scan.schema_name, scan.table.name) in table_bytes
        for scan in plan_scans(plan)
    )
