"""Execution-time and dollar-cost model.

Queries are *really executed* (the result rows are exact); what the
simulation models is how long that execution takes on each resource type
and what it costs.  Durations are derived from the executor's statistics
(bytes scanned, rows processed), so selective queries are cheap and wide
scans are slow — the same first-order behaviour the paper's engine has.

Two kinds of money appear, deliberately separate:

* **provider cost** — worker-seconds × unit price; what the operator pays
  AWS.  The CF/VM unit-price ratio (§2: 9–24×) and VM amortization live
  here; experiment C2 measures it.
* **user price** — $/TB-scan per service level (§3.2: $5 / $1 / $0.5);
  what the user is billed.  Experiment C1 measures it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.engine.executor import QueryStats
from repro.turbo.config import TurboConfig

TB = 1024**4


@dataclass(frozen=True)
class VmEstimate:
    """Modelled single-VM execution of one query."""

    duration_s: float
    worker_seconds: float
    provider_cost: float


@dataclass(frozen=True)
class CfEstimate:
    """Modelled CF fan-out execution of one query's sub-plan."""

    num_workers: int
    duration_s: float
    worker_seconds: float
    provider_cost: float


class CostModel:
    """Turns executor statistics into durations and dollars."""

    def __init__(self, config: TurboConfig) -> None:
        self._config = config

    def _inflated(self, stats: QueryStats) -> tuple[float, float]:
        """(bytes, rows) after applying the workload inflation factor."""
        factor = self._config.data_inflation
        return stats.bytes_scanned * factor, stats.rows_scanned * factor

    # -- durations -------------------------------------------------------------

    def vm_execution(self, stats: QueryStats) -> VmEstimate:
        """One query on one VM slot."""
        vm = self._config.vm
        num_bytes, num_rows = self._inflated(stats)
        duration = (
            vm.startup_overhead_s
            + num_bytes / vm.scan_throughput_bytes_per_s
            + num_rows / vm.row_throughput_rows_per_s
        )
        worker_seconds = duration / vm.slots_per_worker
        return VmEstimate(
            duration_s=duration,
            worker_seconds=worker_seconds,
            provider_cost=worker_seconds * vm.price_per_worker_s,
        )

    def cf_execution(self, stats: QueryStats) -> CfEstimate:
        """One query fanned out across CF workers.

        Parallelism follows the scan size (one worker per
        ``bytes_per_worker``); every worker is billed for the whole
        invocation including startup, which is why small queries on CF
        carry a fixed-cost penalty.
        """
        cf = self._config.cf
        num_bytes, num_rows = self._inflated(stats)
        num_workers = max(
            1,
            min(
                cf.max_workers_per_query,
                math.ceil(num_bytes / cf.bytes_per_worker),
            ),
        )
        work = (
            num_bytes / cf.scan_throughput_bytes_per_s
            + num_rows / cf.row_throughput_rows_per_s
        )
        duration = cf.startup_s + work / num_workers + cf.merge_overhead_s
        worker_seconds = duration * num_workers
        return CfEstimate(
            num_workers=num_workers,
            duration_s=duration,
            worker_seconds=worker_seconds,
            provider_cost=worker_seconds
            * cf.price_per_worker_s(self._config.vm),
        )

    # -- user-facing prices ------------------------------------------------------

    def price_per_tb(self, level: "ServiceLevel") -> float:  # noqa: F821
        from repro.core.service_levels import ServiceLevel

        prices = self._config.prices
        return {
            ServiceLevel.IMMEDIATE: prices.immediate_per_tb,
            ServiceLevel.RELAXED: prices.relaxed_per_tb,
            ServiceLevel.BEST_EFFORT: prices.best_effort_per_tb,
        }[level]

    def user_price(self, stats: QueryStats, level: "ServiceLevel") -> float:  # noqa: F821
        """The bill for one query: TB scanned × the level's rate (§3.2).
        Billing uses the same inflated byte count the durations use."""
        num_bytes, _ = self._inflated(stats)
        return (num_bytes / TB) * self.price_per_tb(level)
