"""Execution-time and dollar-cost model.

Queries are *really executed* (the result rows are exact); what the
simulation models is how long that execution takes on each resource type
and what it costs.  Durations are derived from the executor's statistics
(bytes scanned, rows processed), so selective queries are cheap and wide
scans are slow — the same first-order behaviour the paper's engine has.

Two kinds of money appear, deliberately separate:

* **provider cost** — worker-seconds × unit price; what the operator pays
  AWS.  The CF/VM unit-price ratio (§2: 9–24×) and VM amortization live
  here; experiment C2 measures it.
* **user price** — $/TB-scan per service level (§3.2: $5 / $1 / $0.5);
  what the user is billed.  Experiment C1 measures it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.engine.executor import QueryStats
from repro.turbo.config import TurboConfig

TB = 1024**4


@dataclass(frozen=True)
class VmEstimate:
    """Modelled single-VM execution of one query."""

    duration_s: float
    worker_seconds: float
    provider_cost: float


@dataclass(frozen=True)
class CfEstimate:
    """Modelled CF fan-out execution of one query's sub-plan."""

    num_workers: int
    duration_s: float
    worker_seconds: float
    provider_cost: float


@dataclass(frozen=True)
class CostAttribution:
    """One query's billed price decomposed by the resource that earned it.

    The profiler distributes each component over the query's profile tree
    by the resource it measures: ``bandwidth_dollars`` over self bytes
    scanned, ``compute_dollars`` over self execution time, and
    ``request_dollars`` over self GET counts; ``fixed_dollars`` (startup
    and merge overheads that no operator caused) stays at the root.  The
    four components always sum to ``billed`` — attribution re-slices the
    bill, it never changes it.
    """

    billed: float
    venue: str  # "vm" | "cf" | "none"
    bandwidth_dollars: float
    compute_dollars: float
    request_dollars: float
    fixed_dollars: float

    @property
    def total(self) -> float:
        return (
            self.bandwidth_dollars
            + self.compute_dollars
            + self.request_dollars
            + self.fixed_dollars
        )


@dataclass(frozen=True)
class MeterReading:
    """One query's bill as the metering ledger records it: the float
    attribution plus its exact integer-nanodollar decomposition.

    ``axes`` maps resource axis (bandwidth/compute/requests/fixed) to
    nanodollars and always sums to ``billed_nanodollars`` — the split
    comes from the profiler's shared largest-remainder helper, so the
    ledger, the statement store, and the flame graphs agree to the
    nanodollar by construction.
    """

    billed_nanodollars: int
    attribution: CostAttribution
    axes: dict[str, int]


class CostModel:
    """Turns executor statistics into durations and dollars."""

    def __init__(self, config: TurboConfig) -> None:
        self._config = config

    def _inflated(self, stats: QueryStats) -> tuple[float, float]:
        """(bytes, rows) after applying the workload inflation factor."""
        factor = self._config.data_inflation
        return stats.bytes_scanned * factor, stats.rows_scanned * factor

    # -- durations -------------------------------------------------------------

    def vm_execution(self, stats: QueryStats) -> VmEstimate:
        """One query on one VM slot."""
        vm = self._config.vm
        num_bytes, num_rows = self._inflated(stats)
        duration = (
            vm.startup_overhead_s
            + num_bytes / vm.scan_throughput_bytes_per_s
            + num_rows / vm.row_throughput_rows_per_s
        )
        worker_seconds = duration / vm.slots_per_worker
        return VmEstimate(
            duration_s=duration,
            worker_seconds=worker_seconds,
            provider_cost=worker_seconds * vm.price_per_worker_s,
        )

    def cf_execution(self, stats: QueryStats) -> CfEstimate:
        """One query fanned out across CF workers.

        Parallelism follows the scan size (one worker per
        ``bytes_per_worker``); every worker is billed for the whole
        invocation including startup, which is why small queries on CF
        carry a fixed-cost penalty.
        """
        cf = self._config.cf
        num_bytes, num_rows = self._inflated(stats)
        num_workers = max(
            1,
            min(
                cf.max_workers_per_query,
                math.ceil(num_bytes / cf.bytes_per_worker),
            ),
        )
        work = (
            num_bytes / cf.scan_throughput_bytes_per_s
            + num_rows / cf.row_throughput_rows_per_s
        )
        duration = cf.startup_s + work / num_workers + cf.merge_overhead_s
        worker_seconds = duration * num_workers
        return CfEstimate(
            num_workers=num_workers,
            duration_s=duration,
            worker_seconds=worker_seconds,
            provider_cost=worker_seconds
            * cf.price_per_worker_s(self._config.vm),
        )

    # -- attribution -----------------------------------------------------------

    def attribution(
        self,
        stats: QueryStats,
        venue: str,
        billed: float,
        get_price_per_1000: float = 0.0004,
    ) -> CostAttribution:
        """Split ``billed`` into per-resource components (profiler input).

        The split weights are the *provider-side* costs of each resource:
        the venue's modelled duration decomposes into a byte term, a row
        term, and fixed startup/merge overhead (each priced at the venue's
        worker rate — CF GB-s or VM-s), and GET requests carry the object
        store's request price.  The billed price is then divided in
        proportion to those weights, so a scan-bound query attributes its
        bill to bandwidth while a join-heavy one attributes it to compute.
        Weights that are all zero (e.g. a pure EXPLAIN) put the whole bill
        in ``fixed_dollars``.
        """
        num_bytes, num_rows = self._inflated(stats)
        if venue == "cf":
            cf = self._config.cf
            rate = cf.price_per_worker_s(self._config.vm)
            bytes_s = num_bytes / cf.scan_throughput_bytes_per_s
            rows_s = num_rows / cf.row_throughput_rows_per_s
            # Startup is billed once per worker; merge once per query.
            workers = self.cf_execution(stats).num_workers
            fixed_s = cf.startup_s * workers + cf.merge_overhead_s
        elif venue == "vm":
            vm = self._config.vm
            rate = vm.price_per_worker_s / vm.slots_per_worker
            bytes_s = num_bytes / vm.scan_throughput_bytes_per_s
            rows_s = num_rows / vm.row_throughput_rows_per_s
            fixed_s = vm.startup_overhead_s
        else:
            return CostAttribution(billed, venue, 0.0, 0.0, 0.0, billed)
        weights = {
            "bandwidth": bytes_s * rate,
            "compute": rows_s * rate,
            "fixed": fixed_s * rate,
            "requests": stats.get_requests * get_price_per_1000 / 1000.0,
        }
        total = sum(weights.values())
        if total <= 0.0:
            return CostAttribution(billed, venue, 0.0, 0.0, 0.0, billed)
        bandwidth = billed * weights["bandwidth"] / total
        compute = billed * weights["compute"] / total
        requests = billed * weights["requests"] / total
        # The fixed component absorbs the float residue so the four parts
        # sum to the bill by construction.
        fixed = billed - bandwidth - compute - requests
        return CostAttribution(billed, venue, bandwidth, compute, requests, fixed)

    def meter(
        self,
        stats: QueryStats,
        venue: str,
        billed: float,
        get_price_per_1000: float = 0.0004,
    ) -> MeterReading:
        """The billing point the metering ledger consumes: attribution
        plus the exact integer axis split of ``billed``."""
        from repro.obs.ledger import AXES
        from repro.obs.profiler import split_attribution_nanodollars

        attribution = self.attribution(stats, venue, billed, get_price_per_1000)
        billed_nano, pools = split_attribution_nanodollars(billed, attribution)
        return MeterReading(
            billed_nanodollars=billed_nano,
            attribution=attribution,
            axes=dict(zip(AXES, pools)),
        )

    # -- user-facing prices ------------------------------------------------------

    def price_per_tb(self, level: "ServiceLevel") -> float:  # noqa: F821
        from repro.core.service_levels import ServiceLevel

        prices = self._config.prices
        return {
            ServiceLevel.IMMEDIATE: prices.immediate_per_tb,
            ServiceLevel.RELAXED: prices.relaxed_per_tb,
            ServiceLevel.BEST_EFFORT: prices.best_effort_per_tb,
        }[level]

    def user_price(self, stats: QueryStats, level: "ServiceLevel") -> float:  # noqa: F821
        """The bill for one query: TB scanned × the level's rate (§3.2).
        Billing uses the same inflated byte count the durations use."""
        num_bytes, _ = self._inflated(stats)
        return (num_bytes / TB) * self.price_per_tb(level)
